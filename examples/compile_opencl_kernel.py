"""Compile an OpenCL-C kernel for the G-GPU and for the RISC-V baseline.

The FGPU (the paper's baseline architecture) is programmed with OpenCL kernels
compiled by an LLVM back end.  This example uses the library's own OpenCL-C
compiler (``repro.cl``) to do the same thing end to end:

1. compile a small image-threshold kernel with divergent control flow,
2. inspect how the compiler lowered the divergence (mask instructions vs.
   plain branches),
3. run the compiled kernel on the G-GPU simulator and check the result,
4. compile the *same source* for the scalar RISC-V baseline and compare the
   cycle counts -- a one-kernel preview of Table III.

Run with:  python examples/compile_opencl_kernel.py
"""

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.isa import Opcode
from repro.arch.kernel import NDRange
from repro.cl import compile_source
from repro.kernels.library import GpuWorkload
from repro.simt.gpu import GGPUSimulator

THRESHOLD_KERNEL = """
// Per-pixel threshold with a divergent branch: bright pixels are scaled,
// dark pixels are zeroed.  The per-lane condition forces the compiler to use
// the execution-mask instructions (PUSHM/CMASK/INVM/POPM).
__kernel void threshold(__global int *pixels, __global int *out, int cutoff, int n) {
    int gid = get_global_id(0);
    int value = pixels[gid];
    if (value > cutoff) {
        out[gid] = (value * 3) >> 1;
    } else {
        out[gid] = 0;
    }
}
"""


def main() -> None:
    n, cutoff = 1024, 128
    rng = np.random.default_rng(7)
    pixels = rng.integers(0, 256, size=n, dtype=np.int64)
    expected = np.where(pixels > cutoff, (pixels * 3) >> 1, 0)

    # --- front end ------------------------------------------------------- #
    program = compile_source(THRESHOLD_KERNEL)
    info = program.info()
    print(f"kernel {info.name!r}: buffers={info.buffer_params} scalars={info.scalar_params}")

    kernel = program.to_ggpu_kernel()
    opcodes = [instruction.opcode for instruction in kernel.program.instructions]
    print(f"compiled to {len(kernel.program)} G-GPU instructions")
    print(
        "divergence lowering: "
        f"PUSHM x{opcodes.count(Opcode.PUSHM)}, CMASK x{opcodes.count(Opcode.CMASK)}, "
        f"INVM x{opcodes.count(Opcode.INVM)}, POPM x{opcodes.count(Opcode.POPM)}"
    )
    print("\nprogram listing (first 12 instructions):")
    for line in kernel.program.listing().splitlines()[:12]:
        print(" ", line)

    # --- run on the G-GPU ------------------------------------------------- #
    simulator = GGPUSimulator(GGPUConfig(num_cus=2))
    buffers = {
        "pixels": simulator.create_buffer(pixels),
        "out": simulator.allocate_buffer(n),
    }
    result = simulator.launch(
        kernel, NDRange(n, 256), {**buffers, "cutoff": cutoff, "n": n}
    )
    observed = simulator.read_buffer(buffers["out"], n).astype(np.int64)
    assert np.array_equal(observed, expected), "compiled kernel produced wrong results"
    print(f"\nG-GPU (2 CUs): {result.cycles:.0f} cycles, outputs verified against numpy")

    # --- same source on the RISC-V baseline ------------------------------- #
    workload = GpuWorkload(
        buffers={"pixels": pixels, "out": np.zeros(n, dtype=np.int64)},
        scalars={"cutoff": cutoff, "n": n},
        expected={"out": expected},
        ndrange=NDRange(n, 256),
    )
    case = program.to_riscv_case(workload)
    stats, _ = case.run(check=True)
    print(f"RISC-V baseline: {stats.cycles} cycles ({stats.instructions} instructions)")
    print(f"speed-up of the 2-CU G-GPU at equal work: {stats.cycles / result.cycles:.1f}x")


if __name__ == "__main__":
    main()
