"""Fitting a G-GPU into an SoC budget: custom spec, budgets, and layout export.

A designer has ~10 mm^2 and ~5 W available for an accelerator and wants the
fastest G-GPU that fits.  This example uses the first-order map to shortlist
configurations, runs the full flow for the best candidate, checks the PPA
against the budget, and writes the tapeout-ready layout description to JSON
(the reproduction's stand-in for the GDSII hand-off).

Run with:  python examples/custom_accelerator.py
"""

from repro import GGPUSpec, GpuPlannerFlow, default_65nm
from repro.planner.estimator import PpaMap


AREA_BUDGET_MM2 = 10.0
POWER_BUDGET_W = 5.0


def main() -> None:
    tech = default_65nm()
    ppa_map = PpaMap(tech)

    print(f"Budget: {AREA_BUDGET_MM2} mm2, {POWER_BUDGET_W} W")
    print("\n=== Shortlisting with the first-order map ===")
    candidates = []
    for num_cus in (1, 2, 4, 8):
        for frequency in (500.0, 590.0, 667.0):
            spec = GGPUSpec(
                num_cus=num_cus,
                target_frequency_mhz=frequency,
                max_area_mm2=AREA_BUDGET_MM2,
                max_power_w=POWER_BUDGET_W,
            )
            estimate = ppa_map.estimate(spec)
            marker = "ok " if estimate.feasible else "-- "
            print(
                f"  {marker}{spec.label:12s} est. {estimate.estimated_area_mm2:6.2f} mm2, "
                f"{estimate.estimated_power_w:5.2f} W"
            )
            if estimate.feasible:
                candidates.append(spec)

    best = max(candidates, key=lambda spec: spec.num_cus * spec.target_frequency_mhz)
    print(f"\nBest candidate within budget: {best.label}")

    print("\n=== Running the full flow for the chosen spec ===")
    flow = GpuPlannerFlow(tech)
    result = flow.run(best)
    print(result.summary())

    output = "ggpu_layout.json"
    result.layout.write_json(output)
    print(f"\nTapeout-ready layout description written to {output}")
    print(result.layout.ascii_floorplan(columns=60, rows=18))


if __name__ == "__main__":
    main()
