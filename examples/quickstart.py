"""Quickstart: generate a G-GPU with GPUPlanner and run a kernel on it.

This walks the two halves of the library in ~60 lines:

1. GPUPlanner: specify a 2-CU, 590 MHz G-GPU and run the full flow
   (estimate -> generate -> optimize -> logic synthesis -> physical synthesis).
2. Execution: write a small OpenCL-style kernel with the KernelBuilder, launch
   it on the cycle-approximate simulator, and read the results back.

Run with:  python examples/quickstart.py
"""

from repro import GGPUSpec, GpuPlannerFlow, KernelArg, KernelBuilder, NDRange, default_65nm
from repro.arch.isa import Opcode
from repro.simt.gpu import GGPUSimulator


def generate_hardware() -> None:
    """Part 1: the GPUPlanner flow (the paper's Fig. 2)."""
    tech = default_65nm()
    flow = GpuPlannerFlow(tech)
    spec = GGPUSpec(num_cus=2, target_frequency_mhz=590.0)

    print("=== First-order estimate (the 'map') ===")
    print(flow.ppa_map.estimate(spec).summary())

    print("\n=== Full flow: RTL to tapeout-ready layout ===")
    result = flow.run(spec)
    print(result.summary())
    print("\nFloorplan sketch:")
    print(result.layout.ascii_floorplan(columns=60, rows=18))


def run_a_kernel() -> None:
    """Part 2: write and execute a vector-add kernel."""
    builder = KernelBuilder(
        "vec_add", args=(KernelArg("a"), KernelArg("b"), KernelArg("out"))
    )
    gid = builder.alloc("gid")
    a_ptr = builder.alloc("a_ptr")
    b_ptr = builder.alloc("b_ptr")
    out_ptr = builder.alloc("out_ptr")
    addr = builder.alloc("addr")
    value_a = builder.alloc("value_a")
    value_b = builder.alloc("value_b")
    builder.global_id(gid)
    builder.load_arg(a_ptr, "a")
    builder.load_arg(b_ptr, "b")
    builder.load_arg(out_ptr, "out")
    builder.address_of_element(addr, a_ptr, gid)
    builder.emit(Opcode.LW, rd=value_a, rs=addr, imm=0)
    builder.address_of_element(addr, b_ptr, gid)
    builder.emit(Opcode.LW, rd=value_b, rs=addr, imm=0)
    builder.emit(Opcode.ADD, rd=value_a, rs=value_a, rt=value_b)
    builder.address_of_element(addr, out_ptr, gid)
    builder.emit(Opcode.SW, rs=addr, rt=value_a, imm=0)
    builder.ret()
    kernel = builder.build()

    simulator = GGPUSimulator()  # 1 CU, default memory hierarchy
    n = 1024
    a = simulator.create_buffer(range(n))
    b = simulator.create_buffer(range(0, 2 * n, 2))
    out = simulator.allocate_buffer(n)
    result = simulator.launch(kernel, NDRange(n, 256), {"a": a, "b": b, "out": out})

    values = simulator.read_buffer(out, n)
    print("\n=== Kernel execution ===")
    print(result.stats.summary())
    print("first 8 results:", list(values[:8]), "(expected 0, 3, 6, ...)")


if __name__ == "__main__":
    generate_hardware()
    run_a_kernel()
