"""Fault-tolerant pipeline: inject device failures, recover, resume a sweep.

This walks the PR-7 fault-tolerance stack end to end:

1. Run a four-lane ``saxpy -> reduce_sum`` pipeline on a fault-free
   two-device :class:`~repro.runtime.multidevice.OutOfOrderQueue` — the
   baseline schedule and results.
2. Re-run the *identical* pipeline under a seeded
   :class:`~repro.runtime.FaultPlan`: a transient launch drop (retried with
   backoff after its detection timeout) and a permanent device failure
   (the dying device's sole-copy buffers are evacuated to the host, the
   device is retired, and its queued work migrates to the survivor).  The
   results are bit-exact; only the schedule degrades — resilience never
   touches simulated kernel semantics.
3. Exhaust a retry budget on purpose and catch the structured
   :class:`~repro.errors.DeviceFailureError`, showing the failed
   event-graph slice and the root cause chained on ``__cause__``.
4. Run a scale-reduced Table III sweep with a crash-safe
   :class:`~repro.runtime.SweepJournal`, then "resume" it: the second run
   serves every cell from the journal without simulating anything.

Run with:  PYTHONPATH=src python examples/fault_tolerant_pipeline.py
"""

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.errors import DeviceFailureError
from repro.eval.benchmarks import run_table3
from repro.kernels import get_kernel_spec, pick_pow2_workgroup_size
from repro.runtime import FaultPlan, FaultSpec, OutOfOrderQueue, SweepJournal

N = 1024  # elements per pipeline lane
LANES = 4  # independent saxpy -> reduce_sum chains
ALPHA = 3
DEVICES = 2


def build_pipeline(queue):
    """Enqueue LANES independent saxpy -> reduce_sum chains; returns checks."""
    saxpy = get_kernel_spec("saxpy").build()
    reduce_sum = get_kernel_spec("reduce_sum").build()
    workgroup = pick_pow2_workgroup_size(N)
    checks = []
    for lane in range(LANES):
        x_host = np.arange(N, dtype=np.int64) + 1000 * lane
        y_host = np.arange(N, dtype=np.int64)[::-1].copy()
        x = queue.create_buffer(x_host)
        y = queue.create_buffer(y_host)
        out = queue.allocate_buffer(N)
        partial = queue.allocate_buffer(N // workgroup)

        stage1 = queue.enqueue(
            saxpy,
            NDRange(N, workgroup),
            {"x": x, "y": y, "out": out, "alpha": ALPHA, "n": N},
            label=f"saxpy[{lane}]",
            writes=("out",),
        )
        queue.enqueue(
            reduce_sum,
            NDRange(N, workgroup),
            {"a": out, "partial": partial, "n": N},
            label=f"reduce[{lane}]",
            wait_for=(stage1,),
            writes=("partial",),
        )
        expected = int(((ALPHA * x_host + y_host) & 0xFFFFFFFF).sum()) & 0xFFFFFFFF
        checks.append((lane, partial, expected))
    return checks


def run_pipeline(faults):
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=2), num_devices=DEVICES, faults=faults
    )
    checks = build_pipeline(queue)
    queue.finish()
    results = []
    for lane, partial, expected in checks:
        total = int(queue.enqueue_read(partial).astype(np.int64).sum()) & 0xFFFFFFFF
        assert total == expected, (lane, total, expected)
        results.append(total)
    return queue, results


def main() -> None:
    # --- 1. the fault-free baseline -------------------------------------- #
    baseline, base_results = run_pipeline(faults=None)
    print(
        f"fault-free: {LANES} lanes on {DEVICES} devices, makespan "
        f"{baseline.stats.makespan:.0f} cycles, results {base_results}"
    )

    # --- 2. a transient drop and a permanent device failure -------------- #
    plan = FaultPlan(
        specs=(
            FaultSpec(kind="device-transient", device=1, at_command=0),
            FaultSpec(kind="device-fail", device=0, at_command=2),
        ),
        max_retries=3,
        backoff_cycles=500.0,
    )
    faulted, fault_results = run_pipeline(faults=plan)
    stats = faulted.stats
    assert fault_results == base_results  # bit-exact despite the chaos
    print(
        f"faulted:    results identical; makespan {stats.makespan:.0f} cycles "
        f"({stats.makespan / baseline.stats.makespan:.2f}x), "
        f"{stats.launch_retries} retries, {stats.devices_lost} device lost, "
        f"{stats.evacuated_buffers} buffers evacuated, survivors "
        f"{faulted.alive_devices}"
    )
    for record in faulted.fault_injector.fired:
        print(
            f"  fired {record.spec.kind!r} on device {record.device} at cycle "
            f"{record.cycle:.0f} (command {record.label!r}, attempt "
            f"{record.attempt_index})"
        )

    # --- 3. an unrecoverable failure is a structured error --------------- #
    hopeless = FaultPlan(
        specs=tuple(
            FaultSpec(kind="device-transient", device=device, at_command=index)
            for device in range(DEVICES)
            for index in range(3)
        ),
        max_retries=1,
        backoff_cycles=100.0,
    )
    try:
        run_pipeline(faults=hopeless)
    except DeviceFailureError as error:
        print(
            f"exhausted retries: {error.event_label!r} failed after "
            f"{error.attempts} attempts; failed slice {error.graph_slice}"
        )

    # --- 4. crash-safe resumable sweep ----------------------------------- #
    with tempfile.TemporaryDirectory(prefix="repro-example-") as tmp:
        journal_path = Path(tmp) / "table3_journal.json"
        run_table3(cu_counts=(1,), scale=0.125, journal=journal_path)
        # A second run — as after a crash — resumes from the journal: every
        # cell is a hit, nothing is simulated again.
        meta = json.loads(journal_path.read_text(encoding="utf-8"))["meta"]
        journal = SweepJournal(journal_path, meta=meta)
        run_table3(cu_counts=(1,), scale=0.125, journal=journal)
        print(
            f"resumable sweep: {journal.hits} cells served from the journal, "
            f"{journal.misses} recomputed"
        )


if __name__ == "__main__":
    main()
