"""G-GPU vs RISC-V: a scaled-down version of the paper's evaluation.

Runs a subset of the seven micro-benchmarks on the RISC-V ISS and on G-GPUs
with 1/2/4/8 CUs, then prints the raw speed-up (Fig. 5) and the speed-up
derated by the synthesized area ratio (Fig. 6).  Input sizes are reduced so
the whole script finishes in well under a minute; pass ``--full`` to use the
paper's sizes.

Run with:  python examples/gpu_vs_riscv.py [--full]
"""

import sys

from repro import default_65nm
from repro.eval.benchmarks import run_table3
from repro.eval.comparison import compute_area_ratios, compute_speedups, derate_by_area
from repro.eval.figures import format_speedup_chart
from repro.eval.tables import format_table3


def main() -> None:
    scale = 1.0 if "--full" in sys.argv else 0.25
    kernels = ["mat_mul", "copy", "div_int", "parallel_sel"]
    print(f"Running {kernels} at {int(scale * 100)}% of the paper's input sizes...")

    table3 = run_table3(kernels=kernels, cu_counts=(1, 2, 4, 8), scale=scale)
    print("\n=== Cycle counts (Table III style) ===")
    print(format_table3(table3))

    speedups = compute_speedups(table3)
    print("\n=== Raw speed-up over RISC-V (Fig. 5 style) ===")
    print(format_speedup_chart(speedups))

    tech = default_65nm()
    ratios = compute_area_ratios(tech)
    print("\nG-GPU / RISC-V area ratios:", {n: round(r, 1) for n, r in ratios.as_dict().items()})
    derated = derate_by_area(speedups, ratios)
    print("\n=== Speed-up derated by area (Fig. 6 style) ===")
    print(format_speedup_chart(derated))

    print(
        f"\nbest raw speed-up: {speedups.best():.1f}x ({speedups.best_kernel()}); "
        f"best per-area speed-up: {derated.best():.2f}x ({derated.best_kernel()})"
    )


if __name__ == "__main__":
    main()
