"""Peer-to-peer transfers + prefetch: shave the host bounce off a DAG.

This walks the PR-5 transfer runtime end to end on a two-stage shuffle DAG
(stage 2 of lane ``l`` consumes the stage-1 outputs of lanes ``l`` *and*
``l+1``, so every schedule over 2+ devices must move dirty buffers between
devices):

1. **host-hop** — the PR-4 path: a cross-device hand-off is a device→host
   read-back plus a host→device write, two
   :meth:`~repro.arch.config.TransferConfig.cycles` hops.
2. **p2p** — :meth:`TransferConfig.with_p2p` enables a direct
   device↔device link; the same hand-off is now one cheaper hop that leaves
   the host image stale.
3. **p2p+prefetch** — additionally pins each lane to a device
   (``enqueue(..., device=...)``), prefetches its inputs there at
   ``enqueue_write`` time (``create_buffer(..., device=...)``), and drains
   the queue longest-projected-time first (``OutOfOrderQueue(lpt=True)``).

Results are bit-identical in every mode — the transfer model moves data and
placement, never the simulated kernels — but the makespan is not.

Run with:  PYTHONPATH=src python examples/multi_device_p2p.py
"""

import numpy as np

from repro.arch.config import GGPUConfig, TransferConfig
from repro.arch.kernel import NDRange
from repro.kernels import get_kernel_spec
from repro.runtime import OutOfOrderQueue

N = 512  # elements per lane
LANES = 8
DEVICES = 4
ALPHA, BETA = 3, 5
MASK = 0xFFFFFFFF


def build_shuffle_dag(queue, hints=None):
    """Enqueue the two-stage shuffle DAG; returns (output, expected) pairs."""
    saxpy = get_kernel_spec("saxpy").build()
    ndrange = NDRange(N, 64)
    stage1_events, stage1_outs, stage1_values = [], [], []
    for lane in range(LANES):
        device = hints.get(lane) if hints else None
        x_host = (np.arange(N, dtype=np.int64) + 17 * lane) & MASK
        y_host = ((np.arange(N, dtype=np.int64) * 3 + lane) % 251) & MASK
        x = queue.create_buffer(x_host, device=device)  # prefetched when hinted
        y = queue.create_buffer(y_host, device=device)
        out = queue.allocate_buffer(N)
        stage1_events.append(
            queue.enqueue(
                saxpy,
                ndrange,
                {"x": x, "y": y, "out": out, "alpha": ALPHA, "n": N},
                label=f"stage1[{lane}]",
                writes=("out",),
                device=device,
            )
        )
        stage1_outs.append(out)
        stage1_values.append((ALPHA * x_host + y_host) & MASK)
    checks = []
    for lane in range(LANES):
        peer = (lane + 1) % LANES
        device = hints.get(lane) if hints else None
        out = queue.allocate_buffer(N)
        queue.enqueue(
            saxpy,
            ndrange,
            {
                "x": stage1_outs[lane],
                "y": stage1_outs[peer],
                "out": out,
                "alpha": BETA,
                "n": N,
            },
            label=f"stage2[{lane}]",
            wait_for=(stage1_events[lane], stage1_events[peer]),
            writes=("out",),
            device=device,
        )
        checks.append((out, (BETA * stage1_values[lane] + stage1_values[peer]) & MASK))
    return checks


def run_mode(name, transfer, lpt=False, hints=None):
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=2),
        num_devices=DEVICES,
        transfer=transfer,
        lpt=lpt,
    )
    checks = build_shuffle_dag(queue, hints)
    queue.finish()
    makespan = queue.stats.makespan  # before the verification read-backs
    for out, expected in checks:
        observed = queue.enqueue_read(out).astype(np.int64)
        assert np.array_equal(observed, expected), name
    stats = queue.stats
    print(
        f"{name:<13} makespan {makespan:>8.0f} cycles | transfer "
        f"{stats.transfer_cycles:>7.0f} | p2p copies {stats.transfers_p2p:>2} | "
        f"read-backs {stats.transfers_from_device:>2} | "
        f"host→device writes {stats.transfers_to_device:>2}"
    )
    return makespan


def main() -> None:
    host_link = TransferConfig()  # DMA-ish defaults: 600 cycles + 8 B/cycle
    p2p_link = host_link.with_p2p(150, 32.0)  # on-package fabric next to it
    hints = {lane: lane % DEVICES for lane in range(LANES)}

    print(f"Two-stage shuffle DAG: {LANES} lanes x {N} words on {DEVICES} devices\n")
    host = run_mode("host-hop", host_link)
    p2p = run_mode("p2p", p2p_link)
    prefetch = run_mode("p2p+prefetch", p2p_link, lpt=True, hints=hints)

    print(
        f"\nP2P shaves the host bounce: {host / p2p:.2f}x; with prefetch + "
        f"affinity + LPT: {host / prefetch:.2f}x."
    )
    assert p2p <= host and prefetch <= host


if __name__ == "__main__":
    main()
