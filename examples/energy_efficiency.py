"""Energy-efficiency study: how much energy does a G-GPU save over a RISC-V?

The paper motivates G-GPU with energy efficiency but only reports speed-up
(Fig. 5) and speed-up per area (Fig. 6).  This example combines the library's
synthesized power numbers with measured cycle counts into the missing figure:
energy per benchmark run and the energy-efficiency gain over the RISC-V
baseline, at equal work.  It finishes by writing every table/figure it
computed as CSV/Markdown into ``./ggpu_reports/``.

The benchmark inputs are scaled down (factor 0.25) so the example runs in
about a minute; pass the paper's sizes through ``repro.eval.tables.build_table3``
for the full experiment.

Run with:  python examples/energy_efficiency.py
"""

from repro.eval.benchmarks import run_table3
from repro.eval.comparison import compute_area_ratios, compute_speedups, derate_by_area
from repro.eval.energy import build_energy_comparison, format_energy_table
from repro.eval.figures import format_speedup_chart
from repro.eval.reports import write_report_bundle
from repro.eval.tables import format_table3
from repro.tech.technology import default_65nm

SCALE = 0.25
CU_COUNTS = (1, 2, 4)


def main() -> None:
    tech = default_65nm()

    print(f"measuring the seven benchmarks at scale {SCALE} for {CU_COUNTS} CUs ...")
    table3 = run_table3(cu_counts=CU_COUNTS, scale=SCALE)
    print("\n=== Cycle counts (Table III protocol, scaled) ===")
    print(format_table3(table3))

    speedups = compute_speedups(table3)
    ratios = compute_area_ratios(tech, cu_counts=CU_COUNTS)
    derated = derate_by_area(speedups, ratios)
    print("\n=== Speed-up over the RISC-V (Fig. 5 protocol) ===")
    print(format_speedup_chart(speedups, width=30))

    print("\nsynthesizing the versions to get their power ...")
    energy = build_energy_comparison(table3, tech, frequency_mhz=667.0, cu_counts=CU_COUNTS)
    print("\n=== Energy per run and energy-efficiency gain (extension) ===")
    print(format_energy_table(energy))
    best_kernel = energy.gain_series().best_kernel()
    print(
        f"\nbest energy-efficiency gain: {energy.best():.1f}x on {best_kernel!r}; "
        "divergent kernels (div_int, xcorr, parallel_sel) gain the least, the same "
        "split the paper observes for raw speed-up"
    )

    written = write_report_bundle(
        "ggpu_reports",
        table3=table3,
        figure5=speedups,
        figure6=derated,
        energy=energy,
    )
    print(f"\nwrote {len(written)} report files to ./ggpu_reports/")
    for name in sorted(written):
        print(f"  {name}")


if __name__ == "__main__":
    main()
