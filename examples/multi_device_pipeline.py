"""Multi-device pipeline: overlap a two-stage kernel DAG across G-GPUs.

This walks the PR-4 multi-device runtime end to end:

1. Build an :class:`~repro.runtime.multidevice.OutOfOrderQueue` over four
   simulated G-GPU devices with the default host↔device transfer model
   (``TransferConfig``: fixed DMA latency + bytes/cycle streaming).
2. Stage 1 — four independent ``saxpy`` launches; with no events between
   them the scheduler fans them out, one per device.
3. Stage 2 — four ``reduce_sum`` launches, each waiting on one stage-1
   event.  Residency tracking keeps each intermediate buffer on the device
   that produced it, so the dependent launch lands there with no re-transfer.
4. Print the event-graph schedule, the transfer vs compute breakdown, the
   per-device utilization, and the critical-path makespan — then re-run the
   same DAG in order on one device to show what the overlap bought.

Run with:  PYTHONPATH=src python examples/multi_device_pipeline.py
"""

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.kernels import get_kernel_spec, pick_pow2_workgroup_size
from repro.runtime import MultiDeviceQueue, OutOfOrderQueue

N = 1024  # elements per pipeline lane
LANES = 4  # independent saxpy -> reduce_sum chains
ALPHA = 3


def build_pipeline(queue):
    """Enqueue LANES independent saxpy -> reduce_sum chains; returns checks."""
    saxpy = get_kernel_spec("saxpy").build()
    reduce_sum = get_kernel_spec("reduce_sum").build()
    workgroup = pick_pow2_workgroup_size(N)
    checks = []
    for lane in range(LANES):
        x_host = np.arange(N, dtype=np.int64) + 1000 * lane
        y_host = np.arange(N, dtype=np.int64)[::-1].copy()
        x = queue.create_buffer(x_host)
        y = queue.create_buffer(y_host)
        out = queue.allocate_buffer(N)
        partial = queue.allocate_buffer(N // workgroup)

        stage1 = queue.enqueue(
            saxpy,
            NDRange(N, workgroup),
            {"x": x, "y": y, "out": out, "alpha": ALPHA, "n": N},
            label=f"saxpy[{lane}]",
            writes=("out",),
        )
        queue.enqueue(
            reduce_sum,
            NDRange(N, workgroup),
            {"a": out, "partial": partial, "n": N},
            label=f"reduce[{lane}]",
            wait_for=(stage1,),
            writes=("partial",),
        )
        expected = int(((ALPHA * x_host + y_host) & 0xFFFFFFFF).sum()) & 0xFFFFFFFF
        checks.append((lane, partial, expected))
    return checks


def verify(queue, checks) -> None:
    for lane, partial, expected in checks:
        partials = queue.enqueue_read(partial).astype(np.int64)
        total = int(partials.sum()) & 0xFFFFFFFF
        assert total == expected, (lane, total, expected)


def report(title, queue) -> None:
    stats = queue.stats
    print(f"\n=== {title} ===")
    print(f"{'event':<12} {'dev':>3} {'start':>10} {'end':>10} {'xfer':>8} {'compute':>9}")
    for event in queue.schedule:
        print(
            f"{event.label:<12} {event.device:>3} {event.start_cycle:>10.0f} "
            f"{event.end_cycle:>10.0f} {event.transfer_cycles:>8.0f} "
            f"{event.compute_cycles:>9.0f}"
        )
    print(
        f"makespan {stats.makespan:.0f} cycles | critical path "
        f"{stats.critical_path_cycles:.0f} | compute {stats.compute_cycles:.0f} "
        f"| transfer {stats.transfer_cycles:.0f} "
        f"({100 * stats.transfer_fraction:.1f}% of busy cycles)"
    )
    utilization = ", ".join(
        f"dev{device}: {100 * value:.0f}%"
        for device, value in stats.device_utilization().items()
    )
    print(f"utilization: {utilization}")
    print(f"transfers skipped by residency tracking: {stats.transfers_skipped}")


def main() -> None:
    config = GGPUConfig(num_cus=2)

    overlapped = OutOfOrderQueue(config=config, num_devices=LANES)
    checks = build_pipeline(overlapped)
    overlapped.finish()
    verify(overlapped, checks)
    report(f"Out-of-order queue, {LANES} devices", overlapped)

    serial = MultiDeviceQueue(config=config, num_devices=1)
    checks = build_pipeline(serial)
    serial.finish()
    verify(serial, checks)
    report("In-order queue, 1 device", serial)

    speedup = serial.stats.makespan / overlapped.stats.makespan
    print(f"\nDevice-level overlap shrinks the makespan by {speedup:.2f}x.")


if __name__ == "__main__":
    main()
