"""Future-work study: replicate the memory controller and scale past 8 CUs.

The paper's 8-CU layout targeting 667 MHz only closes 600 MHz because the
routes between the peripheral CUs and the single central memory controller are
too long, and it proposes two follow-ups: replicate the controller to shorten
those routes, and scale the architecture beyond 8 CUs.  This example runs both
studies with the ``repro.scaling`` package:

1. the paper's monolithic 8-CU design at 667 MHz (reproduces the 600 MHz wall),
2. the same 8 CUs as 2 clusters x 4 CUs with replicated controllers,
3. a 16-CU design (4 clusters x 4 CUs) -- beyond the baseline's 8-CU limit.

Run with:  python examples/memctrl_replication.py
"""

from repro.arch.config import GGPUConfig
from repro.physical.layout import PhysicalSynthesis
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import generate_ggpu_netlist
from repro.scaling import ClusterConfig, run_clustered_flow
from repro.synth.logic import LogicSynthesis
from repro.tech.technology import default_65nm

TARGET_MHZ = 667.0


def implement_monolithic_8cu(tech):
    """The paper's 8-CU design with a single central memory controller."""
    netlist = generate_ggpu_netlist(GGPUConfig(num_cus=8), name="8cu_monolithic")
    TimingOptimizer(tech).close_timing(netlist, TARGET_MHZ)
    synthesis = LogicSynthesis(tech).run(netlist, TARGET_MHZ)
    layout = PhysicalSynthesis(tech).run(netlist, synthesis, TARGET_MHZ)
    return synthesis, layout


def main() -> None:
    tech = default_65nm()

    print(f"=== 1. monolithic 8 CUs @ {TARGET_MHZ:.0f} MHz (the paper's design) ===")
    synthesis, layout = implement_monolithic_8cu(tech)
    print(
        f"area {synthesis.total_area_mm2:.2f} mm2, power {synthesis.total_power_w:.2f} W, "
        f"worst CU route {layout.floorplan.max_cu_distance_um():.0f} um, "
        f"achieved {layout.achieved_frequency_mhz:.0f} MHz"
        + ("  <-- the 600 MHz wall" if not layout.timing_met else "")
    )

    print(f"\n=== 2. 8 CUs as 2 clusters x 4 CUs (replicated controllers) ===")
    clustered = run_clustered_flow(tech, ClusterConfig(num_clusters=2, cus_per_cluster=4), TARGET_MHZ)
    print(clustered.summary())
    extra_area = clustered.total_area_mm2 - synthesis.total_area_mm2
    print(
        f"cost of the second controller: +{extra_area:.2f} mm2 "
        f"({100.0 * extra_area / synthesis.total_area_mm2:.1f}% area) for "
        f"+{clustered.achieved_frequency_mhz - layout.achieved_frequency_mhz:.0f} MHz"
    )

    print(f"\n=== 3. scaling beyond 8 CUs: 16 CUs as 4 clusters x 4 CUs ===")
    sixteen = run_clustered_flow(tech, ClusterConfig(num_clusters=4, cus_per_cluster=4), TARGET_MHZ)
    print(sixteen.summary())
    print("\nFloorplan sketch of the 16-CU design:")
    print(sixteen.layout.ascii_floorplan(columns=72, rows=20))


if __name__ == "__main__":
    main()
