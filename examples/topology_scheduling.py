"""Topology-aware scheduling: HEFT and work stealing beat LPT on a trap DAG.

This walks the PR-8 scheduling runtime end to end on a *layered* DAG built to
fool greedy size-first scheduling: one long dependency chain of small
"backbone" copies (the critical path) sits next to a band of fat, completely
independent "head" copies.  LPT drains the fat heads first — they project the
longest — and only then discovers that the backbone serializes the tail of
the schedule.

1. **lpt** — the PR-5 flush order: longest projected time first, blind to
   dependencies.
2. **heft** — classic upward-rank list scheduling: each command is ranked by
   its own cost plus the most expensive dependent path below it (communication
   priced through the attached :class:`~repro.arch.config.Topology`), so the
   backbone chain launches ahead of the fat heads it unblocks nothing with.
3. **stealing** — a deterministic work-stealing flush order: the virtually
   idlest device repeatedly claims the ready command that could *start*
   soonest (readiness-aware, so chain successors don't jump the queue), with
   seeded tie-breaks (``steal_seed``).

All three run on a two-switch fabric (:meth:`Topology.two_switch`): cheap
links inside each half, a 6x-slower inter-switch hop between them.  Results
are bit-identical in every cell — topology and flush order reshape the
*schedule*, never the simulated kernels — but the makespan is not.

Run with:  PYTHONPATH=src python examples/topology_scheduling.py
"""

import numpy as np

from repro.arch.config import GGPUConfig, Topology
from repro.arch.kernel import NDRange
from repro.kernels import get_kernel_spec
from repro.runtime import OutOfOrderQueue

DEVICES = 8
DEPTH = 12  # backbone chain length (the critical path)
WIDTH = 24  # independent fat heads
CHAIN_N = 256  # words per backbone link
HEAD_N = 4 * CHAIN_N  # words per head: fat enough to fool LPT
MASK = 0xFFFFFFFF


def build_layered_dag(queue):
    """Enqueue the backbone chain + fat heads; returns (output, expected) pairs."""
    copy = get_kernel_spec("copy").build()
    checks = []
    chain_host = (np.arange(CHAIN_N, dtype=np.int64) * 7 + 1) & MASK
    src = queue.create_buffer(chain_host)
    event = None
    for link in range(DEPTH):
        dst = queue.allocate_buffer(CHAIN_N)
        event = queue.enqueue(
            copy,
            NDRange(CHAIN_N, 64),
            {"dst": dst, "src": src, "n": CHAIN_N},
            label=f"backbone[{link}]",
            wait_for=(event,) if event is not None else (),
            writes=("dst",),
        )
        src = dst
    checks.append((src, chain_host))
    for index in range(WIDTH):
        head_host = (np.arange(HEAD_N, dtype=np.int64) * 3 + 11 * index) & MASK
        head_src = queue.create_buffer(head_host)
        head_dst = queue.allocate_buffer(HEAD_N)
        queue.enqueue(
            copy,
            NDRange(HEAD_N, 64),
            {"dst": head_dst, "src": head_src, "n": HEAD_N},
            label=f"head[{index}]",
            writes=("dst",),
        )
        checks.append((head_dst, head_host))
    return checks


def run_scheduler(scheduler):
    queue = OutOfOrderQueue(
        config=GGPUConfig(num_cus=2),
        num_devices=DEVICES,
        topology=Topology.two_switch(DEVICES),
        scheduler=scheduler,
        steal_seed=2022,
    )
    checks = build_layered_dag(queue)
    queue.finish()
    makespan = queue.stats.makespan  # before the verification read-backs
    for out, expected in checks:
        observed = queue.enqueue_read(out).astype(np.int64)
        assert np.array_equal(observed, expected), scheduler
    stats = queue.stats
    print(
        f"{scheduler:<9} makespan {makespan:>8.0f} cycles | compute "
        f"{stats.total_cycles:>7.0f} | transfer {stats.transfer_cycles:>7.0f} | "
        f"mean util {stats.utilization:>5.1%}"
    )
    return makespan, stats.total_cycles


def main() -> None:
    print(
        f"Layered trap DAG: {DEPTH}-deep backbone @ {CHAIN_N} words + "
        f"{WIDTH} heads @ {HEAD_N} words on {DEVICES} devices "
        f"(two-switch fabric)\n"
    )
    lpt, lpt_compute = run_scheduler("lpt")
    heft, heft_compute = run_scheduler("heft")
    stealing, steal_compute = run_scheduler("stealing")

    # The standing invariant: schedulers reshape the schedule, not the work.
    assert lpt_compute == heft_compute == steal_compute
    print(
        f"\nHEFT launches the backbone first: {lpt / heft:.2f}x vs LPT; "
        f"work stealing: {lpt / stealing:.2f}x."
    )
    assert heft <= lpt and stealing <= lpt


if __name__ == "__main__":
    main()
