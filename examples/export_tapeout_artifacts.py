"""Generate a G-GPU and export its tapeout hand-off artifacts.

The output of GPUPlanner is a tapeout-ready IP.  This example runs the full
flow for a 1-CU, 667 MHz G-GPU and writes the artifacts an integrator would
receive:

* structural Verilog of the optimized netlist (divided memories, inserted
  pipelines),
* a DEF placement view and a LEF abstract of the SRAM macros,
* an SVG rendering of the floorplan with the paper's colour coding
  (Fig. 3-style), and
* the JSON layout description (the GDSII stand-in).

Everything is written to ``./ggpu_ip_<label>/``.

Run with:  python examples/export_tapeout_artifacts.py
"""

import os

from repro import GGPUSpec, GpuPlannerFlow, default_65nm
from repro.physical.export import export_layout_bundle
from repro.rtl.verilog import emit_verilog, verilog_statistics


def main() -> None:
    tech = default_65nm()
    spec = GGPUSpec(num_cus=1, target_frequency_mhz=667.0)
    flow = GpuPlannerFlow(tech)

    print(f"running the GPUPlanner flow for {spec.label} ...")
    result = flow.run(spec)
    print(result.summary())

    directory = f"ggpu_ip_{spec.label}"
    os.makedirs(directory, exist_ok=True)

    # RTL hand-off: the optimized structural netlist as Verilog.
    design = emit_verilog(result.netlist, tech)
    rtl_path = os.path.join(directory, f"{spec.label}.v")
    design.write(rtl_path)
    stats = verilog_statistics(design.text())
    print(
        f"\nwrote {rtl_path}: {stats['modules']} modules, "
        f"{stats['macro_instances']} SRAM macro instances, "
        f"{stats['pipeline_registers']} pipeline register banks"
    )

    # Physical hand-off: DEF + LEF + SVG + JSON.
    paths = export_layout_bundle(result.layout, result.netlist, tech, directory)
    print("physical artifacts:")
    for kind, path in sorted(paths.items()):
        print(f"  {kind:4s} -> {path}")

    print(
        f"\nIP summary: {result.synthesis.total_area_mm2:.2f} mm2, "
        f"{result.synthesis.total_power_w:.2f} W, achieved "
        f"{result.achieved_frequency_mhz:.0f} MHz "
        f"({result.optimization.num_divisions} memory divisions, "
        f"{result.optimization.num_pipelines} pipeline insertions)"
    )


if __name__ == "__main__":
    main()
