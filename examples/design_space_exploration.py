"""Design-space exploration: sweep CU counts and frequencies like the paper.

Regenerates (a small text version of) Table I, prints the Pareto frontier of
area vs. throughput, and shows the first-order map recommendations that tell a
designer which memories to divide and where pipelines are needed for each
frequency step.

Run with:  python examples/design_space_exploration.py
"""

from repro import DesignSpaceExplorer, GGPUSpec, default_65nm
from repro.planner.estimator import PpaMap
from repro.synth.report import format_table1


def main() -> None:
    tech = default_65nm()
    explorer = DesignSpaceExplorer(tech)

    print("=== Sweeping 1/2/4/8 CUs x 500/590/667 MHz (the paper's 12 versions) ===")
    points = explorer.explore(cu_counts=(1, 2, 4, 8), frequencies_mhz=(500.0, 590.0, 667.0))
    print(format_table1([point.synthesis for point in points]))

    print("\n=== Feasible points and Pareto frontier (area vs. throughput proxy) ===")
    for point in explorer.pareto_frontier(explorer.feasible_points(points)):
        print(
            f"  {point.label():12s} area {point.area_mm2:6.2f} mm2  "
            f"power {point.power_w:5.2f} W  throughput proxy {point.throughput_proxy:7.0f}  "
            f"efficiency {point.efficiency_proxy:6.1f}"
        )

    print("\n=== The 'map': what has to change to reach each frequency (1 CU) ===")
    ppa_map = PpaMap(tech)
    for frequency in (500.0, 590.0, 667.0):
        estimate = ppa_map.estimate(GGPUSpec(num_cus=1, target_frequency_mhz=frequency))
        print()
        print(estimate.summary())

    print("\n=== Technology agnosticism: slower memories shift the whole map ===")
    slow_memories = PpaMap(tech, memory_delay_overrides_ns={"register_file": 1.9})
    estimate = slow_memories.estimate(GGPUSpec(num_cus=1, target_frequency_mhz=500.0))
    print(estimate.summary())


if __name__ == "__main__":
    main()
