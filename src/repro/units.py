"""Unit helpers used across the technology, synthesis, and physical models.

The library keeps all internal quantities in a small set of base units:

* time      -- nanoseconds (ns)
* frequency -- megahertz (MHz)
* length    -- micrometres (um)
* area      -- square micrometres (um^2); reports often convert to mm^2
* power     -- milliwatts (mW); reports often convert to W
* energy    -- picojoules (pJ)

These helpers exist so conversions are explicit and greppable instead of being
scattered magic constants.
"""

from __future__ import annotations

UM2_PER_MM2 = 1.0e6
MW_PER_W = 1.0e3
NS_PER_US = 1.0e3
KHZ_PER_MHZ = 1.0e3


def mhz_to_ns(freq_mhz: float) -> float:
    """Clock period in nanoseconds for a frequency in MHz."""
    if freq_mhz <= 0:
        raise ValueError(f"frequency must be positive, got {freq_mhz}")
    return 1.0e3 / freq_mhz


def ns_to_mhz(period_ns: float) -> float:
    """Frequency in MHz for a clock period in nanoseconds."""
    if period_ns <= 0:
        raise ValueError(f"period must be positive, got {period_ns}")
    return 1.0e3 / period_ns


def um2_to_mm2(area_um2: float) -> float:
    """Convert an area from um^2 to mm^2."""
    return area_um2 / UM2_PER_MM2


def mm2_to_um2(area_mm2: float) -> float:
    """Convert an area from mm^2 to um^2."""
    return area_mm2 * UM2_PER_MM2


def mw_to_w(power_mw: float) -> float:
    """Convert a power from mW to W."""
    return power_mw / MW_PER_W


def w_to_mw(power_w: float) -> float:
    """Convert a power from W to mW."""
    return power_w * MW_PER_W


def cycles_for(time_ns: float, freq_mhz: float) -> int:
    """Number of whole clock cycles needed to cover ``time_ns`` at ``freq_mhz``."""
    period = mhz_to_ns(freq_mhz)
    if time_ns <= 0:
        return 0
    cycles = int(time_ns / period)
    if cycles * period < time_ns - 1e-12:
        cycles += 1
    return cycles


def kcycles(cycles: int) -> float:
    """Express a raw cycle count in thousands of cycles (paper's Table III unit)."""
    return cycles / 1.0e3
