"""RISC-V (RV32IM) baseline used for the performance comparison.

The paper compares the G-GPU against "an implementation of the popular RISC-V
architecture" (the OpenHW CV32E40P, a 4-stage in-order RV32IM core) with 32 kB
of memory, synthesized in the same 65nm technology at 667 MHz.  This package
is the Python stand-in for that baseline:

* :mod:`repro.riscv.isa` -- the RV32IM instruction set with its real 32-bit
  encodings,
* :mod:`repro.riscv.assembler` -- a label-aware assembler with the usual
  pseudo-instructions (``li``, ``la``, ``mv``, ``j`` ...),
* :mod:`repro.riscv.cpu` -- an instruction-set simulator with a simple
  in-order cycle model (single-cycle ALU, branch-flush penalty, multi-cycle
  multiply/divide, tightly-coupled single-cycle data memory),
* :mod:`repro.riscv.programs` -- the seven micro-benchmarks written as
  scalar loops, mirroring what a C compiler produces for the OpenCL kernels.
"""

from repro.riscv.isa import RvInstruction, RvOpcode, RvFormat, encode_rv, decode_rv
from repro.riscv.assembler import RvAssembler, RvProgram
from repro.riscv.decode import RvDecodedProgram, predecode_riscv_program
from repro.riscv.memory import RvMemory
from repro.riscv.cpu import RiscvCpu, CpuStats, RV32_SYNTH_AREA_MM2

__all__ = [
    "RvInstruction",
    "RvOpcode",
    "RvFormat",
    "encode_rv",
    "decode_rv",
    "RvAssembler",
    "RvProgram",
    "RvDecodedProgram",
    "predecode_riscv_program",
    "RvMemory",
    "RiscvCpu",
    "CpuStats",
    "RV32_SYNTH_AREA_MM2",
]
