"""Label-aware RV32IM assembler with the standard pseudo-instructions.

The benchmark programs are generated programmatically (the stand-in for
compiling the C versions of the OpenCL kernels with GCC), so the assembler
offers the conveniences a compiler back end relies on: labels, ``li``/``la``
constant materialization, ``mv``/``j``/``nop`` pseudo-instructions, and a
``halt`` (EBREAK) to stop the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblyError
from repro.riscv.isa import RvInstruction, RvOpcode, encode_rv

# Common ABI register names used by the program builders.
ZERO, RA, SP, GP, TP = 0, 1, 2, 3, 4
T0, T1, T2 = 5, 6, 7
S0, S1 = 8, 9
A0, A1, A2, A3, A4, A5, A6, A7 = 10, 11, 12, 13, 14, 15, 16, 17
S2, S3, S4, S5, S6, S7, S8, S9, S10, S11 = 18, 19, 20, 21, 22, 23, 24, 25, 26, 27
T3, T4, T5, T6 = 28, 29, 30, 31


@dataclass(frozen=True)
class RvProgram:
    """An assembled RISC-V program (text section only, base address 0)."""

    name: str
    instructions: Tuple[RvInstruction, ...]
    labels: Dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instructions)

    def __getitem__(self, index: int) -> RvInstruction:
        return self.instructions[index]

    def encode(self) -> List[int]:
        """Machine words of the whole program."""
        return [encode_rv(instruction) for instruction in self.instructions]

    def listing(self) -> str:
        """Human-readable listing with byte addresses."""
        by_address: Dict[int, List[str]] = {}
        for label, address in self.labels.items():
            by_address.setdefault(address, []).append(label)
        lines = []
        for index, instruction in enumerate(self.instructions):
            address = index * 4
            for label in sorted(by_address.get(address, [])):
                lines.append(f"{label}:")
            lines.append(f"  {address:#06x}: {instruction.text()}")
        return "\n".join(lines)


class RvAssembler:
    """Incremental RV32IM assembler."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._items: List[object] = []  # RvInstruction or pending-branch tuples
        self._labels: Dict[str, int] = {}
        self._counter = 0

    # ------------------------------------------------------------------ #
    # Labels
    # ------------------------------------------------------------------ #
    @property
    def next_address(self) -> int:
        """Byte address the next emitted instruction will occupy."""
        return len(self._items) * 4

    def unique_label(self, stem: str) -> str:
        """Fresh label name."""
        self._counter += 1
        return f"{stem}_{self._counter}"

    def label(self, name: Optional[str] = None) -> str:
        """Define a label at the current address."""
        if name is None:
            name = self.unique_label("L")
        if name in self._labels:
            raise AssemblyError(f"label {name!r} already defined")
        self._labels[name] = self.next_address
        return name

    # ------------------------------------------------------------------ #
    # Raw instructions
    # ------------------------------------------------------------------ #
    def emit(
        self,
        opcode: RvOpcode,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        label: Optional[str] = None,
    ) -> None:
        """Emit one instruction; ``label`` defers the offset to assembly time."""
        self._items.append(RvInstruction(opcode, rd=rd, rs1=rs1, rs2=rs2, imm=imm, label=label))

    # ------------------------------------------------------------------ #
    # Pseudo-instructions
    # ------------------------------------------------------------------ #
    def li(self, rd: int, value: int) -> None:
        """Load a 32-bit constant."""
        value = int(value)
        if value < -(1 << 31) or value >= (1 << 32):
            raise AssemblyError(f"li constant {value} does not fit in 32 bits")
        if value >= (1 << 31):
            value -= 1 << 32
        if -2048 <= value <= 2047:
            self.emit(RvOpcode.ADDI, rd=rd, rs1=ZERO, imm=value)
            return
        upper = (value + 0x800) >> 12
        lower = value - (upper << 12)
        self.emit(RvOpcode.LUI, rd=rd, imm=upper & 0xFFFFF)
        if lower:
            self.emit(RvOpcode.ADDI, rd=rd, rs1=rd, imm=lower)

    def la(self, rd: int, address: int) -> None:
        """Load an absolute data address (flat memory, so same as ``li``)."""
        self.li(rd, address)

    def mv(self, rd: int, rs: int) -> None:
        """Register move."""
        self.emit(RvOpcode.ADDI, rd=rd, rs1=rs, imm=0)

    def nop(self) -> None:
        """No operation."""
        self.emit(RvOpcode.ADDI, rd=ZERO, rs1=ZERO, imm=0)

    def j(self, label: str) -> None:
        """Unconditional jump to a label."""
        self.emit(RvOpcode.JAL, rd=ZERO, label=label)

    def halt(self) -> None:
        """Stop the simulation (EBREAK)."""
        self.emit(RvOpcode.EBREAK)

    # ------------------------------------------------------------------ #
    # Assembly
    # ------------------------------------------------------------------ #
    def assemble(self) -> RvProgram:
        """Resolve label references into PC-relative offsets."""
        resolved: List[RvInstruction] = []
        for index, item in enumerate(self._items):
            instruction = item
            if instruction.label is not None:
                if instruction.label not in self._labels:
                    raise AssemblyError(f"undefined label {instruction.label!r} in {self.name}")
                offset = self._labels[instruction.label] - index * 4
                instruction = RvInstruction(
                    instruction.opcode,
                    rd=instruction.rd,
                    rs1=instruction.rs1,
                    rs2=instruction.rs2,
                    imm=offset,
                    label=instruction.label,
                )
            resolved.append(instruction)
        return RvProgram(self.name, tuple(resolved), dict(self._labels))
