"""Scalar RISC-V version of the ``conv2d`` benchmark."""

from __future__ import annotations

from repro.kernels import conv2d as gpu_conv2d
from repro.kernels.conv2d import KSIZE, WIDTH
from repro.riscv.assembler import (
    A0,
    A1,
    A2,
    A3,
    RvAssembler,
    S2,
    S3,
    T0,
    T1,
    T2,
    T3,
    T6,
)
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "conv2d"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Fully unrolled 3x3 stencil per pixel, walking the image row-major."""
    workload = gpu_conv2d.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)
    stride = WIDTH + 2

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["src"])
    asm.li(A1, addresses["krn"])
    asm.li(A2, addresses["out"])
    asm.li(A3, size)
    asm.li(T0, 0)  # i: flat pixel index, y = i / 16, x = i % 16
    asm.label("loop")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    # T1 = &src[y][x]: the stencil's top-left tap (input rows carry a halo).
    asm.emit(RvOpcode.SRLI, rd=T1, rs1=T0, imm=4)  # y
    asm.li(T2, stride)
    asm.emit(RvOpcode.MUL, rd=T1, rs1=T1, rs2=T2)
    asm.emit(RvOpcode.ANDI, rd=T2, rs1=T0, imm=WIDTH - 1)  # x
    asm.emit(RvOpcode.ADD, rd=T1, rs1=T1, rs2=T2)
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T1, imm=2)
    asm.emit(RvOpcode.ADD, rd=T1, rs1=T1, rs2=A0)
    asm.li(T3, 0)  # acc
    for ky in range(KSIZE):
        for kx in range(KSIZE):
            asm.emit(RvOpcode.LW, rd=S2, rs1=T1, imm=4 * (ky * stride + kx))
            asm.emit(RvOpcode.LW, rd=S3, rs1=A1, imm=4 * (ky * KSIZE + kx))
            asm.emit(RvOpcode.MUL, rd=S2, rs1=S2, rs2=S3)
            asm.emit(RvOpcode.ADD, rd=T3, rs1=T3, rs2=S2)
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A2)
    asm.emit(RvOpcode.SW, rs1=T6, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("loop")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar unrolled 3x3 stencil over the haloed image",
        build_case=build_case,
        paper_size=128,
    )
)
