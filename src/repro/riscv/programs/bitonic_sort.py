"""Scalar RISC-V version of the ``bitonic_sort`` benchmark.

Sorted output is unique, so the scalar side does not replay the bitonic
network: it runs a plain in-place exchange sort over each 64-element chunk
(copy the chunk to ``out``, then compare-swap every pair), which is the
natural scalar formulation and still agrees with the GPU bit-exactly.
"""

from __future__ import annotations

from repro.kernels import bitonic_sort as gpu_bitonic_sort
from repro.kernels.bitonic_sort import CHUNK
from repro.riscv.assembler import (
    A0,
    A1,
    A3,
    RvAssembler,
    S2,
    S3,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
)
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "bitonic_sort"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Copy ``a`` to ``out``, then exchange-sort each 64-element chunk."""
    workload = gpu_bitonic_sort.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["a"])
    asm.li(A1, addresses["out"])
    asm.li(A3, size)
    # out[i] = a[i]
    asm.li(T0, 0)
    asm.label("copy")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="copy_end")
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=T1, rs2=A0)
    asm.emit(RvOpcode.LW, rd=T3, rs1=T2, imm=0)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=T1, rs2=A1)
    asm.emit(RvOpcode.SW, rs1=T2, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("copy")
    asm.label("copy_end")
    # For each chunk base: for i, for j > i: swap out[i], out[j] if needed.
    asm.li(T0, 0)  # chunk base (element index)
    asm.label("chunk")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.emit(RvOpcode.ADDI, rd=T5, rs1=T0, imm=CHUNK)  # chunk limit
    asm.mv(T1, T0)  # i
    asm.label("outer")
    asm.emit(RvOpcode.BGE, rs1=T1, rs2=T5, label="outer_end")
    asm.emit(RvOpcode.ADDI, rd=T2, rs1=T1, imm=1)  # j
    asm.label("inner")
    asm.emit(RvOpcode.BGE, rs1=T2, rs2=T5, label="inner_end")
    asm.emit(RvOpcode.SLLI, rd=T3, rs1=T1, imm=2)
    asm.emit(RvOpcode.ADD, rd=T3, rs1=T3, rs2=A1)  # &out[i]
    asm.emit(RvOpcode.SLLI, rd=T4, rs1=T2, imm=2)
    asm.emit(RvOpcode.ADD, rd=T4, rs1=T4, rs2=A1)  # &out[j]
    asm.emit(RvOpcode.LW, rd=S2, rs1=T3, imm=0)
    asm.emit(RvOpcode.LW, rd=S3, rs1=T4, imm=0)
    asm.emit(RvOpcode.BGE, rs1=S3, rs2=S2, label="no_swap")
    asm.emit(RvOpcode.SW, rs1=T3, rs2=S3, imm=0)
    asm.emit(RvOpcode.SW, rs1=T4, rs2=S2, imm=0)
    asm.label("no_swap")
    asm.emit(RvOpcode.ADDI, rd=T2, rs1=T2, imm=1)
    asm.j("inner")
    asm.label("inner_end")
    asm.emit(RvOpcode.ADDI, rd=T1, rs1=T1, imm=1)
    asm.j("outer")
    asm.label("outer_end")
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=CHUNK)
    asm.j("chunk")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar per-chunk exchange sort (sorted output is unique)",
        build_case=build_case,
        paper_size=128,
    )
)
