"""Scalar RISC-V version of the ``saxpy`` benchmark."""

from __future__ import annotations

from repro.kernels import saxpy as gpu_saxpy
from repro.riscv.assembler import A0, A1, A2, A3, A4, RvAssembler, T0, T1, T2, T3, T4
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "saxpy"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Build the runnable case: ``for i in range(n): out[i] = alpha*x[i] + y[i]``."""
    workload = gpu_saxpy.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["x"])
    asm.li(A1, addresses["y"])
    asm.li(A2, addresses["out"])
    asm.li(A3, size)
    asm.li(A4, int(workload.scalars["alpha"]))
    asm.li(T0, 0)
    asm.label("loop")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A0, rs2=T1)
    asm.emit(RvOpcode.LW, rd=T3, rs1=T2, imm=0)
    asm.emit(RvOpcode.MUL, rd=T3, rs1=T3, rs2=A4)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A1, rs2=T1)
    asm.emit(RvOpcode.LW, rd=T4, rs1=T2, imm=0)
    asm.emit(RvOpcode.ADD, rd=T3, rs1=T3, rs2=T4)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A2, rs2=T1)
    asm.emit(RvOpcode.SW, rs1=T2, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("loop")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar integer SAXPY",
        build_case=build_case,
        paper_size=1024,
    )
)
