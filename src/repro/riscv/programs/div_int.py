"""Scalar RISC-V version of the ``div_int`` benchmark.

Unlike the G-GPU, the RV32IM baseline has a hardware divider, so each element
costs a single (multi-cycle) ``divu`` instruction.  This asymmetry is the
reason div_int is the least favourable kernel for the G-GPU in Fig. 5.
"""

from __future__ import annotations

from repro.kernels import div_int as gpu_div_int
from repro.riscv.assembler import A0, A1, A2, A3, RvAssembler, T0, T1, T2, T3, T4
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "div_int"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Build the runnable case: ``for i in range(n): q[i] = a[i] / b[i]``."""
    workload = gpu_div_int.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["a"])
    asm.li(A1, addresses["b"])
    asm.li(A2, addresses["q"])
    asm.li(A3, size)
    asm.li(T0, 0)
    asm.label("loop")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A0, rs2=T1)
    asm.emit(RvOpcode.LW, rd=T3, rs1=T2, imm=0)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A1, rs2=T1)
    asm.emit(RvOpcode.LW, rd=T4, rs1=T2, imm=0)
    asm.emit(RvOpcode.DIVU, rd=T3, rs1=T3, rs2=T4)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A2, rs2=T1)
    asm.emit(RvOpcode.SW, rs1=T2, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("loop")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar element-wise integer division (hardware divider)",
        build_case=build_case,
        paper_size=512,
    )
)
