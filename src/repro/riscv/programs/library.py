"""Registry and runner plumbing for the RISC-V benchmark programs.

A :class:`RiscvCase` is one concrete, runnable instance of a benchmark: the
assembled program, a data memory pre-loaded with the same buffers the G-GPU
version uses, and the expected final contents of the output buffers.  The
registry mirrors :mod:`repro.kernels.library` so the evaluation harness can
pair both sides by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import KernelError, SimulationError
from repro.kernels.library import GpuWorkload
from repro.riscv.assembler import RvProgram
from repro.riscv.cpu import CpuStats, RiscvCpu
from repro.riscv.memory import RvMemory


@dataclass
class RiscvCase:
    """One runnable RISC-V benchmark instance."""

    name: str
    program: RvProgram
    memory: RvMemory
    buffer_addresses: Dict[str, int]
    expected: Dict[str, np.ndarray]

    def run(self, check: bool = True, cpu: Optional[RiscvCpu] = None) -> Tuple[CpuStats, Dict[str, np.ndarray]]:
        """Execute the program; optionally verify the output buffers."""
        cpu = cpu or RiscvCpu(self.memory)
        if cpu.memory is not self.memory:
            raise SimulationError("the provided CPU must use this case's memory")
        stats = cpu.run(self.program)
        outputs: Dict[str, np.ndarray] = {}
        for name, expected in self.expected.items():
            observed = self.memory.read_buffer(self.buffer_addresses[name], len(expected))
            outputs[name] = observed
            if check:
                expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
                if not np.array_equal(observed.astype(np.int64), expected_u32):
                    mismatches = int(np.sum(observed.astype(np.int64) != expected_u32))
                    raise KernelError(
                        f"RISC-V program {self.name!r} produced {mismatches} wrong values in {name!r}"
                    )
        return stats, outputs


@dataclass(frozen=True)
class RiscvProgramSpec:
    """Registry entry for one RISC-V benchmark program."""

    name: str
    description: str
    build_case: Callable[[int, int], RiscvCase]
    paper_size: int

    def default_case(self, seed: int = 2022) -> RiscvCase:
        """Case at the RISC-V input size used in the paper (Table III)."""
        return self.build_case(self.paper_size, seed)


_REGISTRY: Dict[str, RiscvProgramSpec] = {}


def register_riscv_program(spec: RiscvProgramSpec) -> RiscvProgramSpec:
    """Add a program to the registry (called by the program modules)."""
    if spec.name in _REGISTRY:
        raise KernelError(f"RISC-V program {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def all_riscv_program_names() -> List[str]:
    """Registered program names in extended-table order (mirrors the GPU side)."""
    from repro.kernels.library import (
        DENSE_KERNEL_NAMES,
        EXTENDED_KERNEL_NAMES,
        PAPER_KERNEL_NAMES,
    )

    order = (
        list(PAPER_KERNEL_NAMES) + list(EXTENDED_KERNEL_NAMES) + list(DENSE_KERNEL_NAMES)
    )
    known = [name for name in order if name in _REGISTRY]
    extras = sorted(name for name in _REGISTRY if name not in order)
    return known + extras


def get_riscv_program_spec(name: str) -> RiscvProgramSpec:
    """Look a program up by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KernelError(
            f"unknown RISC-V program {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc


def load_workload_into_memory(
    workload: GpuWorkload, memory_bytes: int = 32 * 1024
) -> Tuple[RvMemory, Dict[str, int]]:
    """Place a GPU workload's buffers into a fresh RISC-V data memory.

    Returns the memory and the base address of every buffer, in declaration
    order, mirroring what the host does for the G-GPU.
    """
    memory = RvMemory(memory_bytes)
    addresses: Dict[str, int] = {}
    for name, contents in workload.buffers.items():
        data = np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
        address = memory.allocate(len(data))
        memory.write_buffer(address, data)
        addresses[name] = address
    return memory, addresses
