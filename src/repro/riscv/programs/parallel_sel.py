"""Scalar RISC-V version of the ``parallel_sel`` (rank sort) benchmark."""

from __future__ import annotations

from repro.kernels import parallel_sel as gpu_parallel_sel
from repro.riscv.assembler import (
    A0,
    A1,
    A3,
    RvAssembler,
    S2,
    T0,
    T1,
    T2,
    T3,
    T4,
    T6,
)
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "parallel_sel"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Build the runnable case: rank sort with an O(N) scan per element."""
    workload = gpu_parallel_sel.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["a"])
    asm.li(A1, addresses["out"])
    asm.li(A3, size)
    asm.li(T0, 0)  # i
    asm.label("outer")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    # my = a[i]
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A0)
    asm.emit(RvOpcode.LW, rd=T3, rs1=T6, imm=0)
    asm.li(T2, 0)  # rank
    asm.li(T1, 0)  # j
    asm.label("inner")
    asm.emit(RvOpcode.BGE, rs1=T1, rs2=A3, label="inner_end")
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T1, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A0)
    asm.emit(RvOpcode.LW, rd=T4, rs1=T6, imm=0)
    asm.emit(RvOpcode.SLT, rd=S2, rs1=T4, rs2=T3)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=T2, rs2=S2)
    asm.emit(RvOpcode.ADDI, rd=T1, rs1=T1, imm=1)
    asm.j("inner")
    asm.label("inner_end")
    # out[rank] = my
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T2, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A1)
    asm.emit(RvOpcode.SW, rs1=T6, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("outer")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar rank (selection) sort",
        build_case=build_case,
        paper_size=128,
    )
)
