"""Scalar RISC-V version of the ``dot`` benchmark (per-workgroup partials)."""

from __future__ import annotations

from repro.kernels import dot as gpu_dot
from repro.riscv.assembler import (
    A3,
    A4,
    A5,
    A6,
    A7,
    RvAssembler,
    S0,
    S1,
    T0,
    T1,
    T2,
)
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "dot"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Chunked dot product: one partial per GPU workgroup, in chunk order."""
    workload = gpu_dot.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)
    workgroup = workload.ndrange.workgroup_size
    num_workgroups = workload.ndrange.num_workgroups

    asm = RvAssembler(NAME)
    asm.li(A3, num_workgroups)
    asm.li(A4, workgroup)
    asm.li(A5, addresses["a"])
    asm.li(A6, addresses["b"])
    asm.li(A7, addresses["partial"])
    asm.li(T0, 0)  # workgroup index
    asm.label("outer")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.li(T1, 0)  # accumulator
    asm.li(T2, 0)  # element-in-chunk index
    asm.label("inner")
    asm.emit(RvOpcode.BGE, rs1=T2, rs2=A4, label="inner_end")
    asm.emit(RvOpcode.LW, rd=S0, rs1=A5, imm=0)
    asm.emit(RvOpcode.LW, rd=S1, rs1=A6, imm=0)
    asm.emit(RvOpcode.MUL, rd=S0, rs1=S0, rs2=S1)
    asm.emit(RvOpcode.ADD, rd=T1, rs1=T1, rs2=S0)
    asm.emit(RvOpcode.ADDI, rd=A5, rs1=A5, imm=4)
    asm.emit(RvOpcode.ADDI, rd=A6, rs1=A6, imm=4)
    asm.emit(RvOpcode.ADDI, rd=T2, rs1=T2, imm=1)
    asm.j("inner")
    asm.label("inner_end")
    asm.emit(RvOpcode.SW, rs1=A7, rs2=T1, imm=0)
    asm.emit(RvOpcode.ADDI, rd=A7, rs1=A7, imm=4)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("outer")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar chunked dot product",
        build_case=build_case,
        paper_size=512,
    )
)
