"""Scalar RISC-V version of the ``xcorr`` (strided cross-correlation) benchmark."""

from __future__ import annotations

from repro.kernels import xcorr as gpu_xcorr
from repro.kernels.xcorr import WINDOW
from repro.riscv.assembler import (
    A0,
    A1,
    A2,
    A3,
    RvAssembler,
    S2,
    S3,
    S4,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
)
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "xcorr"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """Build the runnable case: ``out[i] = sum_t x[t] * y[16*i + t]``."""
    workload = gpu_xcorr.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["x"])
    asm.li(A1, addresses["y"])
    asm.li(A2, addresses["out"])
    asm.li(A3, size)
    asm.li(T5, WINDOW)
    asm.li(T0, 0)  # segment index i
    asm.label("outer")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    # S4 = &y[STRIDE * i]
    asm.emit(RvOpcode.SLLI, rd=S4, rs1=T0, imm=6)  # STRIDE * 4 bytes = 64
    asm.emit(RvOpcode.ADD, rd=S4, rs1=S4, rs2=A1)
    asm.li(T3, 0)  # acc
    asm.li(T4, 0)  # t
    asm.label("inner")
    asm.emit(RvOpcode.BGE, rs1=T4, rs2=T5, label="inner_end")
    # x[t]
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T4, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A0)
    asm.emit(RvOpcode.LW, rd=S2, rs1=T6, imm=0)
    # y[STRIDE * i + t]
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T4, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=S4)
    asm.emit(RvOpcode.LW, rd=S3, rs1=T6, imm=0)
    asm.emit(RvOpcode.MUL, rd=S2, rs1=S2, rs2=S3)
    asm.emit(RvOpcode.ADD, rd=T3, rs1=T3, rs2=S2)
    asm.emit(RvOpcode.ADDI, rd=T4, rs1=T4, imm=1)
    asm.j("inner")
    asm.label("inner_end")
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T2, rs1=A2, rs2=T1)
    asm.emit(RvOpcode.SW, rs1=T2, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("outer")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar strided cross correlation",
        build_case=build_case,
        paper_size=256,
    )
)
