"""Scalar RISC-V version of the ``transpose`` benchmark."""

from __future__ import annotations

from repro.kernels import transpose as gpu_transpose
from repro.kernels.transpose import NUM_COLS
from repro.riscv.assembler import A1, A3, A4, A5, RvAssembler, S0, S1, T0, T1, T2
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "transpose"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """``for i in range(n): out[(i % 64) * rows + i / 64] = a[i]``."""
    workload = gpu_transpose.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)
    rows = int(workload.scalars["rows"])

    asm = RvAssembler(NAME)
    asm.li(A1, addresses["out"])
    asm.li(A3, size)
    asm.li(A4, rows)
    asm.li(A5, addresses["a"])
    asm.li(T0, 0)  # element index
    asm.label("loop")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.emit(RvOpcode.LW, rd=T1, rs1=A5, imm=0)
    asm.emit(RvOpcode.SRLI, rd=T2, rs1=T0, imm=6)  # row
    asm.emit(RvOpcode.ANDI, rd=S0, rs1=T0, imm=NUM_COLS - 1)  # col
    asm.emit(RvOpcode.MUL, rd=S0, rs1=S0, rs2=A4)
    asm.emit(RvOpcode.ADD, rd=S0, rs1=S0, rs2=T2)
    asm.emit(RvOpcode.SLLI, rd=S0, rs1=S0, imm=2)
    asm.emit(RvOpcode.ADD, rd=S1, rs1=A1, rs2=S0)
    asm.emit(RvOpcode.SW, rs1=S1, rs2=T1, imm=0)
    asm.emit(RvOpcode.ADDI, rd=A5, rs1=A5, imm=4)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("loop")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar 64-column matrix transpose",
        build_case=build_case,
        paper_size=512,
    )
)
