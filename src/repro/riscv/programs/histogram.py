"""Scalar RISC-V version of the ``histogram`` benchmark.

Unlike the G-GPU's output-driven O(bins * n) formulation (forced by the lack
of atomics), the scalar core runs the classic one-pass ``hist[bin]++`` loop —
an algorithmically different route to bit-identical counts, which is exactly
what the differential harness is meant to pin.
"""

from __future__ import annotations

from repro.kernels import histogram as gpu_histogram
from repro.kernels.histogram import BIN_SHIFT
from repro.riscv.assembler import A1, A3, A5, RvAssembler, S0, S1, T0, T1
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "histogram"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """One-pass histogram: ``for j in range(n): hist[a[j] >> 24] += 1``."""
    workload = gpu_histogram.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A1, addresses["hist"])
    asm.li(A3, size)
    asm.li(A5, addresses["a"])
    asm.li(T0, 0)  # sample index
    asm.label("loop")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.emit(RvOpcode.LW, rd=T1, rs1=A5, imm=0)
    asm.emit(RvOpcode.SRLI, rd=T1, rs1=T1, imm=BIN_SHIFT)
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T1, imm=2)
    asm.emit(RvOpcode.ADD, rd=S0, rs1=A1, rs2=T1)
    asm.emit(RvOpcode.LW, rd=S1, rs1=S0, imm=0)
    asm.emit(RvOpcode.ADDI, rd=S1, rs1=S1, imm=1)
    asm.emit(RvOpcode.SW, rs1=S0, rs2=S1, imm=0)
    asm.emit(RvOpcode.ADDI, rd=A5, rs1=A5, imm=4)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("loop")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar one-pass histogram",
        build_case=build_case,
        paper_size=512,
    )
)
