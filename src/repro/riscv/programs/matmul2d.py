"""Scalar RISC-V version of the ``matmul2d`` benchmark."""

from __future__ import annotations

from repro.kernels import matmul2d as gpu_matmul2d
from repro.kernels.matmul2d import INNER_DIM, NUM_COLS
from repro.riscv.assembler import (
    A0,
    A1,
    A2,
    A3,
    RvAssembler,
    S2,
    S3,
    T0,
    T1,
    T2,
    T3,
    T4,
    T5,
    T6,
)
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import (
    RiscvCase,
    RiscvProgramSpec,
    load_workload_into_memory,
    register_riscv_program,
)

NAME = "matmul2d"


def build_case(size: int, seed: int = 2022) -> RiscvCase:
    """One 16-long dot product per output element of the (m x 16) result."""
    workload = gpu_matmul2d.workload(size, seed)
    memory, addresses = load_workload_into_memory(workload)

    asm = RvAssembler(NAME)
    asm.li(A0, addresses["a"])
    asm.li(A1, addresses["b"])
    asm.li(A2, addresses["c"])
    asm.li(A3, size)
    asm.li(T5, INNER_DIM)
    asm.li(T0, 0)  # i: flat output index, row = i / 16, col = i % 16
    asm.label("outer")
    asm.emit(RvOpcode.BGE, rs1=T0, rs2=A3, label="end")
    asm.emit(RvOpcode.SRLI, rd=T1, rs1=T0, imm=4)
    asm.emit(RvOpcode.SLLI, rd=T1, rs1=T1, imm=4)  # row_off = (i / 16) * 16
    asm.emit(RvOpcode.ANDI, rd=T2, rs1=T0, imm=NUM_COLS - 1)  # col
    asm.li(T3, 0)  # acc
    asm.li(T4, 0)  # k
    asm.label("inner")
    asm.emit(RvOpcode.BGE, rs1=T4, rs2=T5, label="inner_end")
    # A[row_off + k]
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T1, rs2=T4)
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T6, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A0)
    asm.emit(RvOpcode.LW, rd=S2, rs1=T6, imm=0)
    # B[k * 16 + col]
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T4, imm=4)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=T2)
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T6, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A1)
    asm.emit(RvOpcode.LW, rd=S3, rs1=T6, imm=0)
    asm.emit(RvOpcode.MUL, rd=S2, rs1=S2, rs2=S3)
    asm.emit(RvOpcode.ADD, rd=T3, rs1=T3, rs2=S2)
    asm.emit(RvOpcode.ADDI, rd=T4, rs1=T4, imm=1)
    asm.j("inner")
    asm.label("inner_end")
    asm.emit(RvOpcode.SLLI, rd=T6, rs1=T0, imm=2)
    asm.emit(RvOpcode.ADD, rd=T6, rs1=T6, rs2=A2)
    asm.emit(RvOpcode.SW, rs1=T6, rs2=T3, imm=0)
    asm.emit(RvOpcode.ADDI, rd=T0, rs1=T0, imm=1)
    asm.j("outer")
    asm.label("end")
    asm.halt()

    return RiscvCase(NAME, asm.assemble(), memory, addresses, workload.expected)


SPEC = register_riscv_program(
    RiscvProgramSpec(
        name=NAME,
        description="scalar (m x 16) x (16 x 16) matrix multiply",
        build_case=build_case,
        paper_size=128,
    )
)
