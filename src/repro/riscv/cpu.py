"""RV32IM instruction-set simulator with an in-order cycle model.

The baseline in the paper is the OpenHW CV32E40P, a 4-stage in-order RV32IM
core with tightly-coupled memory, synthesized at 667 MHz in the same 65nm
technology.  The ISS below executes the benchmark programs functionally and
charges a CV32E40P-like cycle cost per instruction: single-cycle ALU,
two-cycle loads, a pipeline-flush penalty on taken branches and jumps, and a
multi-cycle serial divider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SimulationError
from repro.riscv.decode import RvDecodedProgram, predecode_riscv_program
from repro.riscv.isa import RvFormat, RvInstruction, RvOpcode
from repro.riscv.assembler import RvProgram
from repro.riscv.memory import RvMemory

WORD_MASK = 0xFFFFFFFF

# Area of the synthesized RISC-V baseline (core + 32 kB memory) implied by the
# paper's area ratios: every "Area Ratio" row of Fig. 6 divided into the
# corresponding G-GPU area of Table I gives ~0.71 mm^2.
RV32_SYNTH_AREA_MM2 = 0.71


@dataclass
class CpuCycleModel:
    """Per-instruction cycle costs of the in-order core."""

    alu_cycles: int = 1
    load_cycles: int = 2
    store_cycles: int = 1
    mul_cycles: int = 3
    mulh_cycles: int = 5
    div_cycles: int = 35
    branch_not_taken_cycles: int = 1
    branch_taken_cycles: int = 4
    jump_cycles: int = 3

    def cost(self, instruction: RvInstruction, taken: bool) -> int:
        """Cycle cost of one executed instruction."""
        opcode = instruction.opcode
        if opcode is RvOpcode.LW:
            return self.load_cycles
        if opcode is RvOpcode.SW:
            return self.store_cycles
        if opcode is RvOpcode.MUL:
            return self.mul_cycles
        if opcode in (RvOpcode.MULH, RvOpcode.MULHU):
            return self.mulh_cycles
        if opcode in (RvOpcode.DIV, RvOpcode.DIVU, RvOpcode.REM, RvOpcode.REMU):
            return self.div_cycles
        if opcode in (RvOpcode.JAL, RvOpcode.JALR):
            return self.jump_cycles
        if instruction.opcode.info.fmt is RvFormat.B:
            return self.branch_taken_cycles if taken else self.branch_not_taken_cycles
        return self.alu_cycles


@dataclass
class CpuStats:
    """Execution statistics of one RISC-V run."""

    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    taken_branches: int = 0
    mnemonic_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def kcycles(self) -> float:
        """Cycle count in thousands of cycles (the unit of Table III)."""
        return self.cycles / 1.0e3

    @property
    def cpi(self) -> float:
        """Average cycles per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions


def _signed(value: int) -> int:
    value &= WORD_MASK
    return value - (1 << 32) if value & 0x80000000 else value


class RiscvCpu:
    """Functional RV32IM simulator with the cycle model above.

    Two execution paths produce bit-identical results, cycle counts, and
    statistics:

    * the *pre-decoded* path (default): the program is resolved once into
      per-instruction handler closures (:mod:`repro.riscv.decode`) and the
      run loop is a tight threaded dispatch with flat-array opcode counters,
    * the *interpreted* path (``predecode = False``): the seed interpreter,
      which re-derives the opcode class and cycle cost per executed
      instruction.  It is kept as the reference for the equivalence tests,
      mirroring ``ComputeUnit.macro_step``.
    """

    def __init__(
        self,
        memory: Optional[RvMemory] = None,
        cycle_model: Optional[CpuCycleModel] = None,
        max_instructions: int = 200_000_000,
    ) -> None:
        self.memory = memory or RvMemory()
        self.cycle_model = cycle_model or CpuCycleModel()
        self.max_instructions = max_instructions
        self.registers = [0] * 32
        self.pc = 0
        self.halted = False
        self.stats = CpuStats()
        self.predecode = True

    # ------------------------------------------------------------------ #
    # Register helpers
    # ------------------------------------------------------------------ #
    def read_reg(self, index: int) -> int:
        """Unsigned value of register ``index`` (x0 reads zero)."""
        return 0 if index == 0 else self.registers[index] & WORD_MASK

    def write_reg(self, index: int, value: int) -> None:
        """Write a register (writes to x0 are discarded)."""
        if index != 0:
            self.registers[index] = value & WORD_MASK

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def run(
        self,
        program: RvProgram,
        entry_pc: int = 0,
        decoded: Optional[RvDecodedProgram] = None,
    ) -> CpuStats:
        """Execute ``program`` until EBREAK; returns the statistics.

        ``decoded`` lets callers reuse one :class:`RvDecodedProgram` across
        runs (it must have been decoded against this CPU's cycle model); when
        omitted the program is decoded on entry, which is microseconds of
        work for the benchmark-sized programs.
        """
        self.pc = entry_pc
        self.halted = False
        self.stats = CpuStats()
        if self.predecode:
            return self._run_decoded(program, entry_pc, decoded)
        return self._run_interpreted(program)

    def _run_decoded(
        self,
        program: RvProgram,
        entry_pc: int,
        decoded: Optional[RvDecodedProgram],
    ) -> CpuStats:
        """Threaded-dispatch run loop over the pre-decoded handler table."""
        if decoded is None:
            decoded = predecode_riscv_program(program, self.cycle_model)
        # The handlers assume masked register values (they skip the seed
        # interpreter's per-read ``& WORD_MASK``); normalize any externally
        # poked state once.  x0 is folded to 0 at decode time and never read
        # or written through the register list.
        regs = self.registers
        for index in range(32):
            regs[index] &= WORD_MASK
        memory = self.memory
        handlers = decoded.handlers
        mnemonic_indices = decoded.mnemonic_indices
        counts = [0] * len(decoded.mnemonics)
        limit = self.max_instructions
        size_bytes = 4 * len(handlers)
        pc = entry_pc
        instructions = 0
        cycles = 0
        taken_branches = 0
        try:
            while True:
                if instructions >= limit:
                    raise SimulationError("RISC-V simulation exceeded the instruction limit")
                if not 0 <= pc < size_bytes:
                    raise SimulationError(f"PC {pc:#x} is outside the program")
                if pc & 3:
                    raise SimulationError(
                        f"misaligned PC {pc:#x}: instruction addresses must be 4-byte aligned"
                    )
                index = pc >> 2
                handler = handlers[index]
                if handler is None:  # EBREAK: halt
                    counts[mnemonic_indices[index]] += 1
                    instructions += 1
                    cycles += decoded.ebreak_cost
                    pc += 4
                    self.halted = True
                    break
                next_pc, cost, taken = handler(regs, memory)
                counts[mnemonic_indices[index]] += 1
                instructions += 1
                cycles += cost
                taken_branches += taken
                pc = next_pc
        finally:
            # Materialize the statistics exactly once (also on errors, so the
            # partial counts match what the interpreted path would have
            # accumulated instruction by instruction).
            mnemonics = decoded.mnemonics
            self.stats = CpuStats(
                instructions=instructions,
                cycles=cycles,
                loads=counts[decoded.load_index] if decoded.load_index >= 0 else 0,
                stores=counts[decoded.store_index] if decoded.store_index >= 0 else 0,
                taken_branches=taken_branches,
                mnemonic_counts={
                    mnemonics[slot]: count for slot, count in enumerate(counts) if count
                },
            )
            self.pc = pc
        return self.stats

    def _run_interpreted(self, program: RvProgram) -> CpuStats:
        """The seed per-instruction interpreter (reference path).

        Starts from ``self.pc``, which :meth:`run` set to the entry PC.
        """
        while not self.halted:
            if self.stats.instructions >= self.max_instructions:
                raise SimulationError("RISC-V simulation exceeded the instruction limit")
            index = self.pc // 4
            if not 0 <= index < len(program):
                raise SimulationError(f"PC {self.pc:#x} is outside the program")
            if self.pc % 4:
                raise SimulationError(
                    f"misaligned PC {self.pc:#x}: instruction addresses must be 4-byte aligned"
                )
            instruction = program[index]
            self._execute(instruction)
        return self.stats

    def _execute(self, instruction: RvInstruction) -> None:
        opcode = instruction.opcode
        rs1 = self.read_reg(instruction.rs1)
        rs2 = self.read_reg(instruction.rs2)
        imm = instruction.imm
        next_pc = self.pc + 4
        taken = False

        if opcode is RvOpcode.EBREAK:
            self.halted = True
        elif opcode.info.fmt is RvFormat.R:
            self.write_reg(instruction.rd, self._alu_r(opcode, rs1, rs2))
        elif opcode is RvOpcode.LW:
            self.write_reg(instruction.rd, self.memory.load_word((rs1 + imm) & WORD_MASK))
            self.stats.loads += 1
        elif opcode is RvOpcode.SW:
            self.memory.store_word((rs1 + imm) & WORD_MASK, rs2)
            self.stats.stores += 1
        elif opcode is RvOpcode.JAL:
            self.write_reg(instruction.rd, next_pc)
            next_pc = (self.pc + imm) & WORD_MASK
            taken = True
        elif opcode is RvOpcode.JALR:
            self.write_reg(instruction.rd, next_pc)
            next_pc = (rs1 + imm) & ~1 & WORD_MASK
            taken = True
        elif opcode.info.fmt is RvFormat.B:
            taken = self._branch_taken(opcode, rs1, rs2)
            if taken:
                next_pc = (self.pc + imm) & WORD_MASK
                self.stats.taken_branches += 1
        elif opcode is RvOpcode.LUI:
            self.write_reg(instruction.rd, (imm << 12) & WORD_MASK)
        elif opcode is RvOpcode.AUIPC:
            self.write_reg(instruction.rd, (self.pc + (imm << 12)) & WORD_MASK)
        elif opcode.info.fmt is RvFormat.I:
            self.write_reg(instruction.rd, self._alu_i(opcode, rs1, imm))
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled RISC-V opcode {opcode.mnemonic}")

        self.stats.instructions += 1
        self.stats.cycles += self.cycle_model.cost(instruction, taken)
        mnemonic = opcode.mnemonic
        self.stats.mnemonic_counts[mnemonic] = self.stats.mnemonic_counts.get(mnemonic, 0) + 1
        self.pc = next_pc

    # ------------------------------------------------------------------ #
    # ALU semantics
    # ------------------------------------------------------------------ #
    @staticmethod
    def _alu_r(opcode: RvOpcode, a: int, b: int) -> int:
        sa, sb = _signed(a), _signed(b)
        if opcode is RvOpcode.ADD:
            return a + b
        if opcode is RvOpcode.SUB:
            return a - b
        if opcode is RvOpcode.SLL:
            return a << (b & 0x1F)
        if opcode is RvOpcode.SLT:
            return int(sa < sb)
        if opcode is RvOpcode.SLTU:
            return int(a < b)
        if opcode is RvOpcode.XOR:
            return a ^ b
        if opcode is RvOpcode.SRL:
            return a >> (b & 0x1F)
        if opcode is RvOpcode.SRA:
            return sa >> (b & 0x1F)
        if opcode is RvOpcode.OR:
            return a | b
        if opcode is RvOpcode.AND:
            return a & b
        if opcode is RvOpcode.MUL:
            return sa * sb
        if opcode is RvOpcode.MULH:
            return (sa * sb) >> 32
        if opcode is RvOpcode.MULHU:
            return (a * b) >> 32
        if opcode is RvOpcode.DIV:
            if sb == 0:
                return -1
            quotient = abs(sa) // abs(sb)
            return -quotient if (sa < 0) != (sb < 0) else quotient
        if opcode is RvOpcode.DIVU:
            return 0xFFFFFFFF if b == 0 else a // b
        if opcode is RvOpcode.REM:
            if sb == 0:
                return sa
            quotient = abs(sa) // abs(sb)
            quotient = -quotient if (sa < 0) != (sb < 0) else quotient
            return sa - quotient * sb
        if opcode is RvOpcode.REMU:
            return a if b == 0 else a % b
        raise SimulationError(f"unhandled R-type opcode {opcode.mnemonic}")

    @staticmethod
    def _alu_i(opcode: RvOpcode, a: int, imm: int) -> int:
        sa = _signed(a)
        if opcode is RvOpcode.ADDI:
            return a + imm
        if opcode is RvOpcode.SLTI:
            return int(sa < imm)
        if opcode is RvOpcode.SLTIU:
            return int(a < (imm & WORD_MASK))
        if opcode is RvOpcode.XORI:
            return a ^ (imm & WORD_MASK)
        if opcode is RvOpcode.ORI:
            return a | (imm & WORD_MASK)
        if opcode is RvOpcode.ANDI:
            return a & (imm & WORD_MASK)
        if opcode is RvOpcode.SLLI:
            return a << (imm & 0x1F)
        if opcode is RvOpcode.SRLI:
            return a >> (imm & 0x1F)
        if opcode is RvOpcode.SRAI:
            return sa >> (imm & 0x1F)
        raise SimulationError(f"unhandled I-type opcode {opcode.mnemonic}")

    @staticmethod
    def _branch_taken(opcode: RvOpcode, a: int, b: int) -> bool:
        sa, sb = _signed(a), _signed(b)
        if opcode is RvOpcode.BEQ:
            return a == b
        if opcode is RvOpcode.BNE:
            return a != b
        if opcode is RvOpcode.BLT:
            return sa < sb
        if opcode is RvOpcode.BGE:
            return sa >= sb
        if opcode is RvOpcode.BLTU:
            return a < b
        if opcode is RvOpcode.BGEU:
            return a >= b
        raise SimulationError(f"unhandled branch opcode {opcode.mnemonic}")
