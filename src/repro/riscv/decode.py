"""Pre-decoded RV32IM programs for the instruction-set simulator.

The seed interpreter re-derived everything per executed instruction: the
``opcode.info`` enum-property lookup, a chain of ``if opcode is ...``
comparisons, the cycle-model dispatch, and a ``mnemonic_counts`` dict update
-- roughly a dozen attribute lookups and branches for a one-line ALU
operation.  At the Table III input sizes that is ~290k ``_execute`` calls per
sweep, and the profile showed the ISS burning a large share of the total
measurement wall time.

:func:`predecode_riscv_program` resolves all of it exactly once per program:
every instruction becomes one *handler closure* whose free variables are the
already-extracted operand indices, the sign-extended immediate, the absolute
successor/target PCs (instruction addresses are static), and the pre-computed
taken/not-taken cycle costs from the :class:`~repro.riscv.cpu.CpuCycleModel`.
``RiscvCpu.run`` then becomes a tight threaded-dispatch loop::

    next_pc, cost, taken = handlers[pc >> 2](regs, memory)

with per-opcode execution counters accumulated in a flat list indexed by a
per-program mnemonic table and materialized into ``CpuStats.mnemonic_counts``
once at halt.  ``loads``/``stores`` are recovered from the ``lw``/``sw``
counters (the seed incremented them exactly once per executed load/store),
and ``taken_branches`` from the third element of the handler result, which is
1 only for a taken conditional branch (JAL/JALR do not count, matching the
seed).

The decoded program depends only on the program and the cycle model -- not on
the memory image or the register state -- so one decode can be shared by any
number of runs and CPUs.  Decoding a benchmark program is microseconds of
work against the hundreds of thousands of instructions it executes.

Handler contract
----------------
``handler(regs, memory) -> (next_pc, cycle_cost, taken_branch)`` where
``regs`` is the 32-entry register list (entries always masked to 32 bits) and
``memory`` is the :class:`~repro.riscv.memory.RvMemory`.  The EBREAK slot
holds ``None`` instead of a closure: the run loop treats it as the halt
sentinel and charges its (ALU) cost itself.  x0 is hardwired at decode time:
reads of ``rs == 0`` are folded to the constant 0 and writes to ``rd == 0``
are dropped from the closure body, so the register list entry 0 is never
touched.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.riscv.assembler import RvProgram
from repro.riscv.isa import RvFormat, RvInstruction, RvOpcode

WORD_MASK = 0xFFFFFFFF

Handler = Callable[..., Tuple[int, int, int]]


def _signed(value: int) -> int:
    return value - (1 << 32) if value & 0x80000000 else value


# --------------------------------------------------------------------------- #
# Scalar 32-bit ALU semantics (identical to the seed interpreter's _alu_r /
# _alu_i / _branch_taken chains, expressed as per-opcode callables so decode
# resolves the operation once instead of the interpreter re-deriving it per
# executed instruction).
# --------------------------------------------------------------------------- #
def _div(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        return -1
    quotient = abs(sa) // abs(sb)
    return -quotient if (sa < 0) != (sb < 0) else quotient


def _rem(a: int, b: int) -> int:
    sa, sb = _signed(a), _signed(b)
    if sb == 0:
        return sa
    quotient = abs(sa) // abs(sb)
    quotient = -quotient if (sa < 0) != (sb < 0) else quotient
    return sa - quotient * sb


_R_FUNCS: Dict[RvOpcode, Callable[[int, int], int]] = {
    RvOpcode.ADD: lambda a, b: a + b,
    RvOpcode.SUB: lambda a, b: a - b,
    RvOpcode.SLL: lambda a, b: a << (b & 0x1F),
    RvOpcode.SLT: lambda a, b: int(_signed(a) < _signed(b)),
    RvOpcode.SLTU: lambda a, b: int(a < b),
    RvOpcode.XOR: lambda a, b: a ^ b,
    RvOpcode.SRL: lambda a, b: a >> (b & 0x1F),
    RvOpcode.SRA: lambda a, b: _signed(a) >> (b & 0x1F),
    RvOpcode.OR: lambda a, b: a | b,
    RvOpcode.AND: lambda a, b: a & b,
    RvOpcode.MUL: lambda a, b: _signed(a) * _signed(b),
    RvOpcode.MULH: lambda a, b: (_signed(a) * _signed(b)) >> 32,
    RvOpcode.MULHU: lambda a, b: (a * b) >> 32,
    RvOpcode.DIV: _div,
    RvOpcode.DIVU: lambda a, b: 0xFFFFFFFF if b == 0 else a // b,
    RvOpcode.REM: _rem,
    RvOpcode.REMU: lambda a, b: a if b == 0 else a % b,
}

# I-type ALU semantics: ``imm`` is the raw sign-extended immediate (the seed
# masks it to 32 bits where it is used as a bit pattern).
_I_FUNCS: Dict[RvOpcode, Callable[[int, int], int]] = {
    RvOpcode.ADDI: lambda a, imm: a + imm,
    RvOpcode.SLTI: lambda a, imm: int(_signed(a) < imm),
    RvOpcode.SLTIU: lambda a, imm: int(a < (imm & WORD_MASK)),
    RvOpcode.XORI: lambda a, imm: a ^ (imm & WORD_MASK),
    RvOpcode.ORI: lambda a, imm: a | (imm & WORD_MASK),
    RvOpcode.ANDI: lambda a, imm: a & (imm & WORD_MASK),
    RvOpcode.SLLI: lambda a, imm: a << (imm & 0x1F),
    RvOpcode.SRLI: lambda a, imm: a >> (imm & 0x1F),
    RvOpcode.SRAI: lambda a, imm: _signed(a) >> (imm & 0x1F),
}

_BRANCH_FUNCS: Dict[RvOpcode, Callable[[int, int], bool]] = {
    RvOpcode.BEQ: lambda a, b: a == b,
    RvOpcode.BNE: lambda a, b: a != b,
    RvOpcode.BLT: lambda a, b: _signed(a) < _signed(b),
    RvOpcode.BGE: lambda a, b: _signed(a) >= _signed(b),
    RvOpcode.BLTU: lambda a, b: a < b,
    RvOpcode.BGEU: lambda a, b: a >= b,
}


class RvDecodedProgram:
    """One RV32IM program resolved into flat per-instruction records.

    ``handlers[i]`` executes the instruction at byte address ``4 * i`` (or is
    ``None`` for EBREAK, the halt sentinel); ``mnemonic_indices[i]`` is the
    index of that instruction's mnemonic in ``mnemonics``, so the run loop
    counts executions in a flat list instead of a per-instruction dict update.
    """

    __slots__ = (
        "name",
        "handlers",
        "mnemonic_indices",
        "mnemonics",
        "ebreak_cost",
        "load_index",
        "store_index",
    )

    def __init__(
        self,
        name: str,
        handlers: List[Optional[Handler]],
        mnemonic_indices: List[int],
        mnemonics: List[str],
        ebreak_cost: int,
    ) -> None:
        self.name = name
        self.handlers = handlers
        self.mnemonic_indices = mnemonic_indices
        self.mnemonics = mnemonics
        self.ebreak_cost = ebreak_cost
        self.load_index = mnemonics.index("lw") if "lw" in mnemonics else -1
        self.store_index = mnemonics.index("sw") if "sw" in mnemonics else -1

    def __len__(self) -> int:
        return len(self.handlers)


def _build_handler(
    instruction: RvInstruction, pc: int, cost_not_taken: int, cost_taken: int
) -> Optional[Handler]:
    """Resolve one instruction into its handler closure (None for EBREAK)."""
    opcode = instruction.opcode
    fmt = opcode.info.fmt
    rd, rs1, rs2, imm = instruction.rd, instruction.rs1, instruction.rs2, instruction.imm
    nxt = pc + 4
    cost = cost_not_taken

    if opcode is RvOpcode.EBREAK:
        return None

    if fmt is RvFormat.R:
        fn = _R_FUNCS[opcode]
        if rd == 0:
            # The result is discarded and R-type ALU evaluation has no side
            # effects, so only the timing remains.
            return lambda regs, memory: (nxt, cost, 0)
        if rs1 and rs2:

            def r_handler(regs, memory):
                regs[rd] = fn(regs[rs1], regs[rs2]) & WORD_MASK
                return (nxt, cost, 0)

            return r_handler

        def r_zero_handler(regs, memory):
            regs[rd] = fn(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0) & WORD_MASK
            return (nxt, cost, 0)

        return r_zero_handler

    if opcode is RvOpcode.LW:

        def lw_handler(regs, memory):
            value = memory.load_word(((regs[rs1] if rs1 else 0) + imm) & WORD_MASK)
            if rd:
                regs[rd] = value
            return (nxt, cost, 0)

        return lw_handler

    if opcode is RvOpcode.SW:

        def sw_handler(regs, memory):
            memory.store_word(
                ((regs[rs1] if rs1 else 0) + imm) & WORD_MASK, regs[rs2] if rs2 else 0
            )
            return (nxt, cost, 0)

        return sw_handler

    if opcode is RvOpcode.JAL:
        target = (pc + imm) & WORD_MASK
        if rd == 0:
            return lambda regs, memory: (target, cost, 0)

        def jal_handler(regs, memory):
            regs[rd] = nxt
            return (target, cost, 0)

        return jal_handler

    if opcode is RvOpcode.JALR:

        def jalr_handler(regs, memory):
            target = ((regs[rs1] if rs1 else 0) + imm) & ~1 & WORD_MASK
            if rd:
                regs[rd] = nxt
            return (target, cost, 0)

        return jalr_handler

    if fmt is RvFormat.B:
        fn = _BRANCH_FUNCS[opcode]
        target = (pc + imm) & WORD_MASK
        taken_cost = cost_taken

        def branch_handler(regs, memory):
            if fn(regs[rs1] if rs1 else 0, regs[rs2] if rs2 else 0):
                return (target, taken_cost, 1)
            return (nxt, cost, 0)

        return branch_handler

    if opcode in (RvOpcode.LUI, RvOpcode.AUIPC):
        if opcode is RvOpcode.LUI:
            value = (imm << 12) & WORD_MASK
        else:
            value = (pc + (imm << 12)) & WORD_MASK
        if rd == 0:
            return lambda regs, memory: (nxt, cost, 0)

        def u_handler(regs, memory):
            regs[rd] = value
            return (nxt, cost, 0)

        return u_handler

    if fmt is RvFormat.I:
        fn = _I_FUNCS[opcode]
        if rd == 0:
            return lambda regs, memory: (nxt, cost, 0)
        if rs1:

            def i_handler(regs, memory):
                regs[rd] = fn(regs[rs1], imm) & WORD_MASK
                return (nxt, cost, 0)

            return i_handler
        value = fn(0, imm) & WORD_MASK

        def i_const_handler(regs, memory):
            regs[rd] = value
            return (nxt, cost, 0)

        return i_const_handler

    raise SimulationError(f"cannot pre-decode RISC-V opcode {opcode.mnemonic}")


def predecode_riscv_program(program: RvProgram, cycle_model) -> RvDecodedProgram:
    """Resolve ``program`` into an :class:`RvDecodedProgram` for ``cycle_model``.

    The cycle costs are baked into the handlers via
    :meth:`~repro.riscv.cpu.CpuCycleModel.cost`, so a decoded program is only
    valid for the cycle model it was decoded against.
    """
    handlers: List[Optional[Handler]] = []
    mnemonic_indices: List[int] = []
    mnemonics: List[str] = []
    index_of: Dict[str, int] = {}
    ebreak_cost = cycle_model.cost(
        RvInstruction(RvOpcode.EBREAK), taken=False
    )
    for position, instruction in enumerate(program.instructions):
        mnemonic = instruction.opcode.mnemonic
        slot = index_of.get(mnemonic)
        if slot is None:
            slot = len(mnemonics)
            index_of[mnemonic] = slot
            mnemonics.append(mnemonic)
        mnemonic_indices.append(slot)
        handlers.append(
            _build_handler(
                instruction,
                pc=4 * position,
                cost_not_taken=cycle_model.cost(instruction, taken=False),
                cost_taken=cycle_model.cost(instruction, taken=True),
            )
        )
    return RvDecodedProgram(program.name, handlers, mnemonic_indices, mnemonics, ebreak_cost)
