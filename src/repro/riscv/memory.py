"""Flat data memory of the RISC-V baseline.

The paper's RISC-V has 32 kB of tightly-coupled memory (single-cycle access,
no cache); the benchmarks that would not fit were the point where the authors
"increased inputs up until crashing RISC-V".  The model below is a flat,
word-addressable memory with an allocator mirroring the G-GPU's host API so
the evaluation harness can lay out the same buffers on both targets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import SimulationError

WORD_BYTES = 4


class RvMemory:
    """Word-addressable data memory with a bump allocator."""

    def __init__(self, size_bytes: int = 32 * 1024) -> None:
        if size_bytes <= 0 or size_bytes % WORD_BYTES:
            raise SimulationError(f"memory size must be a positive multiple of 4, got {size_bytes}")
        self.size_bytes = size_bytes
        self._words = np.zeros(size_bytes // WORD_BYTES, dtype=np.int64)
        self._next_alloc = WORD_BYTES

    def allocate(self, num_words: int, align_bytes: int = 4) -> int:
        """Reserve ``num_words`` words; returns the base byte address."""
        if num_words <= 0:
            raise SimulationError("allocation must be positive")
        base = self._next_alloc
        if base % align_bytes:
            base += align_bytes - (base % align_bytes)
        end = base + num_words * WORD_BYTES
        if end > self.size_bytes:
            raise SimulationError(
                f"benchmark does not fit the {self.size_bytes}-byte RISC-V memory "
                f"(requested {num_words} words at {base:#x})"
            )
        self._next_alloc = end
        return base

    def write_buffer(self, base_addr: int, values: Sequence[int]) -> None:
        """Initialize a buffer from host data."""
        data = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
        index = self._index(base_addr)
        if index + data.size > self._words.size:
            raise SimulationError(f"write of {data.size} words at {base_addr:#x} overflows memory")
        self._words[index : index + data.size] = data

    def read_buffer(self, base_addr: int, num_words: int) -> np.ndarray:
        """Read a buffer back as unsigned 32-bit words."""
        index = self._index(base_addr)
        if index + num_words > self._words.size:
            raise SimulationError(f"read of {num_words} words at {base_addr:#x} overflows memory")
        return self._words[index : index + num_words].astype(np.uint32)

    def load_word(self, byte_addr: int) -> int:
        """Load one word (unsigned value)."""
        return int(self._words[self._index(byte_addr)])

    def store_word(self, byte_addr: int, value: int) -> None:
        """Store one word."""
        self._words[self._index(byte_addr)] = int(value) & 0xFFFFFFFF

    def _index(self, byte_addr: int) -> int:
        if byte_addr % WORD_BYTES:
            raise SimulationError(f"unaligned word access at {byte_addr:#x}")
        if not 0 <= byte_addr < self.size_bytes:
            raise SimulationError(f"data access out of range: {byte_addr:#x}")
        return byte_addr // WORD_BYTES
