"""RV32IM instruction set: formats, opcodes, and binary encoding.

Only the subset the benchmark programs need is implemented (the full RV32I
base integer ISA minus the fence/CSR group, plus the M extension), but the
encodings are the real ones, so programs can be encoded to machine words and
decoded back -- the tests use this to check the assembler is self-consistent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import AssemblyError


class RvFormat(enum.Enum):
    """RISC-V instruction formats."""

    R = "r"
    I = "i"  # noqa: E741 — the RISC-V immediate format is literally named I
    S = "s"
    B = "b"
    U = "u"
    J = "j"
    SYS = "sys"


@dataclass(frozen=True)
class RvOpcodeInfo:
    """Encoding fields of one RV32IM instruction."""

    mnemonic: str
    fmt: RvFormat
    opcode: int
    funct3: Optional[int] = None
    funct7: Optional[int] = None


class RvOpcode(enum.Enum):
    """RV32IM opcodes used by the benchmark programs."""

    # R-type arithmetic.
    ADD = RvOpcodeInfo("add", RvFormat.R, 0b0110011, 0b000, 0b0000000)
    SUB = RvOpcodeInfo("sub", RvFormat.R, 0b0110011, 0b000, 0b0100000)
    SLL = RvOpcodeInfo("sll", RvFormat.R, 0b0110011, 0b001, 0b0000000)
    SLT = RvOpcodeInfo("slt", RvFormat.R, 0b0110011, 0b010, 0b0000000)
    SLTU = RvOpcodeInfo("sltu", RvFormat.R, 0b0110011, 0b011, 0b0000000)
    XOR = RvOpcodeInfo("xor", RvFormat.R, 0b0110011, 0b100, 0b0000000)
    SRL = RvOpcodeInfo("srl", RvFormat.R, 0b0110011, 0b101, 0b0000000)
    SRA = RvOpcodeInfo("sra", RvFormat.R, 0b0110011, 0b101, 0b0100000)
    OR = RvOpcodeInfo("or", RvFormat.R, 0b0110011, 0b110, 0b0000000)
    AND = RvOpcodeInfo("and", RvFormat.R, 0b0110011, 0b111, 0b0000000)
    # M extension.
    MUL = RvOpcodeInfo("mul", RvFormat.R, 0b0110011, 0b000, 0b0000001)
    MULH = RvOpcodeInfo("mulh", RvFormat.R, 0b0110011, 0b001, 0b0000001)
    MULHU = RvOpcodeInfo("mulhu", RvFormat.R, 0b0110011, 0b011, 0b0000001)
    DIV = RvOpcodeInfo("div", RvFormat.R, 0b0110011, 0b100, 0b0000001)
    DIVU = RvOpcodeInfo("divu", RvFormat.R, 0b0110011, 0b101, 0b0000001)
    REM = RvOpcodeInfo("rem", RvFormat.R, 0b0110011, 0b110, 0b0000001)
    REMU = RvOpcodeInfo("remu", RvFormat.R, 0b0110011, 0b111, 0b0000001)
    # I-type arithmetic.
    ADDI = RvOpcodeInfo("addi", RvFormat.I, 0b0010011, 0b000)
    SLTI = RvOpcodeInfo("slti", RvFormat.I, 0b0010011, 0b010)
    SLTIU = RvOpcodeInfo("sltiu", RvFormat.I, 0b0010011, 0b011)
    XORI = RvOpcodeInfo("xori", RvFormat.I, 0b0010011, 0b100)
    ORI = RvOpcodeInfo("ori", RvFormat.I, 0b0010011, 0b110)
    ANDI = RvOpcodeInfo("andi", RvFormat.I, 0b0010011, 0b111)
    SLLI = RvOpcodeInfo("slli", RvFormat.I, 0b0010011, 0b001, 0b0000000)
    SRLI = RvOpcodeInfo("srli", RvFormat.I, 0b0010011, 0b101, 0b0000000)
    SRAI = RvOpcodeInfo("srai", RvFormat.I, 0b0010011, 0b101, 0b0100000)
    # Loads / stores (32-bit words only; the benchmarks use word data).
    LW = RvOpcodeInfo("lw", RvFormat.I, 0b0000011, 0b010)
    SW = RvOpcodeInfo("sw", RvFormat.S, 0b0100011, 0b010)
    # Control transfer.
    JAL = RvOpcodeInfo("jal", RvFormat.J, 0b1101111)
    JALR = RvOpcodeInfo("jalr", RvFormat.I, 0b1100111, 0b000)
    BEQ = RvOpcodeInfo("beq", RvFormat.B, 0b1100011, 0b000)
    BNE = RvOpcodeInfo("bne", RvFormat.B, 0b1100011, 0b001)
    BLT = RvOpcodeInfo("blt", RvFormat.B, 0b1100011, 0b100)
    BGE = RvOpcodeInfo("bge", RvFormat.B, 0b1100011, 0b101)
    BLTU = RvOpcodeInfo("bltu", RvFormat.B, 0b1100011, 0b110)
    BGEU = RvOpcodeInfo("bgeu", RvFormat.B, 0b1100011, 0b111)
    # Upper immediates.
    LUI = RvOpcodeInfo("lui", RvFormat.U, 0b0110111)
    AUIPC = RvOpcodeInfo("auipc", RvFormat.U, 0b0010111)
    # System: the programs use EBREAK as the halt instruction.
    EBREAK = RvOpcodeInfo("ebreak", RvFormat.SYS, 0b1110011)

    @property
    def info(self) -> RvOpcodeInfo:
        return self.value

    @property
    def mnemonic(self) -> str:
        return self.value.mnemonic


_MNEMONIC: Dict[str, RvOpcode] = {op.mnemonic: op for op in RvOpcode}


def rv_opcode_from_mnemonic(mnemonic: str) -> RvOpcode:
    """Look an opcode up by mnemonic."""
    try:
        return _MNEMONIC[mnemonic.lower()]
    except KeyError as exc:
        raise AssemblyError(f"unknown RISC-V mnemonic {mnemonic!r}") from exc


@dataclass(frozen=True)
class RvInstruction:
    """One RISC-V instruction with resolved operands.

    ``imm`` for branches and jumps is the byte offset relative to the
    instruction's own address (as in the architecture); the assembler resolves
    labels into such offsets.
    """

    opcode: RvOpcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    label: Optional[str] = None

    def __post_init__(self) -> None:
        for name, value in (("rd", self.rd), ("rs1", self.rs1), ("rs2", self.rs2)):
            if not 0 <= value < 32:
                raise AssemblyError(f"{name} out of range in {self.opcode.mnemonic}: {value}")

    def text(self) -> str:
        """Approximate assembly text (for listings and debugging)."""
        info = self.opcode.info
        if info.fmt is RvFormat.R:
            return f"{info.mnemonic} x{self.rd}, x{self.rs1}, x{self.rs2}"
        if info.fmt is RvFormat.I:
            if self.opcode is RvOpcode.LW:
                return f"lw x{self.rd}, {self.imm}(x{self.rs1})"
            return f"{info.mnemonic} x{self.rd}, x{self.rs1}, {self.imm}"
        if info.fmt is RvFormat.S:
            return f"sw x{self.rs2}, {self.imm}(x{self.rs1})"
        if info.fmt is RvFormat.B:
            target = self.label or self.imm
            return f"{info.mnemonic} x{self.rs1}, x{self.rs2}, {target}"
        if info.fmt is RvFormat.U:
            return f"{info.mnemonic} x{self.rd}, {self.imm}"
        if info.fmt is RvFormat.J:
            target = self.label or self.imm
            return f"jal x{self.rd}, {target}"
        return info.mnemonic


def _check_range(value: int, bits: int, name: str) -> None:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise AssemblyError(f"{name} immediate {value} does not fit in {bits} bits")


def encode_rv(instruction: RvInstruction) -> int:
    """Encode one instruction into its 32-bit RV32IM machine word."""
    info = instruction.opcode.info
    opcode = info.opcode
    rd, rs1, rs2, imm = instruction.rd, instruction.rs1, instruction.rs2, instruction.imm

    if info.fmt is RvFormat.R:
        return (info.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (info.funct3 << 12) | (rd << 7) | opcode
    if info.fmt is RvFormat.I:
        if instruction.opcode in (RvOpcode.SLLI, RvOpcode.SRLI, RvOpcode.SRAI):
            if not 0 <= imm < 32:
                raise AssemblyError(f"shift amount {imm} out of range")
            upper = info.funct7 << 5
            return ((upper | imm) << 20) | (rs1 << 15) | (info.funct3 << 12) | (rd << 7) | opcode
        _check_range(imm, 12, info.mnemonic)
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (info.funct3 << 12) | (rd << 7) | opcode
    if info.fmt is RvFormat.S:
        _check_range(imm, 12, info.mnemonic)
        imm = imm & 0xFFF
        return (
            ((imm >> 5) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (info.funct3 << 12)
            | ((imm & 0x1F) << 7)
            | opcode
        )
    if info.fmt is RvFormat.B:
        _check_range(imm, 13, info.mnemonic)
        if imm % 2:
            raise AssemblyError("branch offsets must be even")
        imm = imm & 0x1FFF
        return (
            (((imm >> 12) & 0x1) << 31)
            | (((imm >> 5) & 0x3F) << 25)
            | (rs2 << 20)
            | (rs1 << 15)
            | (info.funct3 << 12)
            | (((imm >> 1) & 0xF) << 8)
            | (((imm >> 11) & 0x1) << 7)
            | opcode
        )
    if info.fmt is RvFormat.U:
        if not 0 <= imm < (1 << 20):
            raise AssemblyError(f"U-type immediate {imm} out of range")
        return (imm << 12) | (rd << 7) | opcode
    if info.fmt is RvFormat.J:
        _check_range(imm, 21, info.mnemonic)
        if imm % 2:
            raise AssemblyError("jump offsets must be even")
        imm = imm & 0x1FFFFF
        return (
            (((imm >> 20) & 0x1) << 31)
            | (((imm >> 1) & 0x3FF) << 21)
            | (((imm >> 11) & 0x1) << 20)
            | (((imm >> 12) & 0xFF) << 12)
            | (rd << 7)
            | opcode
        )
    if info.fmt is RvFormat.SYS:
        return (1 << 20) | opcode  # EBREAK
    raise AssemblyError(f"cannot encode format {info.fmt}")  # pragma: no cover


def _sign_extend(value: int, bits: int) -> int:
    mask = 1 << (bits - 1)
    return (value ^ mask) - mask


def decode_rv(word: int) -> RvInstruction:
    """Decode a 32-bit machine word back into an :class:`RvInstruction`."""
    opcode_bits = word & 0x7F
    funct3 = (word >> 12) & 0x7
    funct7 = (word >> 25) & 0x7F
    rd = (word >> 7) & 0x1F
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F

    for candidate in RvOpcode:
        info = candidate.info
        if info.opcode != opcode_bits:
            continue
        if info.fmt is RvFormat.R:
            if info.funct3 == funct3 and info.funct7 == funct7:
                return RvInstruction(candidate, rd=rd, rs1=rs1, rs2=rs2)
        elif info.fmt is RvFormat.I:
            if info.funct3 != funct3:
                continue
            if candidate in (RvOpcode.SLLI, RvOpcode.SRLI, RvOpcode.SRAI):
                if info.funct7 != funct7:
                    continue
                return RvInstruction(candidate, rd=rd, rs1=rs1, imm=rs2)
            imm = _sign_extend(word >> 20, 12)
            return RvInstruction(candidate, rd=rd, rs1=rs1, imm=imm)
        elif info.fmt is RvFormat.S:
            if info.funct3 != funct3:
                continue
            imm = _sign_extend(((word >> 25) << 5) | ((word >> 7) & 0x1F), 12)
            return RvInstruction(candidate, rs1=rs1, rs2=rs2, imm=imm)
        elif info.fmt is RvFormat.B:
            if info.funct3 != funct3:
                continue
            imm = (
                (((word >> 31) & 0x1) << 12)
                | (((word >> 7) & 0x1) << 11)
                | (((word >> 25) & 0x3F) << 5)
                | (((word >> 8) & 0xF) << 1)
            )
            return RvInstruction(candidate, rs1=rs1, rs2=rs2, imm=_sign_extend(imm, 13))
        elif info.fmt is RvFormat.U:
            return RvInstruction(candidate, rd=rd, imm=(word >> 12) & 0xFFFFF)
        elif info.fmt is RvFormat.J:
            imm = (
                (((word >> 31) & 0x1) << 20)
                | (((word >> 12) & 0xFF) << 12)
                | (((word >> 20) & 0x1) << 11)
                | (((word >> 21) & 0x3FF) << 1)
            )
            return RvInstruction(candidate, rd=rd, imm=_sign_extend(imm, 21))
        elif info.fmt is RvFormat.SYS:
            if (word >> 20) & 0xFFF == 1:
                return RvInstruction(candidate)
    raise AssemblyError(f"cannot decode machine word {word:#010x}")
