"""Technology bundle handed to GPUPlanner.

GPUPlanner is technology-agnostic: per the paper, the designer "only has to
give the basic information of the memory blocks (name, number of ports, port
names, and minimum delay for data access)".  The :class:`Technology` object is
that information plus the standard-cell and metal-stack models the synthesis
and physical stages need.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TechnologyError
from repro.tech.metal import MetalStack
from repro.tech.sram import SramCompiler, SramMacroSpec, SramPort
from repro.tech.stdcell import StdCellLibrary


@dataclass(frozen=True)
class Technology:
    """A process technology as seen by GPUPlanner.

    Attributes
    ----------
    name:
        Human-readable identifier used in reports (e.g. ``"lp65nm"``).
    node_nm:
        Drawn feature size in nanometres.
    stdcells:
        Standard-cell library model.
    sram:
        SRAM memory-compiler model.
    metal:
        Metal stack model.
    clock_uncertainty_ns:
        Clock skew/jitter margin subtracted from every timing budget.
    """

    name: str = "lp65nm"
    node_nm: int = 65
    stdcells: StdCellLibrary = field(default_factory=StdCellLibrary)
    sram: SramCompiler = field(default_factory=SramCompiler)
    metal: MetalStack = field(default_factory=MetalStack)
    clock_uncertainty_ns: float = 0.05

    def __post_init__(self) -> None:
        if self.node_nm <= 0:
            raise TechnologyError(f"node size must be positive, got {self.node_nm}")
        if self.clock_uncertainty_ns < 0:
            raise TechnologyError(
                f"clock uncertainty must be non-negative, got {self.clock_uncertainty_ns}"
            )

    def timing_budget_ns(self, freq_mhz: float) -> float:
        """Usable combinational budget of one cycle at ``freq_mhz``.

        The register overhead (clk-to-q + setup) and the clock uncertainty are
        subtracted from the period, which is how the static timing model
        decides whether a path meets timing.
        """
        if freq_mhz <= 0:
            raise TechnologyError(f"frequency must be positive, got {freq_mhz}")
        period_ns = 1.0e3 / freq_mhz
        budget = period_ns - self.stdcells.register_to_register_overhead() - self.clock_uncertainty_ns
        if budget <= 0:
            raise TechnologyError(
                f"frequency {freq_mhz} MHz is not achievable in {self.name}: "
                "the period is consumed by sequential overhead"
            )
        return budget

    def macro_delay_ns(self, words: int, bits: int, ports: SramPort = SramPort.DUAL) -> float:
        """Convenience wrapper: access delay of a compiled macro."""
        return self.sram.access_delay_ns(SramMacroSpec(words, bits, ports))


def default_65nm() -> Technology:
    """The commercial-65nm-like technology used throughout the paper's results."""
    return Technology()
