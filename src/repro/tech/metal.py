"""Metal stack model used by the routing estimator.

The paper's technology has nine metal layers; M1, M8 and M9 are reserved for
power routing, so signal wirelength is reported for M2-M7 only (Table II).
Lower layers are used for short local connections, upper layers for the long
top-level routes between CUs and the global memory controller -- this split is
what makes the 8-CU floorplan's long routes visible in the per-layer report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import TechnologyError


@dataclass(frozen=True)
class MetalLayer:
    """One metal layer of the stack.

    Attributes
    ----------
    name:
        Layer name (``M1`` .. ``M9``).
    pitch_um:
        Minimum routing pitch.
    resistance_ohm_per_um / capacitance_ff_per_um:
        Parasitics used to estimate the delay of long routes.
    signal:
        Whether the layer is available for signal routing (False for the
        power-only layers M1/M8/M9).
    """

    name: str
    pitch_um: float
    resistance_ohm_per_um: float
    capacitance_ff_per_um: float
    signal: bool = True


def _default_layers() -> Tuple[MetalLayer, ...]:
    return (
        MetalLayer("M1", 0.18, 1.30, 0.21, signal=False),
        MetalLayer("M2", 0.20, 1.10, 0.20),
        MetalLayer("M3", 0.20, 1.10, 0.20),
        MetalLayer("M4", 0.28, 0.62, 0.22),
        MetalLayer("M5", 0.28, 0.62, 0.22),
        MetalLayer("M6", 0.40, 0.33, 0.24),
        MetalLayer("M7", 0.40, 0.33, 0.24),
        MetalLayer("M8", 0.80, 0.08, 0.28, signal=False),
        MetalLayer("M9", 0.80, 0.08, 0.28, signal=False),
    )


@dataclass(frozen=True)
class MetalStack:
    """The nine-layer metal stack of the 65nm process."""

    layers: Tuple[MetalLayer, ...] = field(default_factory=_default_layers)

    def __post_init__(self) -> None:
        names = [layer.name for layer in self.layers]
        if len(names) != len(set(names)):
            raise TechnologyError(f"duplicate metal layer names: {names}")

    @property
    def signal_layers(self) -> List[MetalLayer]:
        """Layers available for signal routing, bottom-up."""
        return [layer for layer in self.layers if layer.signal]

    def layer(self, name: str) -> MetalLayer:
        """Look one layer up by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise TechnologyError(f"unknown metal layer {name!r}")

    def wire_delay_ns(self, layer_name: str, length_um: float, driver_ohm: float = 250.0) -> float:
        """Elmore-style delay of a route of ``length_um`` on the given layer.

        Used by the physical model to explain why the long CU-to-memory-
        controller routes in the 8-CU floorplan violate the 1.5 ns period.
        """
        if length_um < 0:
            raise TechnologyError(f"length must be non-negative, got {length_um}")
        layer = self.layer(layer_name)
        resistance = layer.resistance_ohm_per_um * length_um
        capacitance_f = layer.capacitance_ff_per_um * length_um * 1.0e-15
        # Driver charging the full wire plus the distributed RC of the wire.
        delay_s = (driver_ohm + 0.5 * resistance) * capacitance_f
        return delay_s * 1.0e9

    def signal_layer_shares(self) -> Dict[str, float]:
        """Fraction of total routed wirelength expected on each signal layer.

        The distribution mirrors what a commercial router produces for a
        macro-dominated floorplan: the bulk of the wirelength sits on M2/M3
        (local routing), decreasing towards M6/M7 which carry the long
        inter-partition routes.  The routing estimator perturbs these shares
        with the fraction of long top-level nets.
        """
        return {"M2": 0.21, "M3": 0.33, "M4": 0.17, "M5": 0.15, "M6": 0.09, "M7": 0.05}

    def repeated_wire_delay_ns(self, length_um: float, ns_per_mm: float = 0.20) -> float:
        """Delay of a long, optimally repeated (buffered) route.

        Long top-level routes are broken into repeated segments, so the delay
        grows linearly with length rather than quadratically.  The default
        0.20 ns/mm is typical for a 65nm process on the intermediate layers
        and is what limits the 8-CU G-GPU to 600 MHz in the paper's Fig. 4.
        """
        if length_um < 0:
            raise TechnologyError(f"length must be non-negative, got {length_um}")
        return ns_per_mm * length_um / 1000.0
