"""Technology models for a commercial-65nm-like CMOS process.

The paper implements G-GPU in a commercial 65nm technology whose memory
compiler offers single- and dual-port low-power SRAM macros (16-65536 words,
2-144 bits per word) and whose metal stack has nine layers (M1/M8/M9 reserved
for power).  Those proprietary models are replaced here by calibrated
analytical models exposing the same interface GPUPlanner needs: macro
area/delay/power as a function of geometry, standard-cell area/power, and the
metal stack used by the routing estimator.
"""

from repro.tech.stdcell import StdCellLibrary
from repro.tech.sram import SramCompiler, SramMacroSpec, SramPort
from repro.tech.metal import MetalLayer, MetalStack
from repro.tech.technology import Technology, default_65nm

__all__ = [
    "StdCellLibrary",
    "SramCompiler",
    "SramMacroSpec",
    "SramPort",
    "MetalLayer",
    "MetalStack",
    "Technology",
    "default_65nm",
]
