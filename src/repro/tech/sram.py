"""SRAM memory-compiler model.

The paper's 65nm technology ships a memory compiler producing single- and
dual-port low-power SRAM with 16-65536 words and 2-144 bits per word.  The
GPUPlanner optimization strategy only consumes three characteristics of each
macro -- access delay, area, and power -- and relies on two qualitative facts:

* larger macros (more words or wider words) are slower, and
* two macros of size ``M x N`` are larger and more power-hungry than a single
  macro of size ``2M x N`` (so memory division trades area/power for speed).

The analytical model below preserves both facts.  The constants are calibrated
so a dual-port 2048x32 macro (the G-GPU register-file bank) lands around
50k um^2 and 1.2 ns, consistent with published 65nm SRAM compiler data sheets.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.errors import TechnologyError


class SramPort(enum.Enum):
    """Port configuration offered by the memory compiler."""

    SINGLE = "single"
    DUAL = "dual"


@dataclass(frozen=True)
class SramMacroSpec:
    """Geometry of one compiled SRAM macro."""

    words: int
    bits: int
    ports: SramPort = SramPort.DUAL

    def __post_init__(self) -> None:
        if self.words < 1 or self.bits < 1:
            raise TechnologyError(
                f"macro geometry must be positive, got {self.words}x{self.bits}"
            )

    @property
    def capacity_bits(self) -> int:
        """Total number of storage bits in the macro."""
        return self.words * self.bits

    def split_words(self) -> "SramMacroSpec":
        """Return the macro obtained by halving the number of words."""
        if self.words < 2:
            raise TechnologyError(f"cannot split a {self.words}-word macro by words")
        return SramMacroSpec(self.words // 2, self.bits, self.ports)

    def split_bits(self) -> "SramMacroSpec":
        """Return the macro obtained by halving the word width."""
        if self.bits < 2:
            raise TechnologyError(f"cannot split a {self.bits}-bit macro by bits")
        return SramMacroSpec(self.words, self.bits // 2, self.ports)


@dataclass(frozen=True)
class SramCompiler:
    """Analytical model of the 65nm low-power SRAM memory compiler.

    The compiler accepts geometries in ``[min_words, max_words]`` words and
    ``[min_bits, max_bits]`` bits, mirroring the ranges quoted in the paper
    (16-65536 words, 2-144 bits).
    """

    name: str = "lp65-sram"
    min_words: int = 16
    max_words: int = 65536
    min_bits: int = 2
    max_bits: int = 144

    # Area model: fixed periphery + per-bit cell area + wordline/bitline
    # periphery that grows with the macro perimeter.
    area_fixed_um2: float = 6000.0
    area_per_bit_um2: float = 0.70
    area_perimeter_um2: float = 26.0
    dual_port_area_factor: float = 1.55

    # Delay model: fixed decode/sense time + bitline RC (grows with the square
    # root of the word count, i.e. the physical column height) + output path
    # (grows with the square root of the word width).  Calibrated so a
    # dual-port 2048x32 register-file bank comes out at ~1.44 ns, which makes
    # the unoptimized G-GPU close timing at exactly the paper's 500 MHz.
    delay_fixed_ns: float = 0.115
    delay_bitline_ns: float = 0.0254
    delay_output_ns: float = 0.012
    dual_port_delay_factor: float = 1.08

    # Power model.
    leakage_nw_per_bit: float = 1.0
    leakage_fixed_nw: float = 3200.0
    dynamic_uw_per_mhz_fixed: float = 0.012
    dynamic_uw_per_mhz_per_bit: float = 9.0e-4
    dual_port_power_factor: float = 1.35

    def supports(self, spec: SramMacroSpec) -> bool:
        """Whether the compiler can produce the requested geometry."""
        return (
            self.min_words <= spec.words <= self.max_words
            and self.min_bits <= spec.bits <= self.max_bits
        )

    def _require(self, spec: SramMacroSpec) -> None:
        if not self.supports(spec):
            raise TechnologyError(
                f"macro {spec.words}x{spec.bits} is outside the compiler range "
                f"[{self.min_words}-{self.max_words}] x [{self.min_bits}-{self.max_bits}]"
            )

    def area_um2(self, spec: SramMacroSpec) -> float:
        """Macro area in um^2."""
        self._require(spec)
        perimeter = math.sqrt(spec.words * spec.bits)
        area = (
            self.area_fixed_um2
            + self.area_per_bit_um2 * spec.capacity_bits
            + self.area_perimeter_um2 * perimeter
        )
        if spec.ports is SramPort.DUAL:
            area *= self.dual_port_area_factor
        return area

    def access_delay_ns(self, spec: SramMacroSpec) -> float:
        """Address-to-data access delay in ns."""
        self._require(spec)
        delay = (
            self.delay_fixed_ns
            + self.delay_bitline_ns * math.sqrt(spec.words)
            + self.delay_output_ns * math.sqrt(spec.bits)
        )
        if spec.ports is SramPort.DUAL:
            delay *= self.dual_port_delay_factor
        return delay

    def leakage_mw(self, spec: SramMacroSpec) -> float:
        """Leakage power in mW."""
        self._require(spec)
        leak_nw = self.leakage_fixed_nw + self.leakage_nw_per_bit * spec.capacity_bits
        if spec.ports is SramPort.DUAL:
            leak_nw *= self.dual_port_power_factor
        return leak_nw * 1.0e-6

    def dynamic_mw(self, spec: SramMacroSpec, freq_mhz: float, activity: float = 1.0) -> float:
        """Dynamic power in mW at the given access frequency and activity."""
        self._require(spec)
        if freq_mhz <= 0:
            raise TechnologyError(f"frequency must be positive, got {freq_mhz}")
        if not 0.0 <= activity <= 1.0:
            raise TechnologyError(f"activity must be in [0, 1], got {activity}")
        per_mhz_uw = (
            self.dynamic_uw_per_mhz_fixed
            + self.dynamic_uw_per_mhz_per_bit * spec.capacity_bits
        )
        if spec.ports is SramPort.DUAL:
            per_mhz_uw *= self.dual_port_power_factor
        return per_mhz_uw * freq_mhz * activity * 1.0e-3

    def footprint_um(self, spec: SramMacroSpec) -> tuple:
        """Approximate (width, height) in um of the macro for floorplanning.

        Macros are modelled with a 2:1 aspect ratio (wide and short), which is
        what the compiler in the paper produces for the register-file-sized
        instances.
        """
        area = self.area_um2(spec)
        height = math.sqrt(area / 2.0)
        width = 2.0 * height
        return (width, height)

    def smallest_valid_split(self, spec: SramMacroSpec) -> SramMacroSpec:
        """Return the word-split macro if it is supported, else a bit split.

        GPUPlanner prefers splitting the number of words (address MSB decode)
        because only a MUX on the read data is needed; splitting bits is the
        fallback when the word count reaches the compiler minimum.
        """
        word_split = None
        if spec.words >= 2:
            candidate = spec.split_words()
            if self.supports(candidate):
                word_split = candidate
        if word_split is not None:
            return word_split
        if spec.bits >= 2:
            candidate = spec.split_bits()
            if self.supports(candidate):
                return candidate
        raise TechnologyError(
            f"macro {spec.words}x{spec.bits} cannot be split within compiler limits"
        )
