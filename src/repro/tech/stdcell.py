"""Standard-cell library model.

Logic synthesis in this reproduction does not map to individual cells; it
counts *gate equivalents* (2-input NAND equivalents) for combinational logic
and flip-flop instances for sequential logic, exactly the granularity the
paper's Table I reports (#FF, #Comb.).  The library model converts those
counts into area and power and provides per-stage logic delays used by the
static timing model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TechnologyError


@dataclass(frozen=True)
class StdCellLibrary:
    """Analytical model of a 65nm low-power standard-cell library.

    Attributes
    ----------
    name:
        Library identifier used in reports.
    ff_area_um2:
        Area of one flip-flop (average of the drive strengths used).
    gate_area_um2:
        Area of one combinational gate equivalent.
    ff_leakage_nw / gate_leakage_nw:
        Leakage power per instance in nanowatts.
    ff_dynamic_uw_per_mhz / gate_dynamic_uw_per_mhz:
        Dynamic power per instance in microwatts per MHz of clock frequency,
        already folded with the average switching activity observed in the
        calibration runs.
    gate_delay_ns:
        Delay of one gate equivalent stage at nominal drive/load.
    ff_setup_ns / ff_clk_to_q_ns:
        Sequential timing arcs used by the static timing model.
    mux2_delay_ns:
        Delay of a 2:1 multiplexer stage; memory division inserts one of these
        per doubling of the number of blocks.
    track_pitch_um:
        Routing track pitch, used by the wirelength estimator.
    """

    name: str = "lp65-stdcell"
    ff_area_um2: float = 6.6
    gate_area_um2: float = 4.7
    ff_leakage_nw: float = 9.0
    gate_leakage_nw: float = 4.5
    ff_dynamic_uw_per_mhz: float = 0.010
    gate_dynamic_uw_per_mhz: float = 0.0048
    gate_delay_ns: float = 0.042
    ff_setup_ns: float = 0.055
    ff_clk_to_q_ns: float = 0.11
    mux2_delay_ns: float = 0.065
    track_pitch_um: float = 0.20

    def logic_area(self, num_ff: int, num_comb: int) -> float:
        """Total standard-cell area in um^2 for the given instance counts."""
        self._check_counts(num_ff, num_comb)
        return num_ff * self.ff_area_um2 + num_comb * self.gate_area_um2

    def logic_leakage_mw(self, num_ff: int, num_comb: int) -> float:
        """Leakage power in mW for the given instance counts."""
        self._check_counts(num_ff, num_comb)
        leak_nw = num_ff * self.ff_leakage_nw + num_comb * self.gate_leakage_nw
        return leak_nw * 1.0e-6

    def logic_dynamic_mw(self, num_ff: int, num_comb: int, freq_mhz: float) -> float:
        """Dynamic power in mW at the given clock frequency."""
        self._check_counts(num_ff, num_comb)
        if freq_mhz <= 0:
            raise TechnologyError(f"frequency must be positive, got {freq_mhz}")
        per_mhz_uw = (
            num_ff * self.ff_dynamic_uw_per_mhz + num_comb * self.gate_dynamic_uw_per_mhz
        )
        return per_mhz_uw * freq_mhz * 1.0e-3

    def path_delay(self, logic_levels: int, mux_levels: int = 0) -> float:
        """Combinational delay in ns of a path with the given logic depth."""
        if logic_levels < 0 or mux_levels < 0:
            raise TechnologyError("logic/mux levels must be non-negative")
        return logic_levels * self.gate_delay_ns + mux_levels * self.mux2_delay_ns

    def register_to_register_overhead(self) -> float:
        """Sequential overhead (clk-to-q plus setup) added to every timed path."""
        return self.ff_clk_to_q_ns + self.ff_setup_ns

    @staticmethod
    def _check_counts(num_ff: int, num_comb: int) -> None:
        if num_ff < 0 or num_comb < 0:
            raise TechnologyError(
                f"instance counts must be non-negative, got ff={num_ff} comb={num_comb}"
            )
