"""Reproduction of "G-GPU: A Fully-Automated Generator of GPU-like ASIC
Accelerators" (Perez et al., DATE 2022).

The library has three layers:

* **Architecture and execution** -- :mod:`repro.arch` (SIMT ISA, kernels,
  configuration), :mod:`repro.simt` (cycle-approximate G-GPU simulator),
  :mod:`repro.riscv` (the RV32IM baseline), and :mod:`repro.kernels` (the
  seven AMD-SDK-style micro-benchmarks).
* **GPUPlanner** -- :mod:`repro.tech` (65nm-like technology models),
  :mod:`repro.rtl` (netlist IR, generator, memory division, pipeline
  insertion, STA), :mod:`repro.synth` (logic synthesis), :mod:`repro.physical`
  (floorplan/placement/routing/layout), and :mod:`repro.planner` (the
  specification-to-GDSII flow, first-order PPA map, and design-space
  exploration).
* **Evaluation** -- :mod:`repro.eval` regenerates every table and figure of
  the paper (plus an energy-efficiency extension and CSV/Markdown report
  writers).
* **Extensions** -- :mod:`repro.cl` (an OpenCL-C subset compiler targeting
  both the G-GPU and the RISC-V baseline), :mod:`repro.rtl.verilog` and
  :mod:`repro.physical.export` (Verilog / DEF / LEF / SVG hand-off artifacts),
  and :mod:`repro.scaling` (the paper's future work: replicated memory
  controllers, clusters beyond 8 CUs, single-port memories).

Quick start::

    from repro import GGPUSpec, GpuPlannerFlow, default_65nm
    flow = GpuPlannerFlow(default_65nm())
    result = flow.run(GGPUSpec(num_cus=2, target_frequency_mhz=590.0))
    print(result.summary())
"""

from repro.arch.config import AxiConfig, CacheConfig, GGPUConfig
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder, NDRange
from repro.cl import compile_kernel, compile_source
from repro.planner.dse import DesignSpaceExplorer
from repro.planner.flow import FlowResult, GpuPlannerFlow
from repro.planner.spec import GGPUSpec
from repro.scaling import ClusterConfig, run_clustered_flow
from repro.simt.gpu import GGPUSimulator, LaunchResult
from repro.tech.technology import Technology, default_65nm

__version__ = "1.1.0"

__all__ = [
    "AxiConfig",
    "CacheConfig",
    "GGPUConfig",
    "Kernel",
    "KernelArg",
    "KernelBuilder",
    "NDRange",
    "compile_kernel",
    "compile_source",
    "DesignSpaceExplorer",
    "FlowResult",
    "GpuPlannerFlow",
    "GGPUSpec",
    "ClusterConfig",
    "run_clustered_flow",
    "GGPUSimulator",
    "LaunchResult",
    "Technology",
    "default_65nm",
    "__version__",
]
