"""G-GPU netlist generator.

This module is the structural heart of GPUPlanner: given a
:class:`~repro.arch.config.GGPUConfig` it instantiates the memory groups,
logic blocks, and timing paths of the whole accelerator -- every CU, the
global memory controller, and the top level.  The inventory mirrors the FGPU
micro-architecture (per-PE register-file banks, operand buffers, LRAM,
wavefront state, CRAM, LSU FIFOs, the central cache and its tag store, AXI
FIFOs, and the runtime memory) and is calibrated so the totals of the default
configuration land on the scale reported in the paper's Table I
(~42 macros, ~109k FFs and ~110k gate equivalents per CU, plus ~9 shared
macros and ~11k shared FFs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch.config import GGPUConfig
from repro.rtl.netlist import LogicBlock, MemoryGroup, Netlist, Partition, TimingPath
from repro.tech.sram import SramMacroSpec, SramPort

# Memories whose two ports are never used in the same cycle and can therefore
# be re-implemented with single-port macros behind a small arbiter.  The paper
# lists dual-port memories as a hard constraint of the current GPUPlanner and
# schedules single-port support as future work; this set is that future work.
SINGLE_PORT_CAPABLE_ROLES = frozenset(
    {"operand_buffer", "lsu_fifo", "scoreboard", "pred_stack", "axi_fifo", "rtm"}
)


@dataclass(frozen=True)
class GeneratorOptions:
    """Optional netlist-generation features beyond the paper's baseline flow.

    Attributes
    ----------
    single_port_memories:
        Re-implement the roles in :data:`SINGLE_PORT_CAPABLE_ROLES` with
        single-port macros.  Single-port macros are smaller and lower power,
        but the request arbitration adds ``arbiter_logic_levels`` of logic to
        the affected read paths and one arbiter block per partition.
    arbiter_logic_levels:
        Extra gate levels on the read path of every single-ported memory.
    arbiter_ff / arbiter_gates:
        Size of the per-partition port-arbitration state machine.
    """

    single_port_memories: bool = False
    arbiter_logic_levels: int = 2
    arbiter_ff: int = 350
    arbiter_gates: int = 620


@dataclass(frozen=True)
class MemoryInventoryEntry:
    """One kind of memory inside a partition."""

    role: str
    count: int
    words: int
    bits: int
    read_logic_levels: int
    path_width_bits: int
    ports: SramPort = SramPort.DUAL


@dataclass(frozen=True)
class LogicInventoryEntry:
    """One logic block inside a partition."""

    name: str
    num_ff: int
    num_gates: int
    description: str


# --------------------------------------------------------------------------- #
# Structural inventory of one Compute Unit
# --------------------------------------------------------------------------- #
CU_MEMORIES: Tuple[MemoryInventoryEntry, ...] = (
    # One register-file bank per PE: 512 work-items x 32 registers x 32 bits
    # spread over 8 banks = 2048 words per bank.  The read path feeds the
    # operand-collection network (8 levels of muxing/bypass) and is the
    # critical path of the unoptimized design.
    MemoryInventoryEntry("register_file", 8, 2048, 32, read_logic_levels=8, path_width_bits=32),
    MemoryInventoryEntry("operand_buffer", 8, 512, 32, read_logic_levels=4, path_width_bits=32),
    MemoryInventoryEntry("lram", 4, 1024, 32, read_logic_levels=4, path_width_bits=32),
    MemoryInventoryEntry("wf_state", 4, 256, 64, read_logic_levels=5, path_width_bits=64),
    MemoryInventoryEntry("cram", 2, 2048, 32, read_logic_levels=6, path_width_bits=32),
    MemoryInventoryEntry("lsu_fifo", 8, 256, 32, read_logic_levels=3, path_width_bits=32),
    MemoryInventoryEntry("scoreboard", 4, 512, 16, read_logic_levels=4, path_width_bits=16),
    MemoryInventoryEntry("pred_stack", 4, 256, 32, read_logic_levels=3, path_width_bits=32),
)

CU_LOGIC: Tuple[LogicInventoryEntry, ...] = (
    LogicInventoryEntry("pe_datapath", 65600, 70400, "8 PEs: ALU, multiplier, bypass, pipeline registers"),
    LogicInventoryEntry("wf_scheduler", 9500, 8200, "wavefront scheduler and scoreboarding"),
    LogicInventoryEntry("wg_slot_control", 6200, 5400, "workgroup slot and work-item id generation"),
    LogicInventoryEntry("lsu_array", 14200, 12500, "per-PE load/store units and coalescing"),
    LogicInventoryEntry("divergence_unit", 5800, 4200, "execution-mask stack and reconvergence"),
    LogicInventoryEntry("cu_control", 7500, 9000, "decode, issue, and CU-level control"),
)

# Pure-logic timing paths of a CU: (suffix, logic levels, width, description).
CU_LOGIC_PATHS: Tuple[Tuple[str, int, int], ...] = (
    ("wf_scheduler_select", 36, 64),
    ("alu_bypass", 30, 32),
    ("lsu_coalesce", 24, 64),
)

# --------------------------------------------------------------------------- #
# Structural inventory of the global memory controller and the top level
# --------------------------------------------------------------------------- #
MEMCTRL_MEMORIES: Tuple[MemoryInventoryEntry, ...] = (
    MemoryInventoryEntry("cache_data", 4, 2048, 64, read_logic_levels=7, path_width_bits=64),
    MemoryInventoryEntry("cache_tag", 2, 1024, 24, read_logic_levels=10, path_width_bits=24),
    MemoryInventoryEntry("axi_fifo", 2, 512, 64, read_logic_levels=4, path_width_bits=64),
)

MEMCTRL_LOGIC: Tuple[LogicInventoryEntry, ...] = (
    LogicInventoryEntry("global_mem_ctrl", 6800, 7400, "cache control, miss handling, write-back"),
    LogicInventoryEntry("data_movers", 2400, 2000, "AXI data movers"),
)

MEMCTRL_LOGIC_PATHS: Tuple[Tuple[str, int, int], ...] = (
    ("request_arbiter", 26, 64),
)

TOP_MEMORIES: Tuple[MemoryInventoryEntry, ...] = (
    MemoryInventoryEntry("rtm", 1, 512, 32, read_logic_levels=5, path_width_bits=32),
)

TOP_LOGIC: Tuple[LogicInventoryEntry, ...] = (
    LogicInventoryEntry("axi_control", 1400, 1100, "AXI control interface and register file"),
    LogicInventoryEntry("wg_dispatcher", 900, 1300, "workgroup dispatcher"),
)

# Logic depth of the CU <-> memory controller interface paths; after placement
# these also pick up the wire delay of the route between the partitions.
CROSSING_LOGIC_LEVELS = 12
CROSSING_WIDTH_BITS = 64


def _add_partition_memories(
    netlist: Netlist,
    inventory: Tuple[MemoryInventoryEntry, ...],
    partition: Partition,
    prefix: str,
    options: Optional[GeneratorOptions] = None,
) -> None:
    options = options or GeneratorOptions()
    used_single_port = False
    for entry in inventory:
        ports = entry.ports
        extra_levels = 0
        if options.single_port_memories and entry.role in SINGLE_PORT_CAPABLE_ROLES:
            ports = SramPort.SINGLE
            extra_levels = options.arbiter_logic_levels
            used_single_port = True
        for index in range(entry.count):
            group_name = f"{prefix}/{entry.role}{index}"
            netlist.add_memory_group(
                MemoryGroup(
                    name=group_name,
                    partition=partition,
                    role=entry.role,
                    macro=SramMacroSpec(entry.words, entry.bits, ports),
                    instance_of=f"{entry.role}{index}",
                )
            )
            netlist.add_timing_path(
                TimingPath(
                    name=f"{group_name}__read",
                    partition=partition,
                    logic_levels=entry.read_logic_levels + extra_levels,
                    memory_group=group_name,
                    width_bits=entry.path_width_bits,
                )
            )
    if used_single_port:
        netlist.add_logic_block(
            LogicBlock(
                name=f"{prefix}/port_arbiter",
                partition=partition,
                num_ff=options.arbiter_ff,
                num_gates=options.arbiter_gates,
                description="request arbitration for single-port memories",
            )
        )


def _add_partition_logic(
    netlist: Netlist,
    inventory: Tuple[LogicInventoryEntry, ...],
    partition: Partition,
    prefix: str,
) -> None:
    for entry in inventory:
        netlist.add_logic_block(
            LogicBlock(
                name=f"{prefix}/{entry.name}",
                partition=partition,
                num_ff=entry.num_ff,
                num_gates=entry.num_gates,
                description=entry.description,
            )
        )


def generate_ggpu_netlist(
    config: GGPUConfig,
    name: str = "",
    options: Optional[GeneratorOptions] = None,
) -> Netlist:
    """Generate the structural netlist of a G-GPU with ``config.num_cus`` CUs."""
    netlist_name = name or f"ggpu_{config.num_cus}cu"
    netlist = Netlist(netlist_name, num_cus=config.num_cus)

    for cu_index in range(config.num_cus):
        prefix = f"cu{cu_index}"
        _add_partition_memories(netlist, CU_MEMORIES, Partition.CU, prefix, options)
        _add_partition_logic(netlist, CU_LOGIC, Partition.CU, prefix)
        for suffix, levels, width in CU_LOGIC_PATHS:
            netlist.add_timing_path(
                TimingPath(
                    name=f"{prefix}/{suffix}",
                    partition=Partition.CU,
                    logic_levels=levels,
                    width_bits=width,
                )
            )
        # Interface paths between this CU and the global memory controller.
        for direction in ("request", "response"):
            netlist.add_timing_path(
                TimingPath(
                    name=f"top/{prefix}_{direction}",
                    partition=Partition.TOP,
                    logic_levels=CROSSING_LOGIC_LEVELS,
                    width_bits=CROSSING_WIDTH_BITS,
                    crosses_partitions=True,
                    # The paper reports that inserting pipelines on these long
                    # routes was ineffective against the wire-dominated delay.
                    pipelinable=False,
                )
            )

    _add_partition_memories(
        netlist, MEMCTRL_MEMORIES, Partition.MEMORY_CONTROLLER, "memctrl", options
    )
    _add_partition_logic(netlist, MEMCTRL_LOGIC, Partition.MEMORY_CONTROLLER, "memctrl")
    for suffix, levels, width in MEMCTRL_LOGIC_PATHS:
        netlist.add_timing_path(
            TimingPath(
                name=f"memctrl/{suffix}",
                partition=Partition.MEMORY_CONTROLLER,
                logic_levels=levels,
                width_bits=width,
            )
        )

    _add_partition_memories(netlist, TOP_MEMORIES, Partition.TOP, "top", options)
    _add_partition_logic(netlist, TOP_LOGIC, Partition.TOP, "top")
    return netlist


def riscv_reference_netlist(name: str = "riscv_cv32") -> Netlist:
    """Netlist of the RISC-V baseline (core plus 2 x 32 kB memories).

    Used to compute the G-GPU/RISC-V area ratios of Fig. 6 from the same
    synthesis model instead of hard-coding the paper's ratios.
    """
    netlist = Netlist(name, num_cus=0)
    netlist.add_logic_block(
        LogicBlock(
            name="core",
            partition=Partition.TOP,
            num_ff=4800,
            num_gates=42000,
            description="CV32E40P-class 4-stage in-order RV32IM core",
        )
    )
    for role, words, bits in (("imem", 8192, 32), ("dmem", 8192, 32)):
        group = netlist.add_memory_group(
            MemoryGroup(
                name=f"top/{role}",
                partition=Partition.TOP,
                role=role,
                macro=SramMacroSpec(words, bits, SramPort.SINGLE),
            )
        )
        netlist.add_timing_path(
            TimingPath(
                name=f"{group.name}__read",
                partition=Partition.TOP,
                logic_levels=6,
                memory_group=group.name,
                width_bits=32,
            )
        )
    return netlist
