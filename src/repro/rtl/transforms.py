"""The two netlist transforms GPUPlanner applies to close timing.

* **Memory division** (:func:`split_memory_group`): replace the macros of a
  memory group with twice as many macros of half the size (words are split
  first; bits when the word count reaches the compiler's minimum).  The
  group's read data gains one 2:1-mux level, and the addressing control costs
  a few extra gates -- exactly the trade-off the paper describes: the divided
  memory is faster to access but larger and more power-hungry in total.

* **On-demand pipeline insertion** (:func:`insert_pipeline`): add pipeline
  registers to a path whose combinational logic (not a macro) is the problem.
  This costs ``width_bits`` flip-flops per stage and one cycle of latency,
  which the architecture tolerates because the FGPU is already deeply
  pipelined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import NetlistError
from repro.rtl.netlist import Netlist
from repro.tech.technology import Technology


@dataclass(frozen=True)
class TransformRecord:
    """What a transform did (kept by the optimizer for its report)."""

    kind: str
    target: str
    detail: str


def split_memory_group(
    netlist: Netlist, group_name: str, tech: Technology
) -> TransformRecord:
    """Divide a memory group once (doubling its macro count)."""
    try:
        group = netlist.memory_groups[group_name]
    except KeyError as exc:
        raise NetlistError(f"unknown memory group {group_name!r}") from exc
    smaller = tech.sram.smallest_valid_split(group.macro)
    before = f"{group.num_macros} x {group.macro.words}x{group.macro.bits}"
    group.macro = smaller
    group.num_macros *= 2
    group.mux_levels += 1
    after = f"{group.num_macros} x {group.macro.words}x{group.macro.bits}"
    return TransformRecord(
        kind="memory_division",
        target=group_name,
        detail=f"{before} -> {after} (+1 mux level)",
    )


def insert_pipeline(
    netlist: Netlist, path_name: str, stages: int = 1
) -> TransformRecord:
    """Insert ``stages`` pipeline stages on a timing path."""
    try:
        path = netlist.timing_paths[path_name]
    except KeyError as exc:
        raise NetlistError(f"unknown timing path {path_name!r}") from exc
    if stages < 1:
        raise NetlistError("pipeline insertion needs at least one stage")
    if not path.pipelinable:
        raise NetlistError(
            f"path {path_name!r} cannot be pipelined (wire-dominated inter-partition route)"
        )
    path.pipeline_stages += stages
    return TransformRecord(
        kind="pipeline_insertion",
        target=path_name,
        detail=f"now {path.pipeline_stages} pipeline stage(s), +{stages * path.width_bits} FFs",
    )


def splittable_groups(netlist: Netlist, tech: Technology) -> List[str]:
    """Names of memory groups the compiler can still divide further."""
    names = []
    for name, group in netlist.memory_groups.items():
        try:
            tech.sram.smallest_valid_split(group.macro)
        except Exception:  # TechnologyError: at the compiler's minimum geometry
            continue
        names.append(name)
    return sorted(names)
