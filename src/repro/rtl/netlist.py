"""Netlist IR: partitions, memory groups, logic blocks, and timing paths.

The granularity matches what GPUPlanner reasons about and what Table I
reports: SRAM macro instances, flip-flop counts, combinational gate counts,
and the handful of timing paths that decide the achievable clock frequency.

A *memory group* is one logical memory of the architecture (for example the
register file bank of PE3 in CU0).  Initially it is implemented by a single
SRAM macro; memory division re-implements it with ``2^k`` smaller macros plus
``k`` levels of output multiplexing.  A *timing path* names a
register-to-register path, optionally starting at a memory group's read port,
with a combinational depth expressed in gate and mux levels; pipeline
insertion raises its ``pipeline_stages``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NetlistError
from repro.tech.sram import SramMacroSpec


class Partition(enum.Enum):
    """Physical-implementation partitions used by the paper's floorplan."""

    CU = "cu"
    MEMORY_CONTROLLER = "memory_controller"
    TOP = "top"


@dataclass
class MemoryGroup:
    """One logical memory, implemented by one or more identical SRAM macros."""

    name: str
    partition: Partition
    role: str
    macro: SramMacroSpec
    num_macros: int = 1
    mux_levels: int = 0
    instance_of: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_macros < 1:
            raise NetlistError(f"memory group {self.name!r} needs at least one macro")
        if self.mux_levels < 0:
            raise NetlistError(f"memory group {self.name!r} has negative mux levels")

    @property
    def total_bits(self) -> int:
        """Storage capacity of the whole group."""
        return self.num_macros * self.macro.capacity_bits


@dataclass
class LogicBlock:
    """A synthesized logic block: flip-flop and gate-equivalent counts."""

    name: str
    partition: Partition
    num_ff: int
    num_gates: int
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_ff < 0 or self.num_gates < 0:
            raise NetlistError(f"logic block {self.name!r} has negative instance counts")


@dataclass
class TimingPath:
    """A named register-to-register timing path.

    ``memory_group`` is the group whose read access starts the path (or
    ``None`` for a pure logic path); ``logic_levels``/``mux_levels`` describe
    the downstream combinational depth; ``width_bits`` is the datapath width
    (used to count the flip-flops a pipeline stage costs);
    ``crosses_partitions`` marks the top-level paths whose wires stretch
    between a CU and the global memory controller -- the ones the physical
    stage adds wire delay to.  ``wire_delay_ns`` is zero after logic synthesis
    and filled in by the physical stage.
    """

    name: str
    partition: Partition
    logic_levels: int
    memory_group: Optional[str] = None
    mux_levels: int = 0
    width_bits: int = 32
    pipeline_stages: int = 0
    crosses_partitions: bool = False
    wire_delay_ns: float = 0.0
    pipelinable: bool = True

    def __post_init__(self) -> None:
        if self.logic_levels < 0 or self.mux_levels < 0 or self.pipeline_stages < 0:
            raise NetlistError(f"timing path {self.name!r} has negative structure counts")
        if self.width_bits <= 0:
            raise NetlistError(f"timing path {self.name!r} must have a positive width")


@dataclass
class Netlist:
    """A complete G-GPU design at the GPUPlanner abstraction level."""

    name: str
    memory_groups: Dict[str, MemoryGroup] = field(default_factory=dict)
    logic_blocks: Dict[str, LogicBlock] = field(default_factory=dict)
    timing_paths: Dict[str, TimingPath] = field(default_factory=dict)
    num_cus: int = 1

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    def add_memory_group(self, group: MemoryGroup) -> MemoryGroup:
        """Register a memory group (names must be unique)."""
        if group.name in self.memory_groups:
            raise NetlistError(f"memory group {group.name!r} already exists")
        self.memory_groups[group.name] = group
        return group

    def add_logic_block(self, block: LogicBlock) -> LogicBlock:
        """Register a logic block (names must be unique)."""
        if block.name in self.logic_blocks:
            raise NetlistError(f"logic block {block.name!r} already exists")
        self.logic_blocks[block.name] = block
        return block

    def add_timing_path(self, path: TimingPath) -> TimingPath:
        """Register a timing path (names must be unique, memory must exist)."""
        if path.name in self.timing_paths:
            raise NetlistError(f"timing path {path.name!r} already exists")
        if path.memory_group is not None and path.memory_group not in self.memory_groups:
            raise NetlistError(
                f"timing path {path.name!r} references unknown memory group "
                f"{path.memory_group!r}"
            )
        self.timing_paths[path.name] = path
        return path

    # ------------------------------------------------------------------ #
    # Queries (the numbers Table I reports)
    # ------------------------------------------------------------------ #
    def memory_group_list(self, partition: Optional[Partition] = None) -> List[MemoryGroup]:
        """All memory groups, optionally filtered by partition."""
        groups = self.memory_groups.values()
        if partition is not None:
            groups = (group for group in groups if group.partition is partition)
        return sorted(groups, key=lambda group: group.name)

    def logic_block_list(self, partition: Optional[Partition] = None) -> List[LogicBlock]:
        """All logic blocks, optionally filtered by partition."""
        blocks = self.logic_blocks.values()
        if partition is not None:
            blocks = (block for block in blocks if block.partition is partition)
        return sorted(blocks, key=lambda block: block.name)

    def total_macros(self, partition: Optional[Partition] = None) -> int:
        """Number of physical SRAM macro instances."""
        return sum(group.num_macros for group in self.memory_group_list(partition))

    def pipeline_ff(self) -> int:
        """Flip-flops added by on-demand pipeline insertion."""
        return sum(
            path.pipeline_stages * path.width_bits for path in self.timing_paths.values()
        )

    def mux_gates(self) -> int:
        """Gate equivalents added by memory-division output multiplexers."""
        total = 0
        for group in self.memory_groups.values():
            if group.mux_levels:
                # A mux level multiplexes the full read word, one 2:1 mux bit
                # per data bit per level, plus a handful of select decode gates.
                total += group.mux_levels * (group.macro.bits + 4)
        return total

    def total_ff(self, partition: Optional[Partition] = None) -> int:
        """Total flip-flop count, including pipeline registers."""
        base = sum(block.num_ff for block in self.logic_block_list(partition))
        pipeline = sum(
            path.pipeline_stages * path.width_bits
            for path in self.timing_paths.values()
            if partition is None or path.partition is partition
        )
        return base + pipeline

    def total_gates(self, partition: Optional[Partition] = None) -> int:
        """Total combinational gate-equivalent count, including split muxes."""
        base = sum(block.num_gates for block in self.logic_block_list(partition))
        muxes = 0
        for group in self.memory_groups.values():
            if partition is not None and group.partition is not partition:
                continue
            if group.mux_levels:
                muxes += group.mux_levels * (group.macro.bits + 4)
        return base + muxes

    def paths_reading(self, group_name: str) -> List[TimingPath]:
        """Timing paths whose source is the given memory group."""
        return [
            path
            for path in self.timing_paths.values()
            if path.memory_group == group_name
        ]

    def clone(self) -> "Netlist":
        """Deep copy (transforms mutate netlists; flows keep the original)."""
        duplicate = Netlist(self.name, num_cus=self.num_cus)
        for group in self.memory_groups.values():
            duplicate.add_memory_group(
                MemoryGroup(
                    name=group.name,
                    partition=group.partition,
                    role=group.role,
                    macro=group.macro,
                    num_macros=group.num_macros,
                    mux_levels=group.mux_levels,
                    instance_of=group.instance_of,
                )
            )
        for block in self.logic_blocks.values():
            duplicate.add_logic_block(
                LogicBlock(
                    name=block.name,
                    partition=block.partition,
                    num_ff=block.num_ff,
                    num_gates=block.num_gates,
                    description=block.description,
                )
            )
        for path in self.timing_paths.values():
            duplicate.add_timing_path(
                TimingPath(
                    name=path.name,
                    partition=path.partition,
                    logic_levels=path.logic_levels,
                    memory_group=path.memory_group,
                    mux_levels=path.mux_levels,
                    width_bits=path.width_bits,
                    pipeline_stages=path.pipeline_stages,
                    crosses_partitions=path.crosses_partitions,
                    wire_delay_ns=path.wire_delay_ns,
                    pipelinable=path.pipelinable,
                )
            )
        return duplicate

    def summary(self) -> str:
        """One-line summary used by reports and examples."""
        return (
            f"{self.name}: {self.num_cus} CU(s), {self.total_macros()} macros, "
            f"{self.total_ff()} FFs, {self.total_gates()} gates, "
            f"{len(self.timing_paths)} timing paths"
        )
