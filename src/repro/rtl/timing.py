"""Static timing analysis over the netlist's named paths.

A path's combinational delay is the sum of

* the access delay of the SRAM macro it reads (if any), taken from the
  technology's memory-compiler model,
* one 2:1-mux level per memory-division level of that group,
* its own structural mux levels and gate levels, and
* the wire delay annotated by the physical stage (zero after logic synthesis).

Pipeline stages divide the *downstream logic* into equal segments; the macro
access cannot be split (it is a hard macro), so the first segment always
carries the full macro + division-mux delay.  A path meets timing at a given
frequency when its worst segment fits the technology's timing budget
(period minus register overhead and clock uncertainty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import TimingError
from repro.rtl.netlist import Netlist, TimingPath
from repro.tech.technology import Technology


@dataclass(frozen=True)
class PathTiming:
    """Timing result of one path."""

    name: str
    partition: str
    macro_delay_ns: float
    logic_delay_ns: float
    wire_delay_ns: float
    pipeline_stages: int
    worst_segment_ns: float
    slack_ns: float

    @property
    def total_combinational_ns(self) -> float:
        """Unpipelined end-to-end combinational delay."""
        return self.macro_delay_ns + self.logic_delay_ns + self.wire_delay_ns

    @property
    def met(self) -> bool:
        """Whether the path meets the analyzed constraint."""
        return self.slack_ns >= -1e-9


@dataclass
class TimingReport:
    """Result of analyzing a whole netlist at one frequency."""

    design: str
    frequency_mhz: float
    budget_ns: float
    paths: List[PathTiming] = field(default_factory=list)

    @property
    def critical_path(self) -> PathTiming:
        """The path with the smallest slack."""
        if not self.paths:
            raise TimingError("timing report has no paths")
        return min(self.paths, key=lambda path: path.slack_ns)

    @property
    def wns_ns(self) -> float:
        """Worst negative slack (positive when all paths meet timing)."""
        return self.critical_path.slack_ns

    @property
    def met(self) -> bool:
        """Whether every path meets timing."""
        return self.wns_ns >= -1e-9

    def violations(self) -> List[PathTiming]:
        """All paths that fail the constraint, worst first."""
        failing = [path for path in self.paths if not path.met]
        return sorted(failing, key=lambda path: path.slack_ns)

    def summary(self) -> str:
        """Human-readable one-liner for logs and reports."""
        status = "MET" if self.met else f"{len(self.violations())} violations"
        return (
            f"{self.design} @ {self.frequency_mhz:.0f} MHz: WNS {self.wns_ns:+.3f} ns "
            f"({status}); critical path {self.critical_path.name}"
        )


def path_segment_delays(path: TimingPath, netlist: Netlist, tech: Technology) -> List[float]:
    """Per-stage combinational delays of one (possibly pipelined) path."""
    stdcells = tech.stdcells
    macro_delay = 0.0
    division_mux_levels = 0
    if path.memory_group is not None:
        group = netlist.memory_groups[path.memory_group]
        macro_delay = tech.sram.access_delay_ns(group.macro)
        division_mux_levels = group.mux_levels
    logic_delay = stdcells.path_delay(path.logic_levels, path.mux_levels)
    front_mux_delay = stdcells.path_delay(0, division_mux_levels)
    wire_delay = path.wire_delay_ns

    stages = path.pipeline_stages + 1
    if stages == 1:
        return [macro_delay + front_mux_delay + logic_delay + wire_delay]
    # The macro access and its division mux stay in the first stage; the
    # downstream logic and wire delay are spread evenly over all stages.
    per_stage_logic = (logic_delay + wire_delay) / stages
    segments = [macro_delay + front_mux_delay + per_stage_logic]
    segments.extend([per_stage_logic] * (stages - 1))
    return segments


def analyze_timing(netlist: Netlist, tech: Technology, frequency_mhz: float) -> TimingReport:
    """Run STA on every path of ``netlist`` at ``frequency_mhz``."""
    budget = tech.timing_budget_ns(frequency_mhz)
    report = TimingReport(netlist.name, frequency_mhz, budget)
    for path in netlist.timing_paths.values():
        segments = path_segment_delays(path, netlist, tech)
        worst = max(segments)
        macro_delay = 0.0
        if path.memory_group is not None:
            macro_delay = tech.sram.access_delay_ns(netlist.memory_groups[path.memory_group].macro)
        logic_delay = sum(segments) - macro_delay - path.wire_delay_ns
        report.paths.append(
            PathTiming(
                name=path.name,
                partition=path.partition.value,
                macro_delay_ns=macro_delay,
                logic_delay_ns=logic_delay,
                wire_delay_ns=path.wire_delay_ns,
                pipeline_stages=path.pipeline_stages,
                worst_segment_ns=worst,
                slack_ns=budget - worst,
            )
        )
    return report


def max_frequency_mhz(netlist: Netlist, tech: Technology) -> float:
    """Highest frequency at which every path of ``netlist`` meets timing."""
    worst_segment = 0.0
    for path in netlist.timing_paths.values():
        segments = path_segment_delays(path, netlist, tech)
        worst_segment = max(worst_segment, max(segments))
    if worst_segment <= 0:
        raise TimingError("netlist has no combinational delay to constrain")
    overhead = tech.stdcells.register_to_register_overhead() + tech.clock_uncertainty_ns
    return 1.0e3 / (worst_segment + overhead)
