"""Hardware intermediate representation of a G-GPU instance.

The real GPUPlanner manipulates the FGPU VHDL: it replaces inferred memories
with instantiated SRAM macros, splits macros that sit on the critical path,
and inserts pipeline registers on demand.  This package is the Python
equivalent at the granularity the paper's results are reported at:

* :mod:`repro.rtl.netlist` -- the IR: partitions, logical *memory groups*
  (each implemented by one or more SRAM macros), logic blocks (FF and
  gate-equivalent counts), and named timing paths.
* :mod:`repro.rtl.generator` -- builds the G-GPU netlist for a given
  :class:`~repro.arch.config.GGPUConfig` (the structural inventory of a CU,
  the global memory controller, and the top level).
* :mod:`repro.rtl.transforms` -- the two optimization moves GPUPlanner
  applies: memory division and on-demand pipeline insertion.
* :mod:`repro.rtl.timing` -- static timing analysis over the netlist's paths
  against a :class:`~repro.tech.technology.Technology`.
"""

from repro.rtl.netlist import (
    LogicBlock,
    MemoryGroup,
    Netlist,
    Partition,
    TimingPath,
)
from repro.rtl.generator import generate_ggpu_netlist, riscv_reference_netlist
from repro.rtl.transforms import insert_pipeline, split_memory_group
from repro.rtl.timing import PathTiming, TimingReport, analyze_timing, max_frequency_mhz

__all__ = [
    "LogicBlock",
    "MemoryGroup",
    "Netlist",
    "Partition",
    "TimingPath",
    "generate_ggpu_netlist",
    "riscv_reference_netlist",
    "insert_pipeline",
    "split_memory_group",
    "PathTiming",
    "TimingReport",
    "analyze_timing",
    "max_frequency_mhz",
]
