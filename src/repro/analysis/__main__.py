"""Command-line front end: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis kernel.cl          # lint a source file
    python -m repro.analysis --kernel dot       # one suite kernel by name
    python -m repro.analysis --suite            # every CL source + every
                                                # hand-built G-GPU kernel
    python -m repro.analysis --suite --output report.txt

Exit status: 0 when no finding reaches the ``--fail-on`` threshold (default
``error``), 1 when one does, 2 on usage or compilation failures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Tuple

from repro.analysis.clcheck import check_program
from repro.analysis.findings import CHECKS, AnalysisReport, Severity
from repro.analysis.isalint import lint_kernel
from repro.errors import ReproError

_THRESHOLDS = {"error": Severity.ERROR, "warning": Severity.WARNING}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static kernel verifier: CL-level checks + G-GPU ISA lint.",
    )
    parser.add_argument("paths", nargs="*", help="OpenCL-C source files to check")
    parser.add_argument(
        "--kernel",
        action="append",
        default=[],
        metavar="NAME",
        help="check a suite kernel by registry name (repeatable)",
    )
    parser.add_argument(
        "--suite",
        action="store_true",
        help="check every shipped CL source and every hand-built G-GPU kernel",
    )
    parser.add_argument(
        "--no-isa",
        action="store_true",
        help="skip the ISA lint of compiled/hand-built kernels",
    )
    parser.add_argument(
        "--output", metavar="FILE", help="also write the findings report to FILE"
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "never"),
        default="error",
        help="lowest severity that makes the exit status non-zero (default: error)",
    )
    parser.add_argument(
        "--list-checks", action="store_true", help="print the check catalogue and exit"
    )
    return parser


def _check_cl_text(source: str, label: str, with_isa: bool) -> Tuple[AnalysisReport, List[str]]:
    """Level-1 checks plus ISA lint of each kernel's compiled form."""
    from repro.cl.compiler import compile_source

    lines: List[str] = []
    report = AnalysisReport()
    program = compile_source(source)
    report.extend(check_program(program))
    if with_isa:
        for name in program.kernel_names:
            report.extend(lint_kernel(program.to_ggpu_kernel(name)))
    errors, warnings, infos = report.counts
    lines.append(f"== {label}: {errors} error(s), {warnings} warning(s), {infos} info(s)")
    lines.extend(finding.render() for finding in report.findings)
    return report, lines


def _check_hand_built(name: str) -> Tuple[AnalysisReport, List[str]]:
    from repro.kernels.library import get_kernel_spec

    report = lint_kernel(get_kernel_spec(name).build())
    errors, warnings, infos = report.counts
    lines = [
        f"== {name} (hand-built G-GPU): {errors} error(s), "
        f"{warnings} warning(s), {infos} info(s)"
    ]
    lines.extend(finding.render() for finding in report.findings)
    return report, lines


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    options = parser.parse_args(argv)

    if options.list_checks:
        for check, description in sorted(CHECKS.items()):
            print(f"{check}: {description}")
        return 0

    if not options.paths and not options.kernel and not options.suite:
        parser.print_usage(sys.stderr)
        print("error: nothing to check (give paths, --kernel, or --suite)", file=sys.stderr)
        return 2

    from repro.cl.sources import BENCHMARK_CL_SOURCES, EXTRA_CL_SOURCES, get_benchmark_source
    from repro.kernels.library import all_kernel_names

    total = AnalysisReport()
    lines: List[str] = []
    with_isa = not options.no_isa

    try:
        for path in options.paths:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            report, chunk = _check_cl_text(source, path, with_isa)
            total.extend(report)
            lines.extend(chunk)

        names = list(options.kernel)
        if options.suite:
            names.extend(
                name
                for name in list(BENCHMARK_CL_SOURCES) + list(EXTRA_CL_SOURCES)
                if name not in names
            )
        for name in names:
            report, chunk = _check_cl_text(get_benchmark_source(name), f"{name} (CL)", with_isa)
            total.extend(report)
            lines.extend(chunk)

        if options.suite and with_isa:
            for name in all_kernel_names():
                report, chunk = _check_hand_built(name)
                total.extend(report)
                lines.extend(chunk)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    errors, warnings, infos = total.counts
    lines.append(
        f"== total: {errors} error(s), {warnings} warning(s), {infos} info(s)"
    )
    text = "\n".join(lines)
    print(text)
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")

    if options.fail_on == "never":
        return 0
    threshold = _THRESHOLDS[options.fail_on]
    worst = max((finding.severity for finding in total.findings), default=None)
    return 1 if worst is not None and worst >= threshold else 0


if __name__ == "__main__":
    sys.exit(main())
