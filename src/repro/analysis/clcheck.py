"""Level-1 static checks over the analyzed CL AST.

Three checks run in one abstract-interpretation walk of each kernel body:

* **Barrier divergence** (BAR001-BAR003) — a ``barrier()`` must be reached by
  every lane of the workgroup or by none; the walk tracks whether control is
  lane-divergent (reusing the ``varying`` flags from semantic analysis) and
  rejects barriers under divergent ifs and inside loops with lane-dependent
  trip counts.
* **Races** (RACE001-RACE004) — the body is partitioned into *barrier
  intervals* (loop entry/exit and branch join intervals are merged with a
  union-find, so cross-iteration sharing is modelled); every ``__local`` and
  ``__global`` array access is summarized as an affine form over
  ``lid``/``gid``/``wgid`` and opaque atoms, and pairs of accesses in the
  same interval are tested for distinct-lane overlap by subtracting their
  forms.  Unprovable patterns degrade to warnings, never to silence.
* **Bounds** (BND001-BND003) — a value-range walk of index expressions:
  ``__local`` arrays have statically known sizes (provable overflows are
  errors), ``__global`` buffers have unknown length (unprovable indexing is
  reported as info, provably negative indices as errors).

The guard machinery gives one important precision win without sacrificing
soundness: accesses inside ``if (lid == <loop-stable uniform expr>)`` are
known to be executed by (at most) one lane per workgroup, which is what
proves the classic "lane 0 publishes the partial" idiom race-free.

Kernels that query dimension 1 of a work-item builtin are analyzed in
**rank-2 mode**: lanes then vary along two axes, so flat-lane injectivity
(``lane_coeff != 0``) and single-dimension equality guards stop being
single-lane proofs.  In that mode the checker keeps exact judgments only for
lane-uniform forms (which stay provably racy when written by all lanes) and
degrades everything it can no longer decide to RACE003/RACE004 warnings —
never to silence, so the dynamic race oracle's soundness cross-check still
holds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import lattice
from repro.analysis.findings import AnalysisReport, Severity
from repro.analysis.lattice import LANE_MAX, Affine, Interval
from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    DeclStmt,
    Expr,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    KernelDecl,
    LocalDeclStmt,
    ReturnStmt,
    SourceSpan,
    Stmt,
    TranslationUnit,
    UnaryOp,
    VarRef,
    WhileStmt,
)

#: Builtin call results: (affine form, value range); atoms are launch-uniform.
#: Keyed by (name, dimension); dimension 0 covers every rank-1 kernel,
#: dimension 1 appears only in kernels written for rank-2 NDRanges.
_BUILTIN_VALUES = {
    "get_local_id": (Affine(lid=1), lattice.LID_RANGE),
    "get_global_id": (Affine(gid=1), lattice.NONNEG),
    "get_group_id": (Affine(wgid=1), lattice.NONNEG),
    "get_local_size": (Affine.atom("u:get_local_size"), (1, LANE_MAX)),
    "get_global_size": (Affine.atom("u:get_global_size"), lattice.SIZE_RANGE),
    "get_num_groups": (Affine.atom("u:get_num_groups"), lattice.SIZE_RANGE),
}

_BUILTIN_VALUES_DIM1 = {
    "get_local_id": (Affine(lid1=1), lattice.LID_RANGE),
    "get_global_id": (Affine(gid1=1), lattice.NONNEG),
    "get_group_id": (Affine(wgid1=1), lattice.NONNEG),
    "get_local_size": (Affine.atom("u:get_local_size.1"), (1, LANE_MAX)),
    "get_global_size": (Affine.atom("u:get_global_size.1"), lattice.SIZE_RANGE),
    "get_num_groups": (Affine.atom("u:get_num_groups.1"), lattice.SIZE_RANGE),
}


def _builtin_dim(expr: Call) -> int:
    """Literal dimension argument of a work-item builtin (0 when absent)."""
    if expr.args and isinstance(expr.args[0], IntLiteral):
        return expr.args[0].value
    return 0


def _expr_uses_dim1(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Call):
        if expr.name in _BUILTIN_VALUES and _builtin_dim(expr) >= 1:
            return True
        return any(_expr_uses_dim1(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return _expr_uses_dim1(expr.left) or _expr_uses_dim1(expr.right)
    if isinstance(expr, UnaryOp):
        return _expr_uses_dim1(expr.operand)
    if isinstance(expr, Index):
        return _expr_uses_dim1(expr.index)
    return False


def _stmt_uses_dim1(statement: Stmt) -> bool:
    if isinstance(statement, DeclStmt):
        return any(_expr_uses_dim1(init) for init in statement.inits)
    if isinstance(statement, AssignStmt):
        return _expr_uses_dim1(statement.target) or _expr_uses_dim1(statement.value)
    if isinstance(statement, IfStmt):
        return (
            _expr_uses_dim1(statement.condition)
            or _uses_dim1(statement.then_body)
            or _uses_dim1(statement.else_body)
        )
    if isinstance(statement, WhileStmt):
        return _expr_uses_dim1(statement.condition) or _uses_dim1(statement.body)
    if isinstance(statement, ForStmt):
        return (
            (statement.init is not None and _stmt_uses_dim1(statement.init))
            or _expr_uses_dim1(statement.condition)
            or (statement.step is not None and _stmt_uses_dim1(statement.step))
            or _uses_dim1(statement.body)
        )
    return False


def _uses_dim1(statements: Sequence[Stmt]) -> bool:
    """Whether any statement queries dimension 1 of a work-item builtin."""
    return any(_stmt_uses_dim1(statement) for statement in statements)


@dataclass(frozen=True)
class _Guard:
    """Which lanes reach a program point, as a stack of condition tokens.

    Tokens identify if-statement visits; ``singles`` are conditions of the
    form ``<lane-injective affine> == <loop-stable uniform>`` (at most one
    lane of the workgroup passes), ``divergent`` are all other varying
    conditions.  Two accesses with identical guards and a ``singles`` entry
    are executed by the *same* single lane.
    """

    singles: Tuple[int, ...] = ()
    divergent: Tuple[int, ...] = ()

    @property
    def all_lanes(self) -> bool:
        return not self.singles and not self.divergent

    @property
    def single_lane(self) -> bool:
        return bool(self.singles)

    def with_single(self, token: int) -> "_Guard":
        return replace(self, singles=self.singles + (token,))

    def with_divergent(self, token: int) -> "_Guard":
        return replace(self, divergent=self.divergent + (token,))


@dataclass
class _Access:
    """One syntactic array access with its abstract summary."""

    array: str
    space: str  # "local" | "global"
    kind: str  # "r" | "w"
    interval: int
    affine: Optional[Affine]
    guard: _Guard
    span: SourceSpan

    @property
    def is_write(self) -> bool:
        return self.kind == "w"


_Value = Tuple[Optional[Affine], Interval]


class _KernelChecker:
    """Single-pass abstract interpreter for one analyzed kernel."""

    def __init__(self, kernel: KernelDecl, report: AnalysisReport) -> None:
        self.kernel = kernel
        self.report = report
        self._env: Dict[str, _Value] = {}
        self._accesses: List[_Access] = []
        self._guard = _Guard()
        self._divergent = False
        self._divergent_loop = False
        self._current = 0
        self._next_interval = 1
        self._parent: Dict[int, int] = {0: 0}
        self._atom_serial = 0
        self._token_serial = 0
        self._recording = True
        #: Kernels that query dimension 1 are written for rank-2 NDRanges;
        #: there the flat-lane injectivity arguments (lane_coeff, single-lane
        #: equality guards) are unsound, so provable-race machinery degrades
        #: to warnings.  Rank-1 kernels are analyzed exactly as before.
        self._rank2 = _uses_dim1(kernel.body)
        #: Atom names havoc'd inside each currently open loop (stack).
        self._loop_atoms: List[Set[str]] = []
        self._reported: Set[Tuple[object, ...]] = set()

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def run(self) -> None:
        for param in self.kernel.params:
            if not param.is_pointer:
                self._env[param.name] = (Affine.atom(f"u:{param.name}"), lattice.FULL)
        self._walk(self.kernel.body)
        self._check_intra_races()
        self._check_cross_workgroup_races()

    # ------------------------------------------------------------------ #
    # Plumbing
    # ------------------------------------------------------------------ #
    def _emit(
        self,
        check: str,
        severity: Severity,
        message: str,
        span: SourceSpan,
        extra_key: object = None,
    ) -> None:
        key = (check, span.line, span.column, extra_key)
        if key in self._reported:
            return
        self._reported.add(key)
        self.report.add(
            check, severity, message, kernel=self.kernel.name, span=span
        )

    def _find(self, interval_id: int) -> int:
        root = interval_id
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[interval_id] != root:
            self._parent[interval_id], interval_id = root, self._parent[interval_id]
        return root

    def _union(self, a: int, b: int) -> None:
        self._parent[self._find(a)] = self._find(b)

    def _alloc_interval(self) -> int:
        new = self._next_interval
        self._next_interval += 1
        self._parent[new] = new
        return new

    def _fresh_atom(self, name: str) -> str:
        self._atom_serial += 1
        atom = f"w:{name}#{self._atom_serial}"
        for open_loop in self._loop_atoms:
            open_loop.add(atom)
        return atom

    def _havoc(self, name: str, rng: Interval = lattice.FULL) -> None:
        symbol = self.kernel.symbols.get(name)
        if symbol is not None and symbol.varying:
            self._env[name] = (None, rng)
        else:
            self._env[name] = (Affine.atom(self._fresh_atom(name)), rng)

    def _loop_stable(self, form: Optional[Affine]) -> bool:
        """Whether a uniform form's value is fixed across open-loop iterations."""
        if form is None:
            return False
        atoms = {name for name, _ in form.atoms}
        return all(atoms.isdisjoint(havoced) for havoced in self._loop_atoms)

    # ------------------------------------------------------------------ #
    # Expression evaluation
    # ------------------------------------------------------------------ #
    def _eval(self, expr: Optional[Expr]) -> _Value:
        if expr is None:
            return (None, lattice.FULL)
        if isinstance(expr, IntLiteral):
            return (Affine.constant(expr.value), lattice.const_interval(expr.value))
        if isinstance(expr, VarRef):
            if expr.name in self._env:
                return self._env[expr.name]
            return (None, lattice.FULL)
        if isinstance(expr, UnaryOp):
            form, rng = self._eval(expr.operand)
            if expr.op == "-":
                return (form.scale(-1) if form is not None else None, lattice.neg_iv(rng))
            if expr.op == "!":
                return (None, (0, 1))
            return (None, lattice.FULL)
        if isinstance(expr, BinaryOp):
            return self._eval_binop(expr.op, self._eval(expr.left), self._eval(expr.right))
        if isinstance(expr, Index):
            self._record_access(expr, "r")
            return (None, lattice.FULL)
        if isinstance(expr, Call):
            if expr.name in _BUILTIN_VALUES:
                if _builtin_dim(expr) == 1:
                    return _BUILTIN_VALUES_DIM1[expr.name]
                return _BUILTIN_VALUES[expr.name]
            values = [self._eval(arg) for arg in expr.args]
            if expr.name in ("min", "max") and len(values) == 2:
                (_, ra), (_, rb) = values
                pick = min if expr.name == "min" else max
                return (None, (pick(ra[0], rb[0]), pick(ra[1], rb[1])))
            return (None, lattice.FULL)
        return (None, lattice.FULL)

    def _eval_binop(self, op: str, left: _Value, right: _Value) -> _Value:
        lform, lrng = left
        rform, rrng = right
        if op == "+":
            form = lform.add(rform) if lform is not None and rform is not None else None
            return (form, lattice.add_iv(lrng, rrng))
        if op == "-":
            form = lform.sub(rform) if lform is not None and rform is not None else None
            return (form, lattice.sub_iv(lrng, rrng))
        if op == "*":
            form = None
            if lform is not None and rform is not None:
                if rform.is_constant:
                    form = lform.scale(rform.const)
                elif lform.is_constant:
                    form = rform.scale(lform.const)
            return (form, lattice.mul_iv(lrng, rrng))
        if op == "<<":
            form = None
            if lform is not None and rform is not None and rform.is_constant:
                if 0 <= rform.const <= 31:
                    form = lform.scale(1 << rform.const)
            return (form, lattice.shl_iv(lrng, rrng))
        if op == ">>":
            return (None, lattice.shr_iv(lrng, rrng))
        if op == "%":
            return (None, lattice.mod_iv(lrng, rrng))
        if op == "&":
            return (None, lattice.bitand_iv(lrng, rrng))
        if op == "/":
            if rrng[0] > 0 and lrng[0] >= 0:
                return (None, (lrng[0] // rrng[1], lrng[1] // rrng[0]))
            return (None, lattice.FULL)
        if op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return (None, (0, 1))
        # |, ^ and anything else: value unknown.
        return (None, lattice.FULL)

    def _silent_eval(self, expr: Optional[Expr]) -> _Value:
        """Evaluate without recording array accesses (re-evaluation)."""
        recording, self._recording = self._recording, False
        try:
            return self._eval(expr)
        finally:
            self._recording = recording

    # ------------------------------------------------------------------ #
    # Access recording and bounds checking
    # ------------------------------------------------------------------ #
    def _record_access(self, access: Index, kind: str) -> None:
        form, rng = self._eval(access.index)
        if not self._recording:
            return
        symbol = self.kernel.symbols.get(access.base)
        if symbol is None:
            return
        space = "local" if symbol.is_local_array else "global"
        self._check_bounds(access, symbol.array_words, space, rng)
        self._accesses.append(
            _Access(
                array=access.base,
                space=space,
                kind=kind,
                interval=self._current,
                affine=form,
                guard=self._guard,
                span=access.span,
            )
        )

    def _check_bounds(self, access: Index, size: int, space: str, rng: Interval) -> None:
        lo, hi = rng
        if space == "local":
            if hi < 0 or lo >= size:
                self._emit(
                    "BND001",
                    Severity.ERROR,
                    f"index of __local {access.base!r} is provably out of bounds: "
                    f"range [{lo}, {hi}] vs size {size}",
                    access.span,
                )
            elif lo < 0 or hi >= size:
                self._emit(
                    "BND003",
                    Severity.WARNING,
                    f"cannot prove index of __local {access.base!r} stays within "
                    f"[0, {size}): inferred range [{lo}, {hi}]",
                    access.span,
                )
            return
        if hi < 0:
            self._emit(
                "BND001",
                Severity.ERROR,
                f"index of __global {access.base!r} is provably negative "
                f"(range [{lo}, {hi}])",
                access.span,
            )
            return
        detail = "may be negative and " if lo < 0 else ""
        self._emit(
            "BND002",
            Severity.INFO,
            f"index of __global {access.base!r} {detail}cannot be bounds-checked "
            "statically (buffer length is a runtime property)",
            access.span,
        )

    # ------------------------------------------------------------------ #
    # Statement walk
    # ------------------------------------------------------------------ #
    def _walk(self, statements: Sequence[Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, DeclStmt):
                for name, init in zip(statement.names, statement.inits, strict=True):
                    if init is None:
                        self._havoc(name)
                    else:
                        self._assign_value(name, self._eval(init))
            elif isinstance(statement, AssignStmt):
                self._walk_assign(statement)
            elif isinstance(statement, IfStmt):
                self._walk_if(statement)
            elif isinstance(statement, WhileStmt):
                self._walk_loop(statement, None, statement.condition, None, statement.body)
            elif isinstance(statement, ForStmt):
                self._walk_loop(
                    statement,
                    statement.init,
                    statement.condition,
                    statement.step,
                    statement.body,
                )
            elif isinstance(statement, BarrierStmt):
                self._walk_barrier(statement)
            elif isinstance(statement, (LocalDeclStmt, ReturnStmt)):
                continue

    def _assign_value(self, name: str, value: _Value) -> None:
        form, rng = value
        if form is None:
            self._havoc(name, rng)
        else:
            self._env[name] = (form, rng)

    def _walk_assign(self, statement: AssignStmt) -> None:
        target = statement.target
        value = self._eval(statement.value)
        if isinstance(target, VarRef):
            if statement.op != "=":
                current = self._env.get(target.name, (None, lattice.FULL))
                value = self._eval_binop(statement.op.rstrip("="), current, value)
            self._assign_value(target.name, value)
        elif isinstance(target, Index):
            if statement.op != "=":
                self._record_access(target, "r")
            self._record_access(target, "w")

    def _walk_barrier(self, statement: BarrierStmt) -> None:
        if self._divergent_loop:
            self._emit(
                "BAR002",
                Severity.ERROR,
                "barrier() inside a loop whose trip count is lane-dependent: "
                "lanes would execute different numbers of barriers",
                statement.span,
            )
        elif self._divergent:
            self._emit(
                "BAR001",
                Severity.ERROR,
                "barrier() under lane-divergent control flow: "
                "not all lanes of the workgroup reach it",
                statement.span,
            )
        self._current = self._alloc_interval()

    def _walk_if(self, statement: IfStmt) -> None:
        condition = statement.condition
        self._eval(condition)
        varying = bool(condition is not None and condition.varying)
        self._token_serial += 1
        token = self._token_serial

        guard0, div0, start = self._guard, self._divergent, self._current
        env0 = dict(self._env)

        if varying:
            if self._is_single_lane(condition):
                self._guard = guard0.with_single(token)
            else:
                self._guard = guard0.with_divergent(token)
            self._divergent = True
        self._walk(statement.then_body)
        then_end, env_then = self._current, self._env

        self._env = dict(env0)
        self._current = start
        if varying:
            self._guard = guard0.with_divergent(-token)
        self._walk(statement.else_body)
        else_end, env_else = self._current, self._env

        self._guard, self._divergent = guard0, div0
        self._env = self._join_envs(env_then, env_else)
        if then_end != start or else_end != start:
            joined = self._alloc_interval()
            self._union(then_end, joined)
            self._union(else_end, joined)
            self._current = joined

        if not varying:
            then_count = _count_barriers(statement.then_body)
            else_count = _count_barriers(statement.else_body)
            if then_count != else_count:
                self._emit(
                    "BAR003",
                    Severity.WARNING,
                    f"branches of this uniform if execute different numbers of "
                    f"barriers ({then_count} vs {else_count}); the condition must "
                    "be workgroup-uniform for this to be safe",
                    statement.span,
                )

    def _join_envs(
        self, env_a: Dict[str, _Value], env_b: Dict[str, _Value]
    ) -> Dict[str, _Value]:
        joined: Dict[str, _Value] = {}
        for name in set(env_a) | set(env_b):
            form_a, rng_a = env_a.get(name, (None, lattice.FULL))
            form_b, rng_b = env_b.get(name, (None, lattice.FULL))
            rng = lattice.join_iv(rng_a, rng_b)
            if form_a is not None and form_a == form_b:
                joined[name] = (form_a, rng)
            else:
                symbol = self.kernel.symbols.get(name)
                if symbol is not None and symbol.varying:
                    joined[name] = (None, rng)
                else:
                    joined[name] = (Affine.atom(self._fresh_atom(name)), rng)
        return joined

    def _is_single_lane(self, condition: Optional[Expr]) -> bool:
        """``<lane-injective> == <loop-stable uniform>``: at most one lane."""
        if self._rank2:
            # Pinning one dimension's id selects a row/column of lanes, not a
            # single lane; without the workgroup shape no equality over a
            # single dimension is a single-lane proof.
            return False
        if not isinstance(condition, BinaryOp) or condition.op != "==":
            return False
        left, right = condition.left, condition.right
        if left is None or right is None or left.varying == right.varying:
            return False
        lane_side, uniform_side = (left, right) if left.varying else (right, left)
        lane_form, _ = self._silent_eval(lane_side)
        uniform_form, _ = self._silent_eval(uniform_side)
        if lane_form is None or lane_form.lane_coeff == 0:
            return False
        return self._loop_stable(uniform_form)

    def _walk_loop(
        self,
        statement: Stmt,
        init: Optional[Stmt],
        condition: Optional[Expr],
        step: Optional[Stmt],
        body: List[Stmt],
    ) -> None:
        if init is not None:
            self._walk([init])
        assigned = _assigned_names(body)
        if step is not None:
            assigned |= _assigned_names([step])

        counter_range = self._counter_range(init, condition, step)
        self._loop_atoms.append(set())
        for name in sorted(assigned):
            if counter_range is not None and name == counter_range[0]:
                self._havoc(name, counter_range[1])
            else:
                self._havoc(name)

        self._eval(condition)
        varying = bool(condition is not None and condition.varying)
        self._token_serial += 1
        token = self._token_serial

        guard0, div0, dloop0, start = (
            self._guard,
            self._divergent,
            self._divergent_loop,
            self._current,
        )
        if varying:
            self._guard = guard0.with_divergent(token)
            self._divergent = True
            self._divergent_loop = True
        self._walk(body)
        if step is not None:
            self._walk([step])
        end = self._current
        self._guard, self._divergent, self._divergent_loop = guard0, div0, dloop0
        if end != start:
            # Barriers inside the body: iteration k's tail interval is
            # adjacent to iteration k+1's head interval, so merge them.
            self._union(start, end)
            self._current = end
        self._loop_atoms.pop()
        for name in sorted(assigned):
            self._havoc(name)

    def _counter_range(
        self,
        init: Optional[Stmt],
        condition: Optional[Expr],
        step: Optional[Stmt],
    ) -> Optional[Tuple[str, Interval]]:
        """``for (x = lo; x < bound; x += positive)`` gives x a range."""
        name: Optional[str] = None
        init_rng: Optional[Interval] = None
        if isinstance(init, DeclStmt) and len(init.names) == 1 and init.inits[0] is not None:
            name = init.names[0]
            init_rng = self._silent_eval(init.inits[0])[1]
        elif isinstance(init, AssignStmt) and isinstance(init.target, VarRef):
            if init.op == "=":
                name = init.target.name
                init_rng = self._silent_eval(init.value)[1]
        if name is None or init_rng is None:
            return None
        if not self._step_increases(name, step):
            return None
        if not isinstance(condition, BinaryOp) or condition.op not in ("<", "<="):
            return None
        if not (isinstance(condition.left, VarRef) and condition.left.name == name):
            return None
        bound_hi = self._silent_eval(condition.right)[1][1]
        if condition.op == "<":
            bound_hi -= 1
        return (name, lattice.interval(init_rng[0], max(init_rng[0], bound_hi)))

    @staticmethod
    def _step_increases(name: str, step: Optional[Stmt]) -> bool:
        if not isinstance(step, AssignStmt) or not isinstance(step.target, VarRef):
            return False
        if step.target.name != name:
            return False
        if step.op == "+=":
            return isinstance(step.value, IntLiteral) and step.value.value > 0
        if step.op == "=" and isinstance(step.value, BinaryOp) and step.value.op == "+":
            left, right = step.value.left, step.value.right
            for var, lit in ((left, right), (right, left)):
                if (
                    isinstance(var, VarRef)
                    and var.name == name
                    and isinstance(lit, IntLiteral)
                    and lit.value > 0
                ):
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Race analysis
    # ------------------------------------------------------------------ #
    def _check_intra_races(self) -> None:
        groups: Dict[Tuple[str, int], List[_Access]] = {}
        for access in self._accesses:
            groups.setdefault((access.array, self._find(access.interval)), []).append(access)
        for (_, _), group in sorted(groups.items()):
            if not any(access.is_write for access in group):
                continue
            for i, first in enumerate(group):
                for second in group[i:]:
                    self._judge_intra_pair(first, second)

    def _judge_intra_pair(self, a: _Access, b: _Access) -> None:
        if not (a.is_write or b.is_write):
            return
        if a is b:
            self._judge_self(a)
            return
        both_writes = a.is_write and b.is_write
        if a.affine is None or b.affine is None:
            self._report_race(a, b, Severity.WARNING, "RACE003", both_writes)
            return
        if a.guard == b.guard and a.guard.single_lane:
            return  # the same single lane performs both accesses
        if self._rank2 and not (self._lane_uniform(a.affine) and self._lane_uniform(b.affine)):
            # Rank-2 mode: work-items vary in two lane dimensions, so the
            # one-variable divisibility argument below neither proves nor
            # refutes a collision.  Degrade to a warning, never to silence.
            self._report_race(a, b, Severity.WARNING, "RACE003", both_writes)
            return
        delta = a.affine.sub(b.affine)
        if delta.atoms or delta.wgid != 0:
            self._report_race(a, b, Severity.WARNING, "RACE003", both_writes)
            return
        coeff_a, coeff_b = a.affine.lane_coeff, b.affine.lane_coeff
        offset = delta.const
        proven = a.guard.all_lanes and b.guard.all_lanes
        if coeff_a == coeff_b:
            if coeff_a == 0:
                if offset == 0:
                    self._report_proven(a, b, proven, both_writes)
                return
            if offset % coeff_a != 0:
                return
            lane_delta = -offset // coeff_a
            if lane_delta == 0 or abs(lane_delta) >= LANE_MAX:
                return
            self._report_proven(a, b, proven, both_writes)
            return
        if self._distinct_lane_solution(coeff_a, coeff_b, offset):
            self._report_proven(a, b, proven, both_writes)

    @staticmethod
    def _lane_uniform(form: Affine) -> bool:
        """The form's value is identical for every lane of a workgroup."""
        return form.lane_coeff == 0 and form.lid1 + form.gid1 == 0

    @staticmethod
    def _distinct_lane_solution(coeff_a: int, coeff_b: int, offset: int) -> bool:
        """Do distinct lanes i, j exist with a*i + offset == b*j?"""
        for i in range(LANE_MAX):
            value = coeff_a * i + offset
            if coeff_b == 0:
                if value == 0 and LANE_MAX > 1:
                    return True
                continue
            if value % coeff_b == 0:
                j = value // coeff_b
                if 0 <= j < LANE_MAX and j != i:
                    return True
        return False

    def _judge_self(self, access: _Access) -> None:
        if not access.is_write:
            return
        if access.affine is None:
            if access.guard.single_lane:
                return
            self._report_race(access, access, Severity.WARNING, "RACE003", True)
            return
        if self._rank2 and not self._lane_uniform(access.affine):
            # Injectivity over the flat lane set cannot be read off one
            # dimension's coefficient under a rank-2 launch: ``out[gid0]``
            # collides across the dim-1 lanes even though lane_coeff != 0.
            self._report_race(access, access, Severity.WARNING, "RACE003", True)
            return
        if access.affine.lane_coeff != 0 or access.guard.single_lane:
            return
        if access.guard.all_lanes:
            self._report_race(access, access, Severity.ERROR, "RACE001", True)
        else:
            self._report_race(access, access, Severity.WARNING, "RACE003", True)

    def _report_proven(
        self, a: _Access, b: _Access, proven: bool, both_writes: bool
    ) -> None:
        if proven:
            check = "RACE001" if both_writes else "RACE002"
            self._report_race(a, b, Severity.ERROR, check, both_writes)
        else:
            self._report_race(a, b, Severity.WARNING, "RACE003", both_writes)

    def _report_race(
        self,
        a: _Access,
        b: _Access,
        severity: Severity,
        check: str,
        both_writes: bool,
        cross_workgroup: bool = False,
    ) -> None:
        kind = "write/write" if both_writes else "read/write"
        scope = "workgroups" if cross_workgroup else "lanes"
        if a is b:
            what = (
                f"{kind} conflict of {a.space} array {a.array!r} with itself "
                f"across {scope} (index {_describe(a.affine)})"
            )
        else:
            what = (
                f"{kind} conflict on {a.space} array {a.array!r} between "
                f"{a.kind}@{a.span} (index {_describe(a.affine)}) and "
                f"{b.kind}@{b.span} (index {_describe(b.affine)}) across {scope}"
            )
        if severity is Severity.WARNING and check == "RACE003":
            what = "possible race: " + what
        extra = (b.span.line, b.span.column, cross_workgroup)
        self._emit(check, severity, what, a.span, extra_key=extra)

    def _check_cross_workgroup_races(self) -> None:
        groups: Dict[str, List[_Access]] = {}
        for access in self._accesses:
            if access.space == "global":
                groups.setdefault(access.array, []).append(access)
        for _, group in sorted(groups.items()):
            if not any(access.is_write for access in group):
                continue
            for i, first in enumerate(group):
                for second in group[i:]:
                    self._judge_cross_pair(first, second)

    def _judge_cross_pair(self, a: _Access, b: _Access) -> None:
        if not (a.is_write or b.is_write):
            return
        both_writes = a.is_write and b.is_write
        if a.affine is None or b.affine is None:
            # Mirrors the intra-workgroup unknown-pattern warning; the dedupe
            # key keeps this from double-reporting the same span pair.
            self._report_race(a, b, Severity.WARNING, "RACE003", both_writes)
            return
        if self._rank2:
            # Both cross-workgroup proofs below (gid-injectivity, one lane
            # per group keyed by wgid) are single-dimension facts; neither
            # holds over the flat work-item set of a rank-2 launch.
            self._report_race(
                a, b, Severity.WARNING, "RACE004", both_writes, cross_workgroup=True
            )
            return
        if a.affine == b.affine:
            form = a.affine
            if form.launch_uniform_atoms and form.lid == 0 and form.wgid == 0 and form.gid != 0:
                return  # injective in the global id: globally race-free
            if (
                form.launch_uniform_atoms
                and form.lid == 0
                and form.gid == 0
                and form.wgid != 0
                and a.guard == b.guard
                and a.guard.single_lane
            ):
                return  # one lane per workgroup, injective in the workgroup id
            self._report_race(
                a, b, Severity.WARNING, "RACE004", both_writes, cross_workgroup=True
            )
            return
        delta = a.affine.sub(b.affine)
        if not delta.atoms and delta.lid == 0 and delta.gid == 0 and delta.wgid == 0:
            coeffs = [a.affine.lid, a.affine.gid, a.affine.wgid]
            coeffs.extend(coeff for _, coeff in a.affine.atoms)
            stride = math.gcd(*(abs(c) for c in coeffs)) if any(coeffs) else 0
            if stride and delta.const % stride != 0:
                return  # the two access sets live on disjoint residue classes
        self._report_race(
            a, b, Severity.WARNING, "RACE004", both_writes, cross_workgroup=True
        )


def _describe(form: Optional[Affine]) -> str:
    return form.describe() if form is not None else "<non-affine>"


def _count_barriers(statements: Sequence[Stmt]) -> int:
    count = 0
    for statement in statements:
        if isinstance(statement, BarrierStmt):
            count += 1
        elif isinstance(statement, IfStmt):
            count += max(
                _count_barriers(statement.then_body),
                _count_barriers(statement.else_body),
            )
        elif isinstance(statement, (WhileStmt, ForStmt)):
            count += _count_barriers(statement.body)
    return count


def _assigned_names(statements: Sequence[Stmt]) -> Set[str]:
    assigned: Set[str] = set()
    for statement in statements:
        if isinstance(statement, DeclStmt):
            assigned.update(statement.names)
        elif isinstance(statement, AssignStmt):
            if isinstance(statement.target, VarRef):
                assigned.add(statement.target.name)
        elif isinstance(statement, IfStmt):
            assigned |= _assigned_names(statement.then_body)
            assigned |= _assigned_names(statement.else_body)
        elif isinstance(statement, (WhileStmt, ForStmt)):
            if isinstance(statement, ForStmt):
                if statement.init is not None:
                    assigned |= _assigned_names([statement.init])
                if statement.step is not None:
                    assigned |= _assigned_names([statement.step])
            assigned |= _assigned_names(statement.body)
    return assigned


# ----------------------------------------------------------------------- #
# Public entry points
# ----------------------------------------------------------------------- #
def check_kernel(kernel: KernelDecl) -> AnalysisReport:
    """Run all level-1 checks over one analyzed kernel declaration."""
    if not kernel.symbols:
        raise ValueError(
            f"kernel {kernel.name!r} has no symbol table; run cl.semantics.analyze first"
        )
    report = AnalysisReport()
    _KernelChecker(kernel, report).run()
    return report


def check_unit(unit: TranslationUnit) -> AnalysisReport:
    """Check every kernel of an analyzed translation unit."""
    report = AnalysisReport()
    for kernel in unit.kernels:
        report.extend(check_kernel(kernel))
    return report


def check_program(program: object) -> AnalysisReport:
    """Check every kernel of a compiled :class:`~repro.cl.compiler.CLProgram`."""
    report = AnalysisReport()
    for name in program.kernel_names:  # type: ignore[attr-defined]
        report.extend(check_kernel(program.declaration(name)))  # type: ignore[attr-defined]
    return report


def check_source(source: str) -> AnalysisReport:
    """Compile (front end only) and check every kernel in ``source``."""
    from repro.cl.compiler import compile_source

    return check_program(compile_source(source))
