"""Abstract domains of the level-1 checker.

Two small lattices:

* :class:`Affine` — symbolic linear forms ``a*lid + b*gid + c*wgid + const +
  sum(coeff_i * atom_i)`` over the work-item builtins plus opaque *atoms*
  (kernel parameters and havoc'd variables).  ``None`` is the domain's top
  ("not an affine form").  The race detector compares two affine index forms
  by subtracting them, which turns "do two distinct lanes ever touch the same
  slot?" into a small divisibility problem.
* intervals — plain ``(lo, hi)`` integer pairs with saturating arithmetic,
  used by the bounds checker.  ``FULL`` is top.

Atom names are prefixed with their *scope kind*: ``u:`` for launch-uniform
values (scalar kernel parameters, ``get_global_size`` …), ``w:`` for values
that are uniform within a workgroup but may differ across workgroups.  The
distinction matters only to the cross-workgroup race rules: two syntactically
identical forms denote the same address function across workgroups only when
every atom in them is launch-uniform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Largest workgroup any runtime path will schedule (mirrors
#: repro.kernels.dot.MAX_WORKGROUP); lane ids live in [0, LANE_MAX).
LANE_MAX = 256

# ----------------------------------------------------------------------- #
# Affine forms
# ----------------------------------------------------------------------- #


@dataclass(frozen=True)
class Affine:
    """A linear index form; ``None`` (not an instance) is the domain top.

    ``lid``/``gid``/``wgid`` are the dimension-0 work-item ids (the only ids
    of a rank-1 launch); ``lid1``/``gid1``/``wgid1`` are their dimension-1
    counterparts, populated when a kernel queries ``get_*_id(1)`` on a rank-2
    NDRange.
    """

    lid: int = 0
    gid: int = 0
    wgid: int = 0
    const: int = 0
    #: Sorted (atom-name, coefficient) pairs, all coefficients non-zero.
    atoms: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)
    lid1: int = 0
    gid1: int = 0
    wgid1: int = 0

    @staticmethod
    def constant(value: int) -> "Affine":
        return Affine(const=value)

    @staticmethod
    def atom(name: str) -> "Affine":
        return Affine(atoms=((name, 1),))

    @property
    def lane_coeff(self) -> int:
        """Coefficient of the intra-workgroup lane index.

        Within one workgroup ``gid = wgid*wgsize + lid``, so both ``lid`` and
        ``gid`` terms advance with the lane at the same rate; everything else
        is constant across the lanes of the group.
        """
        return self.lid + self.gid

    @property
    def is_constant(self) -> bool:
        return (
            self.lid == 0
            and self.gid == 0
            and self.wgid == 0
            and self.dim1_free
            and not self.atoms
        )

    @property
    def dim1_free(self) -> bool:
        """True when the form has no dimension-1 id terms (every rank-1 form)."""
        return self.lid1 == 0 and self.gid1 == 0 and self.wgid1 == 0

    @property
    def launch_uniform_atoms(self) -> bool:
        """True when every atom denotes a launch-uniform value."""
        return all(name.startswith("u:") for name, _ in self.atoms)

    def _combine(self, other: "Affine", sign: int) -> "Affine":
        merged = dict(self.atoms)
        for name, coeff in other.atoms:
            merged[name] = merged.get(name, 0) + sign * coeff
        atoms = tuple(sorted((n, c) for n, c in merged.items() if c != 0))
        return Affine(
            lid=self.lid + sign * other.lid,
            gid=self.gid + sign * other.gid,
            wgid=self.wgid + sign * other.wgid,
            const=self.const + sign * other.const,
            atoms=atoms,
            lid1=self.lid1 + sign * other.lid1,
            gid1=self.gid1 + sign * other.gid1,
            wgid1=self.wgid1 + sign * other.wgid1,
        )

    def add(self, other: "Affine") -> "Affine":
        return self._combine(other, 1)

    def sub(self, other: "Affine") -> "Affine":
        return self._combine(other, -1)

    def scale(self, factor: int) -> "Affine":
        if factor == 0:
            return Affine()
        return Affine(
            lid=self.lid * factor,
            gid=self.gid * factor,
            wgid=self.wgid * factor,
            const=self.const * factor,
            atoms=tuple((n, c * factor) for n, c in self.atoms),
            lid1=self.lid1 * factor,
            gid1=self.gid1 * factor,
            wgid1=self.wgid1 * factor,
        )

    def describe(self) -> str:
        """Compact human-readable rendering for diagnostics."""
        parts = []
        for label, coeff in (
            ("lid", self.lid),
            ("gid", self.gid),
            ("wgid", self.wgid),
            ("lid1", self.lid1),
            ("gid1", self.gid1),
            ("wgid1", self.wgid1),
        ):
            if coeff == 1:
                parts.append(label)
            elif coeff:
                parts.append(f"{coeff}*{label}")
        for name, coeff in self.atoms:
            bare = name.split(":", 1)[-1]
            parts.append(bare if coeff == 1 else f"{coeff}*{bare}")
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)


# ----------------------------------------------------------------------- #
# Intervals
# ----------------------------------------------------------------------- #

#: Saturation bound: anything beyond is treated as unbounded.
_INF = 1 << 62

Interval = Tuple[int, int]

FULL: Interval = (-_INF, _INF)
LID_RANGE: Interval = (0, LANE_MAX - 1)
SIZE_RANGE: Interval = (1, _INF)
NONNEG: Interval = (0, _INF)


def _sat(value: int) -> int:
    return max(-_INF, min(_INF, value))


def interval(lo: int, hi: int) -> Interval:
    return (_sat(lo), _sat(hi))


def const_interval(value: int) -> Interval:
    return interval(value, value)


def add_iv(a: Interval, b: Interval) -> Interval:
    return interval(a[0] + b[0], a[1] + b[1])


def sub_iv(a: Interval, b: Interval) -> Interval:
    return interval(a[0] - b[1], a[1] - b[0])


def neg_iv(a: Interval) -> Interval:
    return interval(-a[1], -a[0])


def mul_iv(a: Interval, b: Interval) -> Interval:
    products = [a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1]]
    return interval(min(products), max(products))


def join_iv(a: Interval, b: Interval) -> Interval:
    return (min(a[0], b[0]), max(a[1], b[1]))


def shl_iv(a: Interval, b: Interval) -> Interval:
    """Left shift by a possibly-varying amount (non-negative shifts only)."""
    if b[0] < 0 or b[1] > 31:
        return FULL
    return mul_iv(a, interval(1 << b[0], 1 << b[1]))


def shr_iv(a: Interval, b: Interval) -> Interval:
    """Arithmetic right shift; only precise for non-negative left operands."""
    if b[0] < 0 or b[1] > 31 or a[0] < 0:
        return FULL
    return interval(a[0] >> b[1], a[1] >> b[0])


def mod_iv(a: Interval, b: Interval) -> Interval:
    """``a % b`` for a provably positive modulus and non-negative dividend."""
    if b[0] <= 0 or a[0] < 0:
        return FULL
    return interval(0, min(a[1], b[1] - 1))


def bitand_iv(a: Interval, b: Interval) -> Interval:
    """``a & b``: bounded by the smaller non-negative operand."""
    if a[0] < 0 or b[0] < 0:
        return FULL
    return interval(0, min(a[1], b[1]))


def is_full(a: Interval) -> bool:
    return a[0] <= -_INF and a[1] >= _INF


def bounded_above(a: Interval) -> Optional[int]:
    """The interval's upper bound, or None when unbounded."""
    return None if a[1] >= _INF else a[1]

def bounded_below(a: Interval) -> Optional[int]:
    """The interval's lower bound, or None when unbounded."""
    return None if a[0] <= -_INF else a[0]
