"""Findings vocabulary shared by both analysis levels.

A :class:`Finding` is one diagnostic: a stable check ID, a severity, a
message, and a location (a CL :class:`~repro.cl.nodes.SourceSpan` for level-1
findings, an instruction address for ISA-level findings).  Checks never abort
on the first hit; they accumulate findings into an :class:`AnalysisReport`
whose :meth:`~AnalysisReport.clean` property is the gate the compile/enqueue
policies and the CI job act on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cl.nodes import SourceSpan


class Severity(enum.IntEnum):
    """How bad a finding is; ordering is by badness."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: Stable check IDs with one-line descriptions (the CLI prints this table).
CHECKS: Dict[str, str] = {
    "BAR001": "barrier() reachable under lane-divergent control flow",
    "BAR002": "barrier() inside a loop with a lane-dependent trip count",
    "BAR003": "uneven barrier counts across the branches of a uniform if",
    "RACE001": "__local/__global write/write race between lanes in one barrier interval",
    "RACE002": "__local/__global read/write race between lanes in one barrier interval",
    "RACE003": "access pattern too complex to prove race-free (possible race)",
    "RACE004": "cross-workgroup global conflict (same address reachable from two workgroups)",
    "BND001": "provably out-of-bounds array index",
    "BND002": "indexing into a __global buffer of unknown length (unprovable bounds)",
    "BND003": "__local array index not provably within the declared size",
    "ISA001": "register read before any definition reaches it",
    "ISA002": "BARRIER executed under a non-empty execution-mask stack",
    "ISA003": "LRAM access outside the kernel's local window (local_words)",
    "ISA004": "unreachable code",
    "ISA005": "BARRIER count differs between converging execution paths",
    "ISA006": "execution-mask stack imbalance (PUSHM/POPM mismatch)",
    "ISA007": "execution can fall off the end of the program without RET",
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a static check (or the dynamic oracle)."""

    check: str
    severity: Severity
    message: str
    kernel: str = ""
    span: Optional[SourceSpan] = None
    address: Optional[int] = None

    def __post_init__(self) -> None:
        if self.check not in CHECKS:
            raise ValueError(f"unknown check ID {self.check!r}")

    @property
    def location(self) -> str:
        """Human-readable location: ``line:col`` or ``@addr`` or ``-``."""
        if self.span is not None:
            return f"{self.span.line}:{self.span.column}"
        if self.address is not None:
            return f"@{self.address}"
        return "-"

    def render(self) -> str:
        """One-line report form of the finding."""
        return (
            f"{str(self.severity):7s} {self.check} "
            f"[{self.kernel or '?'} {self.location}] {self.message}"
        )


@dataclass
class AnalysisReport:
    """An ordered collection of findings for one kernel or a whole suite."""

    findings: List[Finding] = field(default_factory=list)

    def add(
        self,
        check: str,
        severity: Severity,
        message: str,
        *,
        kernel: str = "",
        span: Optional[SourceSpan] = None,
        address: Optional[int] = None,
    ) -> Finding:
        """Append one finding and return it."""
        finding = Finding(
            check=check,
            severity=severity,
            message=message,
            kernel=kernel,
            span=span,
            address=address,
        )
        self.findings.append(finding)
        return finding

    def extend(self, other: "AnalysisReport") -> None:
        """Merge another report's findings into this one."""
        self.findings.extend(other.findings)

    def by_severity(self, severity: Severity) -> List[Finding]:
        """All findings of exactly the given severity."""
        return [f for f in self.findings if f.severity is severity]

    def by_check(self, check: str) -> List[Finding]:
        """All findings with the given check ID."""
        return [f for f in self.findings if f.check == check]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> List[Finding]:
        return self.by_severity(Severity.INFO)

    @property
    def clean(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    @property
    def race_findings(self) -> List[Finding]:
        """All race-related findings of any severity (soundness gate)."""
        return [f for f in self.findings if f.check.startswith("RACE")]

    @property
    def counts(self) -> Tuple[int, int, int]:
        """(errors, warnings, infos) triple."""
        return (len(self.errors), len(self.warnings), len(self.infos))

    def render(self) -> str:
        """Multi-line report: one line per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        errors, warnings, infos = self.counts
        lines.append(f"{errors} error(s), {warnings} warning(s), {infos} info(s)")
        return "\n".join(lines)
