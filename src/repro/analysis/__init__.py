"""Static kernel verifier for the CL front end and the G-GPU ISA.

Two analysis levels share one findings vocabulary:

* **Level 1** (:mod:`repro.analysis.clcheck`) runs over the analyzed CL AST:
  barrier-divergence checking, ``__local``/``__global`` race detection over
  barrier intervals with affine access summaries, and value-range bounds
  checking of index expressions.
* **Level 2** (:mod:`repro.analysis.isalint`) lints assembled G-GPU kernels
  (including hand-written ones the CL level never sees): CFG construction,
  register use-before-def, execution-mask balance, BARRIER-count consistency
  across paths, LRAM window bounds, and unreachable code.

:mod:`repro.analysis.oracle` is the dynamic cross-check: an instrumented
pure-python interpreter that records per-lane accesses per barrier interval
and observes races, barrier divergence, and out-of-bounds accesses
concretely.  The test suite asserts the static verdicts are *sound* against
it — no kernel the oracle catches racing may pass the static checker clean.

``python -m repro.analysis`` lints any source file or suite kernel from the
command line; ``cl.compiler.compile_source(..., check=...)`` and the
``verify=`` flags of ``CommandQueue.enqueue``/``GGPUSimulator.launch`` gate
the same checks into the compile and enqueue paths.
"""

from __future__ import annotations

from repro.analysis.clcheck import check_kernel, check_program, check_source
from repro.analysis.findings import (
    CHECKS,
    AnalysisReport,
    Finding,
    Severity,
)
from repro.analysis.isalint import lint_kernel, verify_kernel_or_raise
from repro.analysis.oracle import OracleReport, run_oracle, soundness_violations

__all__ = [
    "CHECKS",
    "AnalysisReport",
    "Finding",
    "OracleReport",
    "Severity",
    "check_kernel",
    "check_program",
    "check_source",
    "lint_kernel",
    "run_oracle",
    "soundness_violations",
    "verify_kernel_or_raise",
]
