"""Level-2 lint over assembled G-GPU kernels.

Works on the resolved :class:`~repro.arch.assembler.Program` (branch targets
are absolute instruction addresses after assembly), so it covers hand-written
kernels the CL front end never sees.  Checks:

* **ISA001** — register use-before-def: a may/must-defined dataflow over the
  CFG; reading a register no path ever wrote is an error, reading one that
  only *some* paths wrote is a warning.
* **ISA002** — ``BARRIER`` while the execution-mask stack is non-empty: under
  a ``PUSHM``/``CMASK`` region some lanes are masked off, so a wavefront with
  an empty mask (or a ``BEMPTY`` skip) would never reach the barrier other
  wavefronts wait at.
* **ISA003** — LRAM accesses outside the kernel's declared
  ``local_words`` window (byte addresses; provable violations are errors).
* **ISA004** — unreachable blocks.
* **ISA005** — converging forward paths that executed different numbers of
  ``BARRIER`` instructions (the skip-a-barrier divergence hazard).
* **ISA006** — mask-stack imbalance: ``POPM`` with an empty stack, paths that
  join at different depths, or a ``RET`` at non-zero depth.
* **ISA007** — execution can fall off the end of a block with no successor
  and no ``RET``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.findings import AnalysisReport, Severity
from repro.arch.isa import NUM_REGISTERS, Instruction, Opcode
from repro.arch.kernel import Kernel

_BRANCHES = {Opcode.JMP, Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BEMPTY}
_CONDITIONAL = {Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE, Opcode.BEMPTY}


@dataclass
class _Block:
    """One basic block: instruction index range plus CFG edges."""

    start: int
    end: int  # exclusive
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


def _instruction_uses(instruction: Instruction) -> List[int]:
    uses: List[int] = []
    info = instruction.opcode.info
    if info.has_rs and instruction.rs is not None:
        uses.append(int(instruction.rs))
    if info.has_rt and instruction.rt is not None:
        uses.append(int(instruction.rt))
    return uses


def _instruction_def(instruction: Instruction) -> Optional[int]:
    if instruction.opcode.info.has_rd and instruction.rd is not None:
        return int(instruction.rd)
    return None


def _build_blocks(instructions: List[Instruction]) -> Dict[int, _Block]:
    leaders: Set[int] = {0}
    for index, instruction in enumerate(instructions):
        if instruction.opcode in _BRANCHES and instruction.imm is not None:
            leaders.add(instruction.imm)
        if instruction.opcode in _BRANCHES or instruction.opcode is Opcode.RET:
            if index + 1 < len(instructions):
                leaders.add(index + 1)
    starts = sorted(leader for leader in leaders if leader < len(instructions))
    blocks: Dict[int, _Block] = {}
    for position, start in enumerate(starts):
        end = starts[position + 1] if position + 1 < len(starts) else len(instructions)
        blocks[start] = _Block(start=start, end=end)
    for block in blocks.values():
        last = instructions[block.end - 1]
        if last.opcode is Opcode.RET:
            continue
        if last.opcode in _BRANCHES and last.imm is not None and last.imm in blocks:
            block.succs.append(last.imm)
        if (last.opcode in _CONDITIONAL or last.opcode not in _BRANCHES) and block.end < len(
            instructions
        ):
            block.succs.append(block.end)
    for block in blocks.values():
        for succ in block.succs:
            blocks[succ].preds.append(block.start)
    return blocks


class _KernelLinter:
    def __init__(self, kernel: Kernel, report: AnalysisReport) -> None:
        self.kernel = kernel
        self.report = report
        self.instructions = list(kernel.program.instructions)
        self.blocks = _build_blocks(self.instructions)
        self.reachable = self._reachable_blocks()

    def _emit(self, check: str, severity: Severity, message: str, address: int) -> None:
        self.report.add(
            check, severity, message, kernel=self.kernel.name, address=address
        )

    def _reachable_blocks(self) -> Set[int]:
        seen: Set[int] = set()
        stack = [0] if self.blocks else []
        while stack:
            start = stack.pop()
            if start in seen:
                continue
            seen.add(start)
            stack.extend(self.blocks[start].succs)
        return seen

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        if not self.instructions:
            self._emit("ISA007", Severity.ERROR, "program is empty", 0)
            return
        self._check_unreachable()
        self._check_termination()
        self._check_registers()
        self._check_mask_depth_and_barriers()
        self._check_lram()

    def _check_unreachable(self) -> None:
        for start in sorted(self.blocks):
            if start not in self.reachable:
                block = self.blocks[start]
                self._emit(
                    "ISA004",
                    Severity.WARNING,
                    f"instructions {block.start}..{block.end - 1} are unreachable",
                    block.start,
                )

    def _check_termination(self) -> None:
        for start in sorted(self.reachable):
            block = self.blocks[start]
            last = self.instructions[block.end - 1]
            if not block.succs and last.opcode is not Opcode.RET:
                self._emit(
                    "ISA007",
                    Severity.ERROR,
                    f"execution falls off the end of the program after "
                    f"'{last.text()}' without RET",
                    block.end - 1,
                )

    # ------------------------------------------------------------------ #
    def _check_registers(self) -> None:
        """May/must-defined dataflow; flags reads of undefined registers."""
        all_regs = frozenset(range(NUM_REGISTERS))
        must_in: Dict[int, Set[int]] = {}
        may_in: Dict[int, Set[int]] = {}
        for start in self.reachable:
            must_in[start] = set(all_regs) if start != 0 else {0}
            may_in[start] = {0}

        def transfer(defined: Set[int], block: _Block) -> Set[int]:
            out = set(defined)
            for index in range(block.start, block.end):
                target = _instruction_def(self.instructions[index])
                if target is not None:
                    out.add(target)
            return out

        changed = True
        while changed:
            changed = False
            for start in sorted(self.reachable):
                if start == 0:
                    continue  # entry facts are fixed: only r0 is defined
                block = self.blocks[start]
                preds = [p for p in block.preds if p in self.reachable]
                if preds:
                    new_must = set.intersection(
                        *(transfer(must_in[p], self.blocks[p]) for p in preds)
                    ) | {0}
                    new_may = set.union(
                        *(transfer(may_in[p], self.blocks[p]) for p in preds)
                    ) | {0}
                    if new_must != must_in[start] or new_may != may_in[start]:
                        must_in[start], may_in[start] = new_must, new_may
                        changed = True

        flagged: Set[Tuple[int, int]] = set()
        for start in sorted(self.reachable):
            block = self.blocks[start]
            must, may = set(must_in[start]), set(may_in[start])
            for index in range(block.start, block.end):
                instruction = self.instructions[index]
                for register in _instruction_uses(instruction):
                    if register == 0 or (index, register) in flagged:
                        continue
                    if register not in may:
                        flagged.add((index, register))
                        self._emit(
                            "ISA001",
                            Severity.ERROR,
                            f"r{register} is read by '{instruction.text()}' but "
                            "never written on any path to this point",
                            index,
                        )
                    elif register not in must:
                        flagged.add((index, register))
                        self._emit(
                            "ISA001",
                            Severity.WARNING,
                            f"r{register} read by '{instruction.text()}' is not "
                            "written on every path to this point",
                            index,
                        )
                target = _instruction_def(instruction)
                if target is not None:
                    must.add(target)
                    may.add(target)

    # ------------------------------------------------------------------ #
    def _check_mask_depth_and_barriers(self) -> None:
        """Mask-stack balance (ISA006), barriers under masks (ISA002), and
        barrier-count consistency over forward paths (ISA005)."""
        depth_in: Dict[int, Optional[int]] = {start: None for start in self.reachable}
        depth_in[0] = 0
        mismatch_reported: Set[int] = set()
        worklist = [0]
        while worklist:
            start = worklist.pop()
            depth = depth_in[start]
            if depth is None:
                continue
            block = self.blocks[start]
            for index in range(block.start, block.end):
                opcode = self.instructions[index].opcode
                if opcode is Opcode.PUSHM:
                    depth += 1
                elif opcode is Opcode.POPM:
                    depth -= 1
                    if depth < 0 and start not in mismatch_reported:
                        mismatch_reported.add(start)
                        self._emit(
                            "ISA006",
                            Severity.ERROR,
                            "POPM with an empty execution-mask stack",
                            index,
                        )
                        depth = 0
                elif opcode is Opcode.BARRIER and depth > 0:
                    self._emit(
                        "ISA002",
                        Severity.ERROR,
                        f"BARRIER under a non-empty execution-mask stack "
                        f"(depth {depth}): masked-off or empty wavefronts "
                        "never reach it",
                        index,
                    )
                elif opcode is Opcode.RET and depth != 0:
                    self._emit(
                        "ISA006",
                        Severity.ERROR,
                        f"RET with {depth} unpopped execution-mask frame(s)",
                        index,
                    )
            for succ in block.succs:
                if depth_in[succ] is None:
                    depth_in[succ] = depth
                    worklist.append(succ)
                elif depth_in[succ] != depth and succ not in mismatch_reported:
                    mismatch_reported.add(succ)
                    self._emit(
                        "ISA006",
                        Severity.ERROR,
                        f"execution-mask depth differs between paths converging at "
                        f"instruction {succ} ({depth_in[succ]} vs {depth})",
                        succ,
                    )
        self._check_barrier_counts()

    def _check_barrier_counts(self) -> None:
        """Forward-path barrier counts must agree wherever paths converge."""
        counts_in: Dict[int, Set[int]] = {start: set() for start in self.reachable}
        counts_in[0] = {0}
        flagged = False
        for start in sorted(self.reachable):
            block = self.blocks[start]
            if not counts_in[start]:
                counts_in[start] = {0}  # loop body entered only via a back edge
            if len(counts_in[start]) > 1 and not flagged:
                flagged = True
                observed = sorted(counts_in[start])
                self._emit(
                    "ISA005",
                    Severity.ERROR,
                    f"paths converging at instruction {start} executed different "
                    f"numbers of BARRIERs ({observed}): a skipped barrier "
                    "deadlocks the workgroup",
                    start,
                )
            barriers = sum(
                1
                for index in range(block.start, block.end)
                if self.instructions[index].opcode is Opcode.BARRIER
            )
            counts_out = {count + barriers for count in counts_in[start]}
            for succ in block.succs:
                if succ > start:  # forward edges only; loop bodies repeat evenly
                    counts_in[succ] |= counts_out

    # ------------------------------------------------------------------ #
    def _check_lram(self) -> None:
        """LRAM accesses against the declared per-workgroup window."""
        window_bytes = self.kernel.local_words * 4
        for start in sorted(self.reachable):
            block = self.blocks[start]
            known: Dict[int, int] = {0: 0}
            for index in range(block.start, block.end):
                instruction = self.instructions[index]
                opcode = instruction.opcode
                if opcode in (Opcode.LLW, Opcode.LSW):
                    offset = instruction.imm or 0
                    base = known.get(int(instruction.rs)) if instruction.rs is not None else None
                    if window_bytes == 0:
                        self._emit(
                            "ISA003",
                            Severity.ERROR,
                            f"'{instruction.text()}' accesses LRAM but the kernel "
                            "declares no __local storage (local_words == 0)",
                            index,
                        )
                    elif base is not None:
                        address = base + offset
                        if address < 0 or address + 4 > window_bytes:
                            self._emit(
                                "ISA003",
                                Severity.ERROR,
                                f"'{instruction.text()}' accesses LRAM byte "
                                f"{address}, outside the {window_bytes}-byte "
                                f"window (local_words={self.kernel.local_words})",
                                index,
                            )
                    elif offset < 0 or offset + 4 > window_bytes:
                        self._emit(
                            "ISA003",
                            Severity.WARNING,
                            f"'{instruction.text()}' adds immediate offset {offset} "
                            f"to a runtime base; the {window_bytes}-byte LRAM "
                            "window cannot contain it for any non-negative base",
                            index,
                        )
                target = _instruction_def(instruction)
                if target is not None and target != 0:
                    value = self._fold_constant(instruction, known)
                    if value is None:
                        known.pop(target, None)
                    else:
                        known[target] = value

    @staticmethod
    def _fold_constant(instruction: Instruction, known: Dict[int, int]) -> Optional[int]:
        opcode = instruction.opcode
        if opcode is Opcode.LI:
            return instruction.imm or 0
        source = known.get(int(instruction.rs)) if instruction.rs is not None else None
        if source is None or instruction.imm is None:
            return None
        if opcode is Opcode.ADDI:
            return source + instruction.imm
        if opcode is Opcode.SLLI:
            return source << (instruction.imm & 0x1F)
        return None


def lint_kernel(kernel: Kernel) -> AnalysisReport:
    """Run all ISA-level checks over one assembled kernel."""
    report = AnalysisReport()
    _KernelLinter(kernel, report).run()
    return report


def verify_kernel_or_raise(kernel: Kernel) -> AnalysisReport:
    """Lint a kernel and raise :class:`KernelError` on error findings.

    This is the opt-in gate behind ``GGPUSimulator.launch(verify=True)`` and
    ``CommandQueue.enqueue(verify=True)``; warnings and infos pass.
    """
    from repro.errors import KernelError

    report = lint_kernel(kernel)
    if not report.clean:
        preview = "; ".join(finding.render() for finding in report.errors[:3])
        raise KernelError(
            f"kernel {kernel.name!r} failed ISA verification with "
            f"{len(report.errors)} error-severity finding(s): {preview}"
        )
    return report
