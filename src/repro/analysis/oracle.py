"""Dynamic race oracle: an instrumented pure-python kernel interpreter.

Runs an analyzed CL kernel one workgroup at a time, with one python generator
per lane that yields at every ``barrier()``.  A coordinator advances all
lanes of the workgroup to the barrier before any lane continues, which
reproduces the barrier-interval semantics exactly; every ``__local`` and
``__global`` access is logged as ``(workgroup, lane, interval, kind,
address)`` and races are extracted from the log *concretely*:

* two accesses to the same address, at least one a write, by different lanes
  of the same workgroup in the same barrier interval, or
* two accesses to the same global address, at least one a write, from
  different workgroups (barriers never synchronize across workgroups).

The oracle also observes barrier divergence (some lanes of a workgroup reach
a barrier while others have already finished) and concrete out-of-bounds
indices.  Arithmetic is 32-bit wrapping with the same signedness rules the
code generators use (unsigned shifts/compares when an operand is ``uint``,
RISC-style division), so the observed addresses are the machine's addresses.

:func:`soundness_violations` is the bridge the fuzz harness asserts on: every
behaviour the oracle observes must be covered by a static finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.findings import AnalysisReport
from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    CType,
    DeclStmt,
    Expr,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    KernelDecl,
    LocalDeclStmt,
    ReturnStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from repro.errors import SimulationError

_MASK = 0xFFFFFFFF

#: (space, array, workgroup, interval, lane, kind, address, location)
_LogEntry = Tuple[str, str, int, int, int, str, int, str]


def _signed(value: int) -> int:
    value &= _MASK
    return value - (1 << 32) if value & 0x80000000 else value


def _as_shape(size: "int | Sequence[int]") -> Tuple[int, ...]:
    if isinstance(size, int):
        return (size,)
    return tuple(int(extent) for extent in size)


def _prod(shape: Tuple[int, ...]) -> int:
    total = 1
    for extent in shape:
        total *= extent
    return total


@dataclass(frozen=True)
class OracleRace:
    """One concrete race observed by the oracle."""

    space: str
    array: str
    address: int
    first: Tuple[int, int, str, str]  # (workgroup, lane, kind, location)
    second: Tuple[int, int, str, str]

    def describe(self) -> str:
        (wg_a, lane_a, kind_a, at_a) = self.first
        (wg_b, lane_b, kind_b, at_b) = self.second
        return (
            f"{self.space} {self.array}[{self.address}]: "
            f"{kind_a} by wg{wg_a}/lane{lane_a} at {at_a} vs "
            f"{kind_b} by wg{wg_b}/lane{lane_b} at {at_b}"
        )


@dataclass
class OracleReport:
    """Everything the oracle observed in one run."""

    kernel: str
    races: List[OracleRace] = field(default_factory=list)
    barrier_divergence: List[str] = field(default_factory=list)
    out_of_bounds: List[str] = field(default_factory=list)
    num_accesses: int = 0

    @property
    def racy(self) -> bool:
        return bool(self.races)

    @property
    def clean(self) -> bool:
        return not (self.races or self.barrier_divergence or self.out_of_bounds)


class _OracleRun:
    """One instrumented execution of a kernel over an NDRange."""

    _MAX_RACES = 50

    def __init__(
        self,
        kernel: KernelDecl,
        global_size: "int | Sequence[int]",
        workgroup_size: "int | Sequence[int]",
        buffers: Mapping[str, Sequence[int]],
        scalars: Mapping[str, int],
        max_steps: int,
    ) -> None:
        self.global_shape = _as_shape(global_size)
        self.workgroup_shape = _as_shape(workgroup_size)
        if len(self.global_shape) != len(self.workgroup_shape):
            raise SimulationError(
                "global and workgroup sizes must have the same rank "
                f"({self.global_shape} vs {self.workgroup_shape})"
            )
        for dim, (gs, ws) in enumerate(zip(self.global_shape, self.workgroup_shape)):
            if ws <= 0 or gs % ws != 0:
                raise SimulationError(
                    "global size must be a multiple of the workgroup size "
                    f"(dimension {dim}: {gs} vs {ws})"
                )
        self.rank = len(self.global_shape)
        self.kernel = kernel
        # Flat sizes drive the workgroup/lane loops; per-dimension ids are
        # recovered from the shapes in _call (dimension 0 fastest).
        self.global_size = _prod(self.global_shape)
        self.workgroup_size = _prod(self.workgroup_shape)
        self.buffers: Dict[str, List[int]] = {
            name: [int(v) & _MASK for v in contents] for name, contents in buffers.items()
        }
        self.scalars = {name: int(value) & _MASK for name, value in scalars.items()}
        self.max_steps = max_steps
        self.report = OracleReport(kernel=kernel.name)
        self.log: List[_LogEntry] = []
        self._steps = 0
        self._locals: Dict[str, List[int]] = {}
        self._workgroup = 0
        self._interval = 0

    # ------------------------------------------------------------------ #
    # Driver
    # ------------------------------------------------------------------ #
    def run(self) -> OracleReport:
        for param in self.kernel.params:
            if param.is_pointer and param.name not in self.buffers:
                raise SimulationError(f"oracle needs a buffer for parameter {param.name!r}")
            if not param.is_pointer and param.name not in self.scalars:
                raise SimulationError(f"oracle needs a value for parameter {param.name!r}")
        for workgroup in range(self.global_size // self.workgroup_size):
            self._workgroup = workgroup
            self._run_workgroup(workgroup)
        self._extract_races()
        self.report.num_accesses = len(self.log)
        return self.report

    def _run_workgroup(self, workgroup: int) -> None:
        self._locals = {
            symbol.name: [0] * symbol.array_words
            for symbol in self.kernel.symbols.values()
            if symbol.is_local_array
        }
        self._interval = 0
        lanes = list(range(self.workgroup_size))
        generators = {lane: self._run_lane(workgroup, lane) for lane in lanes}
        active = list(lanes)
        while active:
            at_barrier: List[int] = []
            finished: List[int] = []
            for lane in active:
                try:
                    next(generators[lane])
                    at_barrier.append(lane)
                except StopIteration:
                    finished.append(lane)
            if at_barrier and finished:
                self.report.barrier_divergence.append(
                    f"workgroup {workgroup}: lanes {at_barrier[:4]}... wait at a "
                    f"barrier (interval {self._interval}) that lanes "
                    f"{finished[:4]}... never reach"
                )
                return
            if not at_barrier:
                return
            self._interval += 1
            active = at_barrier

    # ------------------------------------------------------------------ #
    # Per-lane interpreter
    # ------------------------------------------------------------------ #
    def _run_lane(self, workgroup: int, lane: int) -> Iterator[None]:
        env: Dict[str, int] = dict(self.scalars)
        yield from self._exec_block(self.kernel.body, workgroup, lane, env)

    def _exec_block(
        self, statements: Sequence[Stmt], workgroup: int, lane: int, env: Dict[str, int]
    ) -> Iterator[None]:
        for statement in statements:
            self._steps += 1
            if self._steps > self.max_steps:
                raise SimulationError(
                    f"oracle step budget exceeded running kernel {self.kernel.name!r}"
                )
            if isinstance(statement, DeclStmt):
                for name, init in zip(statement.names, statement.inits, strict=True):
                    env[name] = (
                        self._eval(init, workgroup, lane, env) if init is not None else 0
                    )
            elif isinstance(statement, AssignStmt):
                self._exec_assign(statement, workgroup, lane, env)
            elif isinstance(statement, IfStmt):
                if self._eval(statement.condition, workgroup, lane, env) != 0:
                    yield from self._exec_block(statement.then_body, workgroup, lane, env)
                else:
                    yield from self._exec_block(statement.else_body, workgroup, lane, env)
            elif isinstance(statement, WhileStmt):
                while self._eval(statement.condition, workgroup, lane, env) != 0:
                    yield from self._exec_block(statement.body, workgroup, lane, env)
                    self._steps += 1
                    if self._steps > self.max_steps:
                        raise SimulationError(
                            f"oracle step budget exceeded in kernel {self.kernel.name!r}"
                        )
            elif isinstance(statement, ForStmt):
                if statement.init is not None:
                    yield from self._exec_block([statement.init], workgroup, lane, env)
                while (
                    statement.condition is None
                    or self._eval(statement.condition, workgroup, lane, env) != 0
                ):
                    yield from self._exec_block(statement.body, workgroup, lane, env)
                    if statement.step is not None:
                        yield from self._exec_block([statement.step], workgroup, lane, env)
                    self._steps += 1
                    if self._steps > self.max_steps:
                        raise SimulationError(
                            f"oracle step budget exceeded in kernel {self.kernel.name!r}"
                        )
            elif isinstance(statement, BarrierStmt):
                yield
            elif isinstance(statement, ReturnStmt):
                return
            elif isinstance(statement, LocalDeclStmt):
                continue

    def _exec_assign(
        self, statement: AssignStmt, workgroup: int, lane: int, env: Dict[str, int]
    ) -> None:
        value = self._eval(statement.value, workgroup, lane, env)
        target = statement.target
        if isinstance(target, VarRef):
            if statement.op != "=":
                value = self._binop(
                    statement.op.rstrip("="),
                    env.get(target.name, 0),
                    value,
                    self._unsigned(target, statement.value),
                )
            env[target.name] = value
        elif isinstance(target, Index):
            address = _signed(self._eval(target.index, workgroup, lane, env))
            if statement.op != "=":
                current = self._memory_access(target, address, "r", workgroup, lane)
                value = self._binop(
                    statement.op.rstrip("="),
                    current,
                    value,
                    self._unsigned(target, statement.value),
                )
            self._memory_store(target, address, value, workgroup, lane)

    # ------------------------------------------------------------------ #
    # Memory with access logging
    # ------------------------------------------------------------------ #
    def _memory(self, access: Index) -> Tuple[str, List[int]]:
        symbol = self.kernel.symbols[access.base]
        if symbol.is_local_array:
            return ("local", self._locals[access.base])
        return ("global", self.buffers[access.base])

    def _memory_access(
        self, access: Index, address: int, kind: str, workgroup: int, lane: int
    ) -> int:
        space, memory = self._memory(access)
        location = f"{access.span.line}:{access.span.column}"
        self.log.append(
            (space, access.base, workgroup, self._interval, lane, kind, address, location)
        )
        if not 0 <= address < len(memory):
            self._note_oob(space, access, address, workgroup, lane)
            return 0
        return memory[address]

    def _memory_store(
        self, access: Index, address: int, value: int, workgroup: int, lane: int
    ) -> None:
        space, memory = self._memory(access)
        location = f"{access.span.line}:{access.span.column}"
        self.log.append(
            (space, access.base, workgroup, self._interval, lane, "w", address, location)
        )
        if not 0 <= address < len(memory):
            self._note_oob(space, access, address, workgroup, lane)
            return
        memory[address] = value & _MASK

    def _note_oob(
        self, space: str, access: Index, address: int, workgroup: int, lane: int
    ) -> None:
        if len(self.report.out_of_bounds) < self._MAX_RACES:
            self.report.out_of_bounds.append(
                f"{space} {access.base}[{address}] out of bounds "
                f"(wg{workgroup}/lane{lane} at {access.span})"
            )

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    @staticmethod
    def _unsigned(*operands: Optional[Expr]) -> bool:
        return any(op is not None and op.ctype is CType.UINT for op in operands)

    def _eval(
        self, expr: Optional[Expr], workgroup: int, lane: int, env: Dict[str, int]
    ) -> int:
        if expr is None:
            return 0
        if isinstance(expr, IntLiteral):
            return expr.value & _MASK
        if isinstance(expr, VarRef):
            return env.get(expr.name, 0)
        if isinstance(expr, UnaryOp):
            value = self._eval(expr.operand, workgroup, lane, env)
            if expr.op == "-":
                return (-value) & _MASK
            if expr.op == "!":
                return 0 if value else 1
            if expr.op == "~":
                return (~value) & _MASK
            return value
        if isinstance(expr, BinaryOp):
            left = self._eval(expr.left, workgroup, lane, env)
            right = self._eval(expr.right, workgroup, lane, env)
            return self._binop(expr.op, left, right, self._unsigned(expr.left, expr.right))
        if isinstance(expr, Index):
            address = _signed(self._eval(expr.index, workgroup, lane, env))
            return self._memory_access(expr, address, "r", workgroup, lane)
        if isinstance(expr, Call):
            return self._call(expr, workgroup, lane, env)
        raise SimulationError(f"oracle cannot evaluate {type(expr).__name__}")

    _ID_BUILTINS = (
        "get_local_id",
        "get_global_id",
        "get_group_id",
        "get_local_size",
        "get_global_size",
        "get_num_groups",
    )

    def _call(self, expr: Call, workgroup: int, lane: int, env: Dict[str, int]) -> int:
        if expr.name in self._ID_BUILTINS:
            dim = 0
            if expr.args and isinstance(expr.args[0], IntLiteral):
                dim = expr.args[0].value
            if dim >= self.rank:
                raise SimulationError(
                    f"{expr.name} queries dimension {dim} of a rank-{self.rank} launch"
                )
            # Row-major decomposition, dimension 0 fastest: flat lane and
            # workgroup numbers factor over the dim-0 extents exactly the way
            # the G-GPU dispatcher assigns them.
            ws0 = self.workgroup_shape[0]
            nwg0 = self.global_shape[0] // ws0
            local = lane % ws0 if dim == 0 else lane // ws0
            group = workgroup % nwg0 if dim == 0 else workgroup // nwg0
            if expr.name == "get_local_id":
                return local
            if expr.name == "get_global_id":
                return group * self.workgroup_shape[dim] + local
            if expr.name == "get_group_id":
                return group
            if expr.name == "get_local_size":
                return self.workgroup_shape[dim]
            if expr.name == "get_global_size":
                return self.global_shape[dim]
            return self.global_shape[dim] // self.workgroup_shape[dim]
        values = [self._eval(arg, workgroup, lane, env) for arg in expr.args]
        if expr.name == "min":
            return min(_signed(values[0]), _signed(values[1])) & _MASK
        if expr.name == "max":
            return max(_signed(values[0]), _signed(values[1])) & _MASK
        raise SimulationError(f"oracle does not implement builtin {expr.name!r}")

    @staticmethod
    def _binop(op: str, left: int, right: int, unsigned: bool) -> int:
        sl, sr = _signed(left), _signed(right)
        if op == "+":
            return (left + right) & _MASK
        if op == "-":
            return (left - right) & _MASK
        if op == "*":
            return (sl * sr) & _MASK
        if op == "/":
            if sr == 0:
                return _MASK  # RISC-style: quotient of division by zero is -1
            quotient = abs(sl) // abs(sr)
            return (-quotient if (sl < 0) != (sr < 0) else quotient) & _MASK
        if op == "%":
            if sr == 0:
                return left & _MASK  # RISC-style: remainder is the dividend
            quotient = abs(sl) // abs(sr)
            if (sl < 0) != (sr < 0):
                quotient = -quotient
            return (sl - quotient * sr) & _MASK
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return (left << (right & 0x1F)) & _MASK
        if op == ">>":
            if unsigned:
                return (left & _MASK) >> (right & 0x1F)
            return (sl >> (right & 0x1F)) & _MASK
        if op in ("==", "!="):
            equal = (left & _MASK) == (right & _MASK)
            return int(equal if op == "==" else not equal)
        if op in ("<", "<=", ">", ">="):
            a, b = ((left & _MASK), (right & _MASK)) if unsigned else (sl, sr)
            return int({"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b}[op])
        if op == "&&":
            return int(bool(left) and bool(right))
        if op == "||":
            return int(bool(left) or bool(right))
        raise SimulationError(f"oracle does not implement operator {op!r}")

    # ------------------------------------------------------------------ #
    # Race extraction
    # ------------------------------------------------------------------ #
    def _extract_races(self) -> None:
        by_address: Dict[Tuple[str, str, int], List[_LogEntry]] = {}
        for entry in self.log:
            space, array, _, _, _, _, address, _ = entry
            by_address.setdefault((space, array, address), []).append(entry)
        seen: Set[Tuple[str, str, int, str, str]] = set()
        for (space, array, address), entries in sorted(by_address.items()):
            if len(self.report.races) >= self._MAX_RACES:
                break
            if not any(entry[5] == "w" for entry in entries):
                continue
            race = self._find_conflict(space, entries)
            if race is None:
                continue
            first, second = race
            key = (space, array, address, first[7], second[7])
            if key in seen:
                continue
            seen.add(key)
            self.report.races.append(
                OracleRace(
                    space=space,
                    array=array,
                    address=address,
                    first=(first[2], first[4], first[5], first[7]),
                    second=(second[2], second[4], second[5], second[7]),
                )
            )

    @staticmethod
    def _find_conflict(
        space: str, entries: List[_LogEntry]
    ) -> Optional[Tuple[_LogEntry, _LogEntry]]:
        writes = [entry for entry in entries if entry[5] == "w"]
        for write in writes:
            _, _, wg_w, interval_w, lane_w, _, _, _ = write
            for other in entries:
                _, _, wg_o, interval_o, lane_o, _, _, _ = other
                if other is write:
                    continue
                if space == "global" and wg_o != wg_w:
                    return (write, other)
                if wg_o == wg_w and interval_o == interval_w and lane_o != lane_w:
                    return (write, other)
        return None


def run_oracle(
    kernel: KernelDecl,
    *,
    global_size: "int | Sequence[int]",
    workgroup_size: "int | Sequence[int]",
    buffers: Mapping[str, Sequence[int]],
    scalars: Mapping[str, int],
    max_steps: int = 2_000_000,
) -> OracleReport:
    """Execute one analyzed kernel under instrumentation and report findings.

    ``buffers`` maps pointer parameters to integer sequences (copied; the
    oracle mutates its own copies), ``scalars`` maps value parameters.
    ``global_size``/``workgroup_size`` accept an int (rank-1) or a tuple of
    per-dimension extents (rank-2 NDRange, dimension 0 fastest).
    """
    if not kernel.symbols:
        raise SimulationError(
            f"kernel {kernel.name!r} has no symbol table; run cl.semantics.analyze first"
        )
    run = _OracleRun(kernel, global_size, workgroup_size, buffers, scalars, max_steps)
    return run.run()


def soundness_violations(
    static_report: AnalysisReport, oracle_report: OracleReport
) -> List[str]:
    """Where the static verdicts fail to cover the oracle's observations.

    Soundness contract: every concretely observed race needs at least one
    RACE* finding (any severity), observed barrier divergence needs a BAR*
    finding, and observed out-of-bounds accesses need a BND* finding.  An
    empty result means the static checker is sound on this run.
    """
    violations: List[str] = []
    if oracle_report.races and not static_report.race_findings:
        example = oracle_report.races[0].describe()
        violations.append(
            f"oracle observed {len(oracle_report.races)} race(s) "
            f"(e.g. {example}) but the static checker reported no race finding"
        )
    has_barrier_finding = any(
        finding.check.startswith("BAR") for finding in static_report.findings
    )
    if oracle_report.barrier_divergence and not has_barrier_finding:
        violations.append(
            f"oracle observed barrier divergence "
            f"({oracle_report.barrier_divergence[0]}) but the static checker "
            "reported no BAR finding"
        )
    has_bounds_finding = any(
        finding.check.startswith("BND") for finding in static_report.findings
    )
    if oracle_report.out_of_bounds and not has_bounds_finding:
        violations.append(
            f"oracle observed out-of-bounds accesses "
            f"({oracle_report.out_of_bounds[0]}) but the static checker "
            "reported no BND finding"
        )
    return violations
