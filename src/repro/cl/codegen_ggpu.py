"""G-GPU back end: lower an analyzed kernel AST to the SIMT ISA.

The generator drives the public :class:`~repro.arch.kernel.KernelBuilder`
exactly like the hand-written benchmark kernels do, so the compiled code runs
on the same simulator, through the same host API, with the same workloads.

Control-flow lowering follows the uniformity annotation from
:mod:`repro.cl.semantics`:

* wavefront-uniform conditions become plain ``BEQ``/``JMP`` branches,
* lane-varying ``if``/``else`` becomes the ``PUSHM``/``CMASK``/``INVM``/``POPM``
  execution-mask sequence,
* lane-varying loops become mask-constrained loops that exit when no lane is
  active (``BEMPTY``).

Expressions are evaluated into a small pool of temporary registers with the
usual strength reductions (immediate operand forms when a constant fits the
14-bit field, shifted adds for buffer addressing).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.arch.assembler import fits_in_immediate
from repro.arch.isa import Opcode
from repro.arch.kernel import Kernel, KernelArg, KernelBuilder
from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    CType,
    DeclStmt,
    Expr,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    KernelDecl,
    LocalDeclStmt,
    ReturnStmt,
    Stmt,
    Symbol,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from repro.errors import CompilationError

# Builtin work-item functions that map 1:1 onto SPECIAL opcodes.
_BUILTIN_OPCODES: Dict[str, Opcode] = {
    "get_global_id": Opcode.GID,
    "get_local_id": Opcode.LID,
    "get_group_id": Opcode.WGID,
    "get_local_size": Opcode.WGSIZE,
    "get_global_size": Opcode.GSIZE,
    "get_num_groups": Opcode.NWG,
}

# Binary operators with a direct three-register opcode (signed flavour).
_DIRECT_BINOPS: Dict[str, Opcode] = {
    "+": Opcode.ADD,
    "-": Opcode.SUB,
    "*": Opcode.MUL,
    "/": Opcode.DIV,
    "%": Opcode.REM,
    "&": Opcode.AND,
    "|": Opcode.OR,
    "^": Opcode.XOR,
    "<<": Opcode.SLL,
}

# Binary operators that also have an immediate form usable when the right-hand
# side is a small constant.
_IMMEDIATE_BINOPS: Dict[str, Opcode] = {
    "+": Opcode.ADDI,
    "&": Opcode.ANDI,
    "|": Opcode.ORI,
    "^": Opcode.XORI,
    "*": Opcode.MULI,
    "<<": Opcode.SLLI,
}


class GGPUCodeGenerator:
    """Generates one G-GPU :class:`~repro.arch.kernel.Kernel` from an analyzed AST."""

    def __init__(self, kernel: KernelDecl) -> None:
        self.kernel = kernel
        args = tuple(
            KernelArg(param.name, "buffer" if param.is_pointer else "scalar")
            for param in kernel.params
        )
        self.builder = KernelBuilder(kernel.name, args=args)
        self._var_regs: Dict[str, int] = {}
        self._free_temps: List[int] = []
        self._temp_regs: set = set()
        self._num_temps = 0

    # ------------------------------------------------------------------ #
    # Register management
    # ------------------------------------------------------------------ #
    def _acquire(self) -> int:
        """Get a scratch register from the pool (allocating one if needed)."""
        if self._free_temps:
            return self._free_temps.pop()
        try:
            register = self.builder.alloc(f"_t{self._num_temps}")
        except Exception as exc:
            raise CompilationError(
                f"kernel {self.kernel.name!r} needs more registers than the "
                "32-register file provides"
            ) from exc
        self._num_temps += 1
        self._temp_regs.add(register)
        return register

    def _release(self, register: Optional[int]) -> None:
        """Return a scratch register to the pool (variable registers are kept)."""
        if register is not None and register in self._temp_regs:
            self._free_temps.append(register)

    def _var_register(self, name: str) -> int:
        try:
            return self._var_regs[name]
        except KeyError as exc:
            raise CompilationError(f"no register allocated for {name!r}") from exc

    def _move(self, destination: int, source: int) -> None:
        if destination != source:
            self.builder.emit(Opcode.ADD, rd=destination, rs=source, rt=0)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def generate(self) -> Kernel:
        """Lower the kernel and return the assembled program."""
        try:
            self._allocate_variables()
            self._load_parameters()
            self._gen_statements(self.kernel.body)
            self.builder.ret()
            return self.builder.build()
        except CompilationError:
            raise
        except Exception as exc:  # wrap assembler/builder errors with context
            raise CompilationError(
                f"code generation for kernel {self.kernel.name!r} failed: {exc}"
            ) from exc

    def _allocate_variables(self) -> None:
        for param in self.kernel.params:
            self._var_regs[param.name] = self.builder.alloc(param.name)
        for name, symbol in self.kernel.symbols.items():
            if symbol.is_param:
                continue
            if symbol.is_local_array:
                # Local arrays live at static offsets in the workgroup's LRAM
                # window; they occupy no register.
                self.builder.declare_local(name, symbol.array_words)
            else:
                self._var_regs[name] = self.builder.alloc(name)

    def _local_symbol(self, name: str) -> Optional[Symbol]:
        symbol = self.kernel.symbols.get(name)
        if symbol is not None and symbol.is_local_array:
            return symbol
        return None

    def _load_parameters(self) -> None:
        for param in self.kernel.params:
            self.builder.load_arg(self._var_regs[param.name], param.name)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _gen_statements(self, statements: List[Stmt]) -> None:
        for statement in statements:
            self._gen_statement(statement)

    def _gen_statement(self, statement: Stmt) -> None:
        if isinstance(statement, DeclStmt):
            for name, init in zip(statement.names, statement.inits, strict=True):
                if init is not None:
                    self._gen_assign_to_var(name, init)
        elif isinstance(statement, AssignStmt):
            self._gen_assignment(statement)
        elif isinstance(statement, IfStmt):
            self._gen_if(statement)
        elif isinstance(statement, WhileStmt):
            self._gen_loop(statement.condition, statement.body, step=None)
        elif isinstance(statement, ForStmt):
            if statement.init is not None:
                self._gen_statement(statement.init)
            self._gen_loop(statement.condition, statement.body, step=statement.step)
        elif isinstance(statement, BarrierStmt):
            self.builder.emit(Opcode.BARRIER)
        elif isinstance(statement, (ReturnStmt, LocalDeclStmt)):
            pass  # RET is emitted by generate(); local arrays were pre-allocated
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unsupported statement {type(statement).__name__}")

    def _gen_assign_to_var(self, name: str, value: Expr) -> None:
        destination = self._var_register(name)
        register = self._eval(value, preferred=destination)
        self._move(destination, register)
        self._release(register)

    def _gen_assignment(self, statement: AssignStmt) -> None:
        target = statement.target
        if isinstance(target, VarRef):
            if statement.op == "=":
                self._gen_assign_to_var(target.name, statement.value)
                return
            destination = self._var_register(target.name)
            value = self._eval(statement.value)
            self._emit_binop(statement.op[:-1], destination, destination, value,
                             unsigned=self._unsigned(target, statement.value))
            self._release(value)
            return
        if isinstance(target, Index):
            is_local = self._local_symbol(target.base) is not None
            load, store = (Opcode.LLW, Opcode.LSW) if is_local else (Opcode.LW, Opcode.SW)
            address = self._element_address(target)
            if statement.op == "=":
                value = self._eval(statement.value)
            else:
                current = self._acquire()
                self.builder.emit(load, rd=current, rs=address, imm=0)
                rhs = self._eval(statement.value)
                self._emit_binop(statement.op[:-1], current, current, rhs,
                                 unsigned=self._unsigned(target, statement.value))
                self._release(rhs)
                value = current
            self.builder.emit(store, rs=address, rt=value, imm=0)
            self._release(value)
            self._release(address)
            return
        raise CompilationError("assignment target must be a variable or buffer[index]")

    def _gen_if(self, statement: IfStmt) -> None:
        if statement.condition.varying:
            condition = self._eval(statement.condition, as_bool=True)
            if statement.has_else:
                with self.builder.lane_if_else(condition) as branch:
                    self._release(condition)
                    self._gen_statements(statement.then_body)
                    with branch.otherwise():
                        self._gen_statements(statement.else_body)
            else:
                with self.builder.lane_if(condition):
                    self._release(condition)
                    self._gen_statements(statement.then_body)
            return
        # Wavefront-uniform condition: an ordinary branch.
        condition = self._eval(statement.condition, as_bool=True)
        else_label = self.builder.asm.unique_label("else")
        end_label = self.builder.asm.unique_label("endif")
        self.builder.emit(Opcode.BEQ, rs=condition, rt=0, label=else_label)
        self._release(condition)
        self._gen_statements(statement.then_body)
        if statement.has_else:
            self.builder.emit(Opcode.JMP, label=end_label)
            self.builder.label(else_label)
            self._gen_statements(statement.else_body)
            self.builder.label(end_label)
        else:
            self.builder.label(else_label)

    def _gen_loop(self, condition: Optional[Expr], body: List[Stmt], step: Optional[Stmt]) -> None:
        if condition is None:
            raise CompilationError("loops without a condition are not supported")
        if condition.varying:
            with self.builder.divergent_while() as loop:
                register = self._eval(condition, as_bool=True)
                loop.check(register)
                self._release(register)
                self._gen_statements(body)
                if step is not None:
                    self._gen_statement(step)
            return
        start = self.builder.asm.unique_label("loop")
        end = self.builder.asm.unique_label("loop_end")
        self.builder.label(start)
        register = self._eval(condition, as_bool=True)
        self.builder.emit(Opcode.BEQ, rs=register, rt=0, label=end)
        self._release(register)
        self._gen_statements(body)
        if step is not None:
            self._gen_statement(step)
        self.builder.emit(Opcode.JMP, label=start)
        self.builder.label(end)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    @staticmethod
    def _unsigned(*operands: Expr) -> bool:
        return any(operand is not None and operand.ctype is CType.UINT for operand in operands)

    def _eval(self, expr: Expr, preferred: Optional[int] = None, as_bool: bool = False) -> int:
        """Evaluate ``expr`` into a register and return it.

        The returned register is either a variable register (treat as
        read-only) or a scratch register the caller must release.  With
        ``as_bool`` the result is already usable as a 0/1 condition (the
        comparison and logical operators produce that form natively; other
        values are normalized with an unsigned "!= 0" test).
        """
        register = self._eval_value(expr, preferred)
        if not as_bool:
            return register
        if isinstance(expr, BinaryOp) and (
            expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||")
        ):
            return register
        if isinstance(expr, UnaryOp) and expr.op == "!":
            return register
        normalized = self._acquire()
        self.builder.emit(Opcode.SLTU, rd=normalized, rs=0, rt=register)
        self._release(register)
        return normalized

    def _eval_value(self, expr: Expr, preferred: Optional[int] = None) -> int:
        if isinstance(expr, IntLiteral):
            destination = preferred if preferred is not None else self._acquire()
            self.builder.load_constant(destination, expr.value)
            return destination
        if isinstance(expr, VarRef):
            return self._var_register(expr.name)
        if isinstance(expr, Call):
            return self._eval_call(expr, preferred)
        if isinstance(expr, Index):
            load = Opcode.LLW if self._local_symbol(expr.base) else Opcode.LW
            address = self._element_address(expr)
            destination = preferred if preferred is not None else self._acquire()
            self.builder.emit(load, rd=destination, rs=address, imm=0)
            self._release(address)
            return destination
        if isinstance(expr, UnaryOp):
            return self._eval_unary(expr, preferred)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, preferred)
        raise CompilationError(f"unsupported expression {type(expr).__name__}")

    def _eval_call(self, expr: Call, preferred: Optional[int]) -> int:
        destination = preferred if preferred is not None else self._acquire()
        if expr.name in _BUILTIN_OPCODES:
            # Semantic analysis guarantees the dimension argument is a literal
            # 0 or 1; it becomes the SPECIAL instruction's dimension immediate.
            dimension = expr.args[0]
            dim = dimension.value if isinstance(dimension, IntLiteral) else 0
            self.builder.emit(_BUILTIN_OPCODES[expr.name], rd=destination, imm=dim)
            return destination
        if expr.name in ("min", "max"):
            left = self._eval(expr.args[0])
            right = self._eval(expr.args[1])
            opcode = Opcode.MIN if expr.name == "min" else Opcode.MAX
            self.builder.emit(opcode, rd=destination, rs=left, rt=right)
            self._release(left)
            self._release(right)
            return destination
        raise CompilationError(f"unknown function {expr.name!r}")

    def _eval_unary(self, expr: UnaryOp, preferred: Optional[int]) -> int:
        operand = self._eval(expr.operand)
        destination = preferred if preferred is not None else self._acquire()
        if expr.op == "-":
            self.builder.emit(Opcode.SUB, rd=destination, rs=0, rt=operand)
        elif expr.op == "~":
            self.builder.emit(Opcode.XORI, rd=destination, rs=operand, imm=-1)
        elif expr.op == "!":
            self.builder.emit(Opcode.SLTU, rd=destination, rs=0, rt=operand)
            self.builder.emit(Opcode.XORI, rd=destination, rs=destination, imm=1)
        else:  # pragma: no cover - the parser only produces the three above
            raise CompilationError(f"unsupported unary operator {expr.op!r}")
        if operand != destination:
            self._release(operand)
        return destination

    def _eval_binary(self, expr: BinaryOp, preferred: Optional[int]) -> int:
        op = expr.op
        unsigned = self._unsigned(expr.left, expr.right)

        # Immediate forms for small right-hand constants (what the FGPU
        # compiler's strength reduction produces).
        if (
            isinstance(expr.right, IntLiteral)
            and op in _IMMEDIATE_BINOPS
            and fits_in_immediate(expr.right.value)
        ):
            left = self._eval(expr.left)
            destination = preferred if preferred is not None else self._acquire()
            self.builder.emit(_IMMEDIATE_BINOPS[op], rd=destination, rs=left, imm=expr.right.value)
            if left != destination:
                self._release(left)
            return destination
        if (
            isinstance(expr.right, IntLiteral)
            and op in ("-", ">>")
            and fits_in_immediate(expr.right.value)
            and fits_in_immediate(-expr.right.value)
        ):
            left = self._eval(expr.left)
            destination = preferred if preferred is not None else self._acquire()
            if op == "-":
                self.builder.emit(Opcode.ADDI, rd=destination, rs=left, imm=-expr.right.value)
            else:
                shift = Opcode.SRLI if unsigned else Opcode.SRAI
                self.builder.emit(shift, rd=destination, rs=left, imm=expr.right.value)
            if left != destination:
                self._release(left)
            return destination

        left = self._eval(expr.left)
        right = self._eval(expr.right)
        destination = preferred if preferred is not None else self._acquire()
        self._emit_binop(op, destination, left, right, unsigned)
        if left != destination:
            self._release(left)
        if right != destination:
            self._release(right)
        return destination

    def _emit_binop(self, op: str, rd: int, left: int, right: int, unsigned: bool) -> None:
        """Emit ``rd = left <op> right`` for any supported binary operator."""
        if op in _DIRECT_BINOPS:
            self.builder.emit(_DIRECT_BINOPS[op], rd=rd, rs=left, rt=right)
            return
        if op == ">>":
            self.builder.emit(Opcode.SRL if unsigned else Opcode.SRA, rd=rd, rs=left, rt=right)
            return
        compare = Opcode.SLTU if unsigned else Opcode.SLT
        if op == "<":
            self.builder.emit(compare, rd=rd, rs=left, rt=right)
        elif op == ">":
            self.builder.emit(compare, rd=rd, rs=right, rt=left)
        elif op == "<=":
            self.builder.emit(compare, rd=rd, rs=right, rt=left)
            self.builder.emit(Opcode.XORI, rd=rd, rs=rd, imm=1)
        elif op == ">=":
            self.builder.emit(compare, rd=rd, rs=left, rt=right)
            self.builder.emit(Opcode.XORI, rd=rd, rs=rd, imm=1)
        elif op == "==":
            self.builder.emit(Opcode.SUB, rd=rd, rs=left, rt=right)
            self.builder.emit(Opcode.SLTU, rd=rd, rs=0, rt=rd)
            self.builder.emit(Opcode.XORI, rd=rd, rs=rd, imm=1)
        elif op == "!=":
            self.builder.emit(Opcode.SUB, rd=rd, rs=left, rt=right)
            self.builder.emit(Opcode.SLTU, rd=rd, rs=0, rt=rd)
        elif op in ("&&", "||"):
            normalized_left = self._acquire()
            self.builder.emit(Opcode.SLTU, rd=normalized_left, rs=0, rt=left)
            self.builder.emit(Opcode.SLTU, rd=rd, rs=0, rt=right)
            combiner = Opcode.AND if op == "&&" else Opcode.OR
            self.builder.emit(combiner, rd=rd, rs=normalized_left, rt=rd)
            self._release(normalized_left)
        else:  # pragma: no cover - the parser only produces known operators
            raise CompilationError(f"unsupported binary operator {op!r}")

    def _element_address(self, expr: Index) -> int:
        """Byte address of ``buffer[index]`` (buffers hold 32-bit words).

        Global buffers add the pointer register; ``__local`` arrays add their
        static byte offset inside the workgroup's LRAM window.
        """
        index = self._eval(expr.index)
        address = self._acquire()
        self.builder.emit(Opcode.SLLI, rd=address, rs=index, imm=2)
        if self._local_symbol(expr.base) is not None:
            offset = self.builder.local_offset(expr.base)
            if offset:
                self.builder.emit(Opcode.ADDI, rd=address, rs=address, imm=offset)
        else:
            base = self._var_register(expr.base)
            self.builder.emit(Opcode.ADD, rd=address, rs=address, rt=base)
        if index != address:
            self._release(index)
        return address


def generate_ggpu_kernel(kernel: KernelDecl) -> Kernel:
    """Lower one analyzed kernel declaration to a G-GPU kernel."""
    return GGPUCodeGenerator(kernel).generate()
