"""Semantic analysis: symbol tables, type checking, and uniformity analysis.

Two jobs:

* **Type checking** -- every expression gets a :class:`~repro.cl.nodes.CType`;
  buffers may only be indexed, scalars may only be computed with; conditions
  must be scalars.
* **Uniformity analysis** -- every expression gets a ``varying`` flag that is
  True when its value may differ between the work-items of one wavefront.
  ``get_global_id``/``get_local_id`` and every value loaded from global memory
  are varying; a variable becomes varying when it is ever assigned a varying
  value *or* assigned under varying control flow (control dependence).  The
  G-GPU back end uses the flag to pick between plain wavefront-uniform
  branches and the execution-mask instructions, exactly the distinction the
  FGPU compiler has to make.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    CType,
    DeclStmt,
    Expr,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    KernelDecl,
    LocalDeclStmt,
    ReturnStmt,
    Stmt,
    Symbol,
    TranslationUnit,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from repro.errors import CompilationError

# Work-item builtins: name -> (returns varying value, number of arguments).
VARYING_BUILTINS = {"get_global_id": 1, "get_local_id": 1}
UNIFORM_BUILTINS = {
    "get_group_id": 1,
    "get_local_size": 1,
    "get_global_size": 1,
    "get_num_groups": 1,
}
VALUE_BUILTINS = {"min": 2, "max": 2}
ALL_BUILTINS = {**VARYING_BUILTINS, **UNIFORM_BUILTINS, **VALUE_BUILTINS}

COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("&&", "||")


def _error(message: str, node) -> CompilationError:
    return CompilationError(f"semantic error at {node.span}: {message}")


class KernelAnalyzer:
    """Analyzes one kernel in place (symbols, types, uniformity)."""

    def __init__(self, kernel: KernelDecl) -> None:
        self.kernel = kernel
        self.symbols: Dict[str, Symbol] = {}
        self._varying_vars: Set[str] = set()

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def analyze(self) -> None:
        """Run the full analysis and annotate the kernel in place."""
        self._collect_params()
        self._collect_locals(self.kernel.body)
        self._check_return_placement()
        # Uniformity is a fixed point: an assignment can make a variable
        # varying, which can make later (or earlier, through loops) uses
        # varying.  The lattice only grows, so iterating until no new varying
        # variable appears terminates quickly.
        while True:
            before = len(self._varying_vars)
            self._mark_varying(self.kernel.body, control_varying=False)
            if len(self._varying_vars) == before:
                break
        for name in self._varying_vars:
            self.symbols[name].varying = True
        # The final pass re-annotates every expression with its settled type
        # and uniformity so code generation sees consistent flags.
        self._annotate_statements(self.kernel.body)
        self.kernel.symbols = self.symbols

    # ------------------------------------------------------------------ #
    # Symbol collection
    # ------------------------------------------------------------------ #
    def _collect_params(self) -> None:
        for param in self.kernel.params:
            if param.name in self.symbols:
                raise _error(f"duplicate parameter {param.name!r}", param)
            self.symbols[param.name] = Symbol(
                name=param.name,
                ctype=param.ctype,
                is_pointer=param.is_pointer,
                is_param=True,
                span=param.span,
            )

    def _collect_locals(self, statements: Sequence[Stmt], top_level: bool = True) -> None:
        for statement in statements:
            if isinstance(statement, DeclStmt):
                self._declare_locals(statement)
            elif isinstance(statement, LocalDeclStmt):
                if not top_level:
                    raise _error(
                        "__local declarations are only allowed at kernel scope", statement
                    )
                self._declare_local_array(statement)
            elif isinstance(statement, IfStmt):
                self._collect_locals(statement.then_body, top_level=False)
                self._collect_locals(statement.else_body, top_level=False)
            elif isinstance(statement, WhileStmt):
                self._collect_locals(statement.body, top_level=False)
            elif isinstance(statement, ForStmt):
                if isinstance(statement.init, DeclStmt):
                    self._declare_locals(statement.init)
                self._collect_locals(statement.body, top_level=False)

    def _declare_locals(self, declaration: DeclStmt) -> None:
        for name in declaration.names:
            if name in self.symbols:
                raise _error(f"redeclaration of {name!r}", declaration)
            self.symbols[name] = Symbol(
                name=name,
                ctype=declaration.ctype,
                is_pointer=False,
                is_param=False,
                span=declaration.span,
            )

    def _declare_local_array(self, declaration: LocalDeclStmt) -> None:
        if declaration.name in self.symbols:
            raise _error(f"redeclaration of {declaration.name!r}", declaration)
        self.symbols[declaration.name] = Symbol(
            name=declaration.name,
            ctype=declaration.ctype,
            is_pointer=False,
            is_param=False,
            array_words=declaration.size,
            span=declaration.span,
        )

    def _check_return_placement(self) -> None:
        body = self.kernel.body
        for index, statement in enumerate(body):
            if isinstance(statement, ReturnStmt) and index != len(body) - 1:
                raise _error(
                    "return is only supported as the last top-level statement",
                    statement,
                )
        for statement in body:
            self._reject_nested_returns(statement)

    def _reject_nested_returns(self, statement: Stmt) -> None:
        children: List[Stmt] = []
        if isinstance(statement, IfStmt):
            children = list(statement.then_body) + list(statement.else_body)
        elif isinstance(statement, WhileStmt):
            children = list(statement.body)
        elif isinstance(statement, ForStmt):
            children = list(statement.body)
        for child in children:
            if isinstance(child, ReturnStmt):
                raise _error(
                    "return inside control flow is not supported (predicate the code instead)",
                    child,
                )
            self._reject_nested_returns(child)

    # ------------------------------------------------------------------ #
    # Uniformity fixed point
    # ------------------------------------------------------------------ #
    def _expr_varying(self, expr: Optional[Expr]) -> bool:
        if expr is None:
            return False
        if isinstance(expr, IntLiteral):
            return False
        if isinstance(expr, VarRef):
            return expr.name in self._varying_vars
        if isinstance(expr, UnaryOp):
            return self._expr_varying(expr.operand)
        if isinstance(expr, BinaryOp):
            return self._expr_varying(expr.left) or self._expr_varying(expr.right)
        if isinstance(expr, Index):
            # A global-memory load is conservatively varying: different lanes
            # read different addresses in every kernel of interest.
            return True
        if isinstance(expr, Call):
            if expr.name in VARYING_BUILTINS:
                return True
            if expr.name in UNIFORM_BUILTINS:
                return False
            return any(self._expr_varying(arg) for arg in expr.args)
        return True

    def _mark_varying(self, statements: Sequence[Stmt], control_varying: bool) -> None:
        for statement in statements:
            if isinstance(statement, DeclStmt):
                for name, init in zip(statement.names, statement.inits, strict=True):
                    if init is not None and (control_varying or self._expr_varying(init)):
                        self._varying_vars.add(name)
            elif isinstance(statement, AssignStmt):
                if isinstance(statement.target, VarRef):
                    if control_varying or self._expr_varying(statement.value):
                        self._varying_vars.add(statement.target.name)
                    elif statement.op != "=" and statement.target.name in self._varying_vars:
                        pass  # already varying
            elif isinstance(statement, IfStmt):
                branch_varying = control_varying or self._expr_varying(statement.condition)
                self._mark_varying(statement.then_body, branch_varying)
                self._mark_varying(statement.else_body, branch_varying)
            elif isinstance(statement, WhileStmt):
                loop_varying = control_varying or self._expr_varying(statement.condition)
                self._mark_varying(statement.body, loop_varying)
            elif isinstance(statement, ForStmt):
                if statement.init is not None:
                    self._mark_varying([statement.init], control_varying)
                loop_varying = control_varying or self._expr_varying(statement.condition)
                self._mark_varying(statement.body, loop_varying)
                if statement.step is not None:
                    self._mark_varying([statement.step], loop_varying)

    # ------------------------------------------------------------------ #
    # Type checking / annotation
    # ------------------------------------------------------------------ #
    def _symbol(self, name: str, node) -> Symbol:
        try:
            return self.symbols[name]
        except KeyError as exc:
            raise _error(f"undeclared identifier {name!r}", node) from exc

    def _annotate_expr(self, expr: Expr) -> CType:
        if isinstance(expr, IntLiteral):
            expr.ctype = CType.INT
            expr.varying = False
        elif isinstance(expr, VarRef):
            symbol = self._symbol(expr.name, expr)
            if symbol.is_local_array:
                raise _error(
                    f"local array {expr.name!r} can only be used with an index", expr
                )
            expr.ctype = CType.PTR if symbol.is_pointer else symbol.ctype
            expr.varying = expr.name in self._varying_vars
        elif isinstance(expr, UnaryOp):
            operand_type = self._annotate_expr(expr.operand)
            if operand_type is CType.PTR:
                raise _error(f"unary {expr.op!r} cannot be applied to a buffer", expr)
            expr.ctype = operand_type if expr.op != "!" else CType.INT
            expr.varying = expr.operand.varying
        elif isinstance(expr, BinaryOp):
            left = self._annotate_expr(expr.left)
            right = self._annotate_expr(expr.right)
            if left is CType.PTR or right is CType.PTR:
                raise _error(
                    f"operator {expr.op!r} cannot be applied to a buffer "
                    "(index it with [] instead)",
                    expr,
                )
            if expr.op in COMPARISON_OPS or expr.op in LOGICAL_OPS:
                expr.ctype = CType.INT
            else:
                expr.ctype = CType.UINT if CType.UINT in (left, right) else CType.INT
            expr.varying = expr.left.varying or expr.right.varying
        elif isinstance(expr, Index):
            symbol = self._symbol(expr.base, expr)
            if not symbol.is_pointer and not symbol.is_local_array:
                raise _error(f"{expr.base!r} is not a buffer and cannot be indexed", expr)
            index_type = self._annotate_expr(expr.index)
            if index_type is CType.PTR:
                raise _error("buffer index must be an integer expression", expr)
            expr.ctype = CType.INT
            expr.varying = True
        elif isinstance(expr, Call):
            if expr.name not in ALL_BUILTINS:
                raise _error(f"unknown function {expr.name!r}", expr)
            expected = ALL_BUILTINS[expr.name]
            if len(expr.args) != expected:
                raise _error(
                    f"{expr.name} expects {expected} argument(s), got {len(expr.args)}", expr
                )
            for arg in expr.args:
                if self._annotate_expr(arg) is CType.PTR:
                    raise _error(f"{expr.name} arguments must be integers", expr)
            if expr.name in VARYING_BUILTINS or expr.name in UNIFORM_BUILTINS:
                dimension = expr.args[0]
                if not isinstance(dimension, IntLiteral) or not 0 <= dimension.value <= 1:
                    raise _error(
                        f"{expr.name} requires a literal dimension 0 or 1 "
                        f"(rank-1 and rank-2 NDRanges)",
                        expr,
                    )
            expr.ctype = CType.UINT if expr.name in (set(VARYING_BUILTINS) | set(UNIFORM_BUILTINS)) else CType.INT
            expr.varying = expr.name in VARYING_BUILTINS or any(arg.varying for arg in expr.args)
        else:  # pragma: no cover - defensive
            raise _error(f"unsupported expression {type(expr).__name__}", expr)
        return expr.ctype

    def _annotate_statements(self, statements: Sequence[Stmt]) -> None:
        for statement in statements:
            if isinstance(statement, DeclStmt):
                for init in statement.inits:
                    if init is not None:
                        self._annotate_expr(init)
            elif isinstance(statement, AssignStmt):
                self._annotate_assignment(statement)
            elif isinstance(statement, IfStmt):
                if self._annotate_expr(statement.condition) is CType.PTR:
                    raise _error("if condition must be an integer expression", statement)
                self._annotate_statements(statement.then_body)
                self._annotate_statements(statement.else_body)
            elif isinstance(statement, WhileStmt):
                if self._annotate_expr(statement.condition) is CType.PTR:
                    raise _error("while condition must be an integer expression", statement)
                self._annotate_statements(statement.body)
            elif isinstance(statement, ForStmt):
                if statement.init is not None:
                    self._annotate_statements([statement.init])
                if statement.condition is not None:
                    if self._annotate_expr(statement.condition) is CType.PTR:
                        raise _error("for condition must be an integer expression", statement)
                self._annotate_statements(statement.body)
                if statement.step is not None:
                    self._annotate_statements([statement.step])
            elif isinstance(statement, (BarrierStmt, ReturnStmt, LocalDeclStmt)):
                continue
            else:  # pragma: no cover - defensive
                raise _error(f"unsupported statement {type(statement).__name__}", statement)

    def _annotate_assignment(self, statement: AssignStmt) -> None:
        target = statement.target
        if isinstance(target, VarRef):
            symbol = self._symbol(target.name, target)
            if symbol.is_pointer:
                raise _error(f"buffer parameter {target.name!r} cannot be reassigned", target)
            self._annotate_expr(target)
        elif isinstance(target, Index):
            self._annotate_expr(target)
        else:
            raise _error("assignment target must be a variable or buffer[index]", statement)
        if self._annotate_expr(statement.value) is CType.PTR:
            raise _error("cannot assign a buffer to a value", statement)


def analyze(unit: TranslationUnit) -> TranslationUnit:
    """Analyze every kernel of a translation unit in place and return it."""
    names: Set[str] = set()
    for kernel in unit.kernels:
        if kernel.name in names:
            raise CompilationError(
                f"semantic error at {kernel.span}: duplicate kernel name {kernel.name!r}"
            )
        names.add(kernel.name)
        KernelAnalyzer(kernel).analyze()
    return unit
