"""Compiler facade: source text in, executable kernels out.

:func:`compile_source` runs the front end once (lex, parse, analyze) and
returns a :class:`CLProgram` from which individual kernels can be lowered to
either target.  :func:`compile_kernel` / :func:`compile_kernel_to_riscv_case`
are one-call conveniences for the common single-kernel case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.kernel import Kernel
from repro.cl.codegen_ggpu import generate_ggpu_kernel
from repro.cl.codegen_riscv import generate_riscv_case
from repro.cl.nodes import KernelDecl, TranslationUnit
from repro.cl.parser import parse
from repro.cl.semantics import analyze
from repro.errors import CompilationError
from repro.kernels.library import GpuWorkload
from repro.riscv.programs.library import RiscvCase


@dataclass(frozen=True)
class CLKernelInfo:
    """Summary of one compiled kernel's interface (for reports and tests)."""

    name: str
    buffer_params: Tuple[str, ...]
    scalar_params: Tuple[str, ...]
    num_varying_vars: int

    @property
    def num_params(self) -> int:
        return len(self.buffer_params) + len(self.scalar_params)


#: Valid values of the ``check=`` policy of :func:`compile_source`.
CHECK_POLICIES = ("off", "warn", "error")


class CLProgram:
    """A parsed and analyzed OpenCL-C translation unit."""

    def __init__(self, unit: TranslationUnit, source: str) -> None:
        self._unit = unit
        self.source = source
        #: Filled by :meth:`analyze` (or by ``compile_source(check=...)``).
        self.findings = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kernel_names(self) -> List[str]:
        """Names of all kernels in the source, in declaration order."""
        return [kernel.name for kernel in self._unit.kernels]

    def declaration(self, kernel_name: Optional[str] = None) -> KernelDecl:
        """The analyzed AST of one kernel (defaults to the only/first kernel)."""
        if kernel_name is None:
            return self._unit.kernels[0]
        try:
            return self._unit.kernel(kernel_name)
        except KeyError as exc:
            raise CompilationError(
                f"no kernel named {kernel_name!r}; available: {self.kernel_names}"
            ) from exc

    def info(self, kernel_name: Optional[str] = None) -> CLKernelInfo:
        """Interface summary of one kernel."""
        declaration = self.declaration(kernel_name)
        buffers = tuple(param.name for param in declaration.params if param.is_pointer)
        scalars = tuple(param.name for param in declaration.params if not param.is_pointer)
        varying = sum(1 for symbol in declaration.symbols.values() if symbol.varying)
        return CLKernelInfo(
            name=declaration.name,
            buffer_params=buffers,
            scalar_params=scalars,
            num_varying_vars=varying,
        )

    # ------------------------------------------------------------------ #
    # Static analysis
    # ------------------------------------------------------------------ #
    def analyze(self):
        """Run the level-1 static verifier over every kernel.

        Returns the :class:`~repro.analysis.findings.AnalysisReport` and
        caches it on :attr:`findings`.  This never raises on findings; the
        ``check=`` policy of :func:`compile_source` decides what to do with
        them.
        """
        from repro.analysis.clcheck import check_unit

        if self.findings is None:
            self.findings = check_unit(self._unit)
        return self.findings

    # ------------------------------------------------------------------ #
    # Code generation
    # ------------------------------------------------------------------ #
    def to_ggpu_kernel(self, kernel_name: Optional[str] = None) -> Kernel:
        """Lower one kernel to the G-GPU SIMT ISA."""
        return generate_ggpu_kernel(self.declaration(kernel_name))

    def to_riscv_case(
        self,
        workload: GpuWorkload,
        kernel_name: Optional[str] = None,
        name: Optional[str] = None,
        memory_bytes: int = 32 * 1024,
    ) -> RiscvCase:
        """Lower one kernel to a scalar RV32IM program bound to ``workload``."""
        return generate_riscv_case(
            self.declaration(kernel_name), workload, name=name, memory_bytes=memory_bytes
        )


def compile_source(source: str, check: str = "off") -> CLProgram:
    """Lex, parse, and analyze OpenCL-C source text.

    ``check`` gates the static kernel verifier into compilation:

    * ``"off"`` (default) — no verification; output is byte-identical to a
      verifier-less compile.
    * ``"warn"`` — run the verifier and store its report on
      ``CLProgram.findings`` without failing.
    * ``"error"`` — additionally raise :class:`CompilationError` when any
      error-severity finding is present.
    """
    if check not in CHECK_POLICIES:
        raise CompilationError(
            f"unknown check policy {check!r}; expected one of {CHECK_POLICIES}"
        )
    if not source or not source.strip():
        raise CompilationError("1:1: the kernel source is empty")
    unit = analyze(parse(source))
    program = CLProgram(unit, source)
    if check != "off":
        report = program.analyze()
        if check == "error" and not report.clean:
            preview = "; ".join(f.render() for f in report.errors[:3])
            raise CompilationError(
                f"static verification failed with {len(report.errors)} "
                f"error-severity finding(s): {preview}"
            )
    return program


def compile_kernel(source: str, kernel_name: Optional[str] = None) -> Kernel:
    """Compile one kernel of ``source`` to the G-GPU SIMT ISA."""
    return compile_source(source).to_ggpu_kernel(kernel_name)


def compile_kernel_to_riscv_case(
    source: str,
    workload: GpuWorkload,
    kernel_name: Optional[str] = None,
    name: Optional[str] = None,
    memory_bytes: int = 32 * 1024,
) -> RiscvCase:
    """Compile one kernel of ``source`` for the scalar RISC-V baseline."""
    return compile_source(source).to_riscv_case(
        workload, kernel_name=kernel_name, name=name, memory_bytes=memory_bytes
    )
