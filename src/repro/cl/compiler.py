"""Compiler facade: source text in, executable kernels out.

:func:`compile_source` runs the front end once (lex, parse, analyze) and
returns a :class:`CLProgram` from which individual kernels can be lowered to
either target.  :func:`compile_kernel` / :func:`compile_kernel_to_riscv_case`
are one-call conveniences for the common single-kernel case.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.arch.kernel import Kernel
from repro.cl.codegen_ggpu import generate_ggpu_kernel
from repro.cl.codegen_riscv import generate_riscv_case
from repro.cl.nodes import KernelDecl, TranslationUnit
from repro.cl.parser import parse
from repro.cl.semantics import analyze
from repro.errors import CompilationError
from repro.kernels.library import GpuWorkload
from repro.riscv.programs.library import RiscvCase


@dataclass(frozen=True)
class CLKernelInfo:
    """Summary of one compiled kernel's interface (for reports and tests)."""

    name: str
    buffer_params: Tuple[str, ...]
    scalar_params: Tuple[str, ...]
    num_varying_vars: int

    @property
    def num_params(self) -> int:
        return len(self.buffer_params) + len(self.scalar_params)


class CLProgram:
    """A parsed and analyzed OpenCL-C translation unit."""

    def __init__(self, unit: TranslationUnit, source: str) -> None:
        self._unit = unit
        self.source = source

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def kernel_names(self) -> List[str]:
        """Names of all kernels in the source, in declaration order."""
        return [kernel.name for kernel in self._unit.kernels]

    def declaration(self, kernel_name: Optional[str] = None) -> KernelDecl:
        """The analyzed AST of one kernel (defaults to the only/first kernel)."""
        if kernel_name is None:
            return self._unit.kernels[0]
        try:
            return self._unit.kernel(kernel_name)
        except KeyError as exc:
            raise CompilationError(
                f"no kernel named {kernel_name!r}; available: {self.kernel_names}"
            ) from exc

    def info(self, kernel_name: Optional[str] = None) -> CLKernelInfo:
        """Interface summary of one kernel."""
        declaration = self.declaration(kernel_name)
        buffers = tuple(param.name for param in declaration.params if param.is_pointer)
        scalars = tuple(param.name for param in declaration.params if not param.is_pointer)
        varying = sum(1 for symbol in declaration.symbols.values() if symbol.varying)
        return CLKernelInfo(
            name=declaration.name,
            buffer_params=buffers,
            scalar_params=scalars,
            num_varying_vars=varying,
        )

    # ------------------------------------------------------------------ #
    # Code generation
    # ------------------------------------------------------------------ #
    def to_ggpu_kernel(self, kernel_name: Optional[str] = None) -> Kernel:
        """Lower one kernel to the G-GPU SIMT ISA."""
        return generate_ggpu_kernel(self.declaration(kernel_name))

    def to_riscv_case(
        self,
        workload: GpuWorkload,
        kernel_name: Optional[str] = None,
        name: Optional[str] = None,
        memory_bytes: int = 32 * 1024,
    ) -> RiscvCase:
        """Lower one kernel to a scalar RV32IM program bound to ``workload``."""
        return generate_riscv_case(
            self.declaration(kernel_name), workload, name=name, memory_bytes=memory_bytes
        )


def compile_source(source: str) -> CLProgram:
    """Lex, parse, and analyze OpenCL-C source text."""
    if not source or not source.strip():
        raise CompilationError("the kernel source is empty")
    unit = analyze(parse(source))
    return CLProgram(unit, source)


def compile_kernel(source: str, kernel_name: Optional[str] = None) -> Kernel:
    """Compile one kernel of ``source`` to the G-GPU SIMT ISA."""
    return compile_source(source).to_ggpu_kernel(kernel_name)


def compile_kernel_to_riscv_case(
    source: str,
    workload: GpuWorkload,
    kernel_name: Optional[str] = None,
    name: Optional[str] = None,
    memory_bytes: int = 32 * 1024,
) -> RiscvCase:
    """Compile one kernel of ``source`` for the scalar RISC-V baseline."""
    return compile_source(source).to_riscv_case(
        workload, kernel_name=kernel_name, name=name, memory_bytes=memory_bytes
    )
