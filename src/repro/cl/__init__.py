"""OpenCL-C subset compiler for the G-GPU.

The FGPU that G-GPU derives from is programmed with OpenCL kernels compiled by
an LLVM back end; the host only needs standard OpenCL API calls.  This package
is the reproduction of that software stack: a small, self-contained compiler
for the OpenCL-C subset the paper's seven micro-benchmarks need.

Pipeline::

    source text --(lexer)--> tokens --(parser)--> AST --(semantics)--> typed,
    uniformity-annotated AST --(codegen)--> executable program

Two back ends are provided, mirroring the paper's evaluation targets:

* :func:`compile_kernel` lowers a kernel to the G-GPU SIMT ISA (through the
  :class:`~repro.arch.kernel.KernelBuilder`), with divergence handled via the
  execution-mask instructions when a condition is lane-varying and with plain
  branches when it is wavefront-uniform.
* :func:`compile_kernel_to_riscv_case` lowers the same kernel to a scalar
  RV32IM program that iterates over the NDRange in a software loop -- the
  stand-in for compiling the C version of the benchmark with GCC for the
  RISC-V baseline.

The language subset: ``__kernel void`` functions, ``__global int*``/``uint*``
buffer parameters, scalar ``int``/``uint`` parameters, local variable
declarations, ``__local int name[SIZE];`` per-workgroup scratchpad arrays
(kernel scope, constant size; lowered to LRAM-window accesses on the G-GPU
and to data-memory regions on the RISC-V), assignments (including the
compound forms), ``if``/``else``, ``for``, ``while``, ``barrier()``, integer
arithmetic/logic/comparison operators, array subscripting on buffer
parameters and local arrays, and the OpenCL work-item builtins
(``get_global_id`` and friends).
"""

from repro.cl.compiler import (
    CLKernelInfo,
    CLProgram,
    compile_kernel,
    compile_kernel_to_riscv_case,
    compile_source,
)
from repro.cl.sources import BENCHMARK_CL_SOURCES, get_benchmark_source

__all__ = [
    "CLKernelInfo",
    "CLProgram",
    "compile_kernel",
    "compile_kernel_to_riscv_case",
    "compile_source",
    "BENCHMARK_CL_SOURCES",
    "get_benchmark_source",
]
