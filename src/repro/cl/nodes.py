"""Abstract syntax tree of the OpenCL-C subset.

The node classes are plain dataclasses produced by :mod:`repro.cl.parser` and
annotated in place by :mod:`repro.cl.semantics` (every expression gets a
``ctype`` and a ``varying`` flag, every kernel gets its symbol table).  The
code generators consume the annotated tree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class CType(enum.Enum):
    """The three value types of the subset."""

    INT = "int"
    UINT = "uint"
    PTR = "ptr"  # __global int* / __global uint*

    @property
    def is_scalar(self) -> bool:
        """Whether the type is an integer value (not a buffer pointer)."""
        return self is not CType.PTR


@dataclass
class SourceSpan:
    """Line/column of the token a node was built from (for diagnostics)."""

    line: int = 0
    column: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.line}:{self.column}"


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #
@dataclass
class Expr:
    """Base class of all expressions.

    ``ctype`` and ``varying`` are filled in by semantic analysis: ``varying``
    is True when the value may differ between work-items of the same
    wavefront, which is what decides between plain branches and
    execution-mask-based control flow in the G-GPU back end.
    """

    span: SourceSpan = field(default_factory=SourceSpan, kw_only=True)
    ctype: Optional[CType] = field(default=None, kw_only=True)
    varying: bool = field(default=False, kw_only=True)


@dataclass
class IntLiteral(Expr):
    """An integer constant."""

    value: int = 0


@dataclass
class VarRef(Expr):
    """A reference to a parameter or local variable."""

    name: str = ""


@dataclass
class UnaryOp(Expr):
    """``-x``, ``!x``, ``~x``."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class BinaryOp(Expr):
    """A binary arithmetic, logic, shift, or comparison operation."""

    op: str = ""
    left: Optional[Expr] = None
    right: Optional[Expr] = None


@dataclass
class Index(Expr):
    """``buffer[index]`` -- a load when used as a value, a store as an lvalue."""

    base: str = ""
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    """A call to one of the OpenCL work-item builtins (or ``min``/``max``)."""

    name: str = ""
    args: Tuple[Expr, ...] = ()


# --------------------------------------------------------------------------- #
# Statements
# --------------------------------------------------------------------------- #
@dataclass
class Stmt:
    """Base class of all statements."""

    span: SourceSpan = field(default_factory=SourceSpan, kw_only=True)


@dataclass
class DeclStmt(Stmt):
    """``int x = expr;`` (possibly several declarators)."""

    ctype: CType = CType.INT
    names: Tuple[str, ...] = ()
    inits: Tuple[Optional[Expr], ...] = ()


@dataclass
class AssignStmt(Stmt):
    """``lvalue op= expr`` where the lvalue is a variable or ``buffer[index]``."""

    target: Optional[Expr] = None  # VarRef or Index
    op: str = "="  # "=", "+=", "-=", ...
    value: Optional[Expr] = None


@dataclass
class IfStmt(Stmt):
    """``if (cond) then [else otherwise]``."""

    condition: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    has_else: bool = False


@dataclass
class WhileStmt(Stmt):
    """``while (cond) body``."""

    condition: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class ForStmt(Stmt):
    """``for (init; cond; step) body`` -- desugared to a while loop by codegen."""

    init: Optional[Stmt] = None  # DeclStmt or AssignStmt
    condition: Optional[Expr] = None
    step: Optional[Stmt] = None  # AssignStmt
    body: List[Stmt] = field(default_factory=list)


@dataclass
class LocalDeclStmt(Stmt):
    """``__local int name[SIZE];`` -- a per-workgroup scratchpad array.

    Only allowed at kernel scope (like OpenCL's local declarations); the
    size must be an integer constant because the LRAM window is allocated
    statically by the compiler.
    """

    ctype: CType = CType.INT
    name: str = ""
    size: int = 0


@dataclass
class BarrierStmt(Stmt):
    """``barrier(...)`` -- a workgroup barrier."""


@dataclass
class ReturnStmt(Stmt):
    """``return;`` -- only allowed as the last top-level statement."""


# --------------------------------------------------------------------------- #
# Declarations
# --------------------------------------------------------------------------- #
@dataclass
class Param:
    """One kernel parameter."""

    name: str
    ctype: CType
    is_pointer: bool
    span: SourceSpan = field(default_factory=SourceSpan)


@dataclass
class KernelDecl:
    """One ``__kernel void`` function."""

    name: str
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    span: SourceSpan = field(default_factory=SourceSpan)
    # Filled in by semantic analysis.
    symbols: Dict[str, "Symbol"] = field(default_factory=dict)

    def param(self, name: str) -> Param:
        """Look a parameter up by name."""
        for candidate in self.params:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


@dataclass
class TranslationUnit:
    """A parsed source file (one or more kernels)."""

    kernels: List[KernelDecl] = field(default_factory=list)

    def kernel(self, name: str) -> KernelDecl:
        """Look a kernel up by name."""
        for candidate in self.kernels:
            if candidate.name == name:
                return candidate
        raise KeyError(name)


@dataclass
class Symbol:
    """One entry of a kernel's symbol table.

    ``array_words`` is non-zero exactly for ``__local`` arrays, which are
    indexable like buffers but live in the workgroup's LRAM window.
    """

    name: str
    ctype: CType
    is_pointer: bool
    is_param: bool
    varying: bool = False
    array_words: int = 0
    span: SourceSpan = field(default_factory=SourceSpan)

    @property
    def is_local_array(self) -> bool:
        return self.array_words > 0
