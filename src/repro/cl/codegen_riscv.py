"""RISC-V back end: lower an analyzed kernel AST to a scalar RV32IM program.

The paper's baseline runs the C version of each benchmark on a CV32E40P-class
RV32IM core.  This back end is the stand-in for that GCC flow: the kernel body
is wrapped in a software loop over the NDRange (``for gid in range(global_size)``)
and each work-item executes sequentially.  The work-item builtins are resolved
against that loop (``get_global_id`` is the loop counter, ``get_local_id`` is
``gid % workgroup_size``, and so on), and ``barrier()`` becomes a no-op because
a single in-order core is always "synchronized".

Rank-2 launches lower to a row-major loop *nest* in workgroup-major order —
``for wg1: for wg0: for lid1: for lid0: body`` — so the work-items of one
workgroup run contiguously (lowest local id first) before the next workgroup
starts.  Each dimension's id lives in its own register and the builtins
resolve per dimension; the rank-1 path is emitted exactly as before the nest
existed, so every 1-D compiled program is bit-identical.

``__local`` arrays become zero-initialized data-memory regions shared by all
workgroups of the serialized loop.  That serialization is faithful exactly
for kernels whose cross-work-item ``__local`` reads only depend on work-items
with lower (or equal) local ids — "backward" dependencies, which the
gid-major loop order preserves.  The benchmark sources in
:mod:`repro.cl.sources` are written in that serialization-safe form; the
fuzz tests (``tests/test_cl_fuzz.py``) pin the equivalence.

The generated :class:`~repro.riscv.programs.library.RiscvCase` plugs into the
same evaluation harness as the hand-written scalar programs, so compiled and
hand-written baselines can be compared cycle for cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    CType,
    DeclStmt,
    Expr,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    KernelDecl,
    LocalDeclStmt,
    ReturnStmt,
    Stmt,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from repro.errors import CompilationError
from repro.kernels.library import GpuWorkload
from repro.riscv.assembler import RvAssembler, RvProgram, ZERO
from repro.riscv.isa import RvOpcode
from repro.riscv.programs.library import RiscvCase, load_workload_into_memory

# Registers x5-x31 are available to the generator (x0 is the constant zero,
# x1-x4 are left for the ABI even though the generated programs never call).
_AVAILABLE_REGISTERS = tuple(range(5, 32))

_DIRECT_BINOPS: Dict[str, RvOpcode] = {
    "+": RvOpcode.ADD,
    "-": RvOpcode.SUB,
    "*": RvOpcode.MUL,
    "/": RvOpcode.DIV,
    "%": RvOpcode.REM,
    "&": RvOpcode.AND,
    "|": RvOpcode.OR,
    "^": RvOpcode.XOR,
    "<<": RvOpcode.SLL,
}

_IMMEDIATE_BINOPS: Dict[str, RvOpcode] = {
    "+": RvOpcode.ADDI,
    "&": RvOpcode.ANDI,
    "|": RvOpcode.ORI,
    "^": RvOpcode.XORI,
}


def _fits_i12(value: int) -> bool:
    return -2048 <= value <= 2047


class RiscvCodeGenerator:
    """Generates a scalar RV32IM program for one kernel and one launch."""

    def __init__(
        self,
        kernel: KernelDecl,
        param_values: Dict[str, int],
        global_size,
        workgroup_size,
        name: Optional[str] = None,
        local_addresses: Optional[Dict[str, int]] = None,
    ) -> None:
        global_shape = self._as_shape(global_size)
        workgroup_shape = self._as_shape(workgroup_size)
        if len(global_shape) != len(workgroup_shape):
            raise CompilationError(
                f"global shape {global_shape} and workgroup shape {workgroup_shape} "
                f"must have the same rank"
            )
        for extent, local in zip(global_shape, workgroup_shape):
            if extent % local != 0:
                raise CompilationError(
                    f"global shape {global_shape} is not divisible by workgroup "
                    f"shape {workgroup_shape}"
                )
        self.kernel = kernel
        self.param_values = dict(param_values)
        self.local_addresses = dict(local_addresses or {})
        self.global_shape = global_shape
        self.workgroup_shape = workgroup_shape
        self.rank = len(global_shape)
        self.global_size = global_shape[0] if self.rank == 1 else None
        self.workgroup_size = workgroup_shape[0] if self.rank == 1 else None
        self.asm = RvAssembler(name or f"{kernel.name}_riscv")
        self._free: List[int] = list(_AVAILABLE_REGISTERS)
        self._var_regs: Dict[str, int] = {}
        self._temp_regs: set = set()
        # Loop bookkeeping registers.  The rank-1 trio is reserved in the
        # exact order the 1-D generator always used, keeping its register
        # assignment (and therefore every compiled 1-D program) unchanged.
        if self.rank == 1:
            self._gid_reg = self._reserve()
            self._gsize_reg = self._reserve()
            self._wgsize_reg = self._reserve()
        else:
            self._wg_regs = (self._reserve(), self._reserve())
            self._lid_regs = (self._reserve(), self._reserve())
            self._gid_regs = (self._reserve(), self._reserve())
            self._wgbase_regs = (self._reserve(), self._reserve())
            self._ws_regs = (self._reserve(), self._reserve())
            self._nwg_regs = (self._reserve(), self._reserve())

    @staticmethod
    def _as_shape(value) -> tuple:
        if isinstance(value, (tuple, list)):
            shape = tuple(int(extent) for extent in value)
        else:
            shape = (int(value),)
        if not 1 <= len(shape) <= 2:
            raise CompilationError(f"NDRange rank must be 1 or 2, got {len(shape)}")
        if any(extent <= 0 for extent in shape):
            raise CompilationError("NDRange sizes must be positive")
        return shape

    # ------------------------------------------------------------------ #
    # Register management
    # ------------------------------------------------------------------ #
    def _reserve(self) -> int:
        if not self._free:
            raise CompilationError(
                f"kernel {self.kernel.name!r} needs more registers than RV32 provides"
            )
        return self._free.pop(0)

    def _acquire(self) -> int:
        register = self._reserve()
        self._temp_regs.add(register)
        return register

    def _release(self, register: Optional[int]) -> None:
        if register is not None and register in self._temp_regs:
            self._temp_regs.discard(register)
            self._free.insert(0, register)

    def _var_register(self, name: str) -> int:
        try:
            return self._var_regs[name]
        except KeyError as exc:
            raise CompilationError(f"no register allocated for {name!r}") from exc

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def generate(self) -> RvProgram:
        """Emit the work-item loop (or rank-2 loop nest) and the lowered body."""
        self._allocate_variables()
        self._load_parameters()
        if self.rank == 1:
            self.asm.li(self._gid_reg, 0)
            self.asm.li(self._gsize_reg, self.global_size)
            self.asm.li(self._wgsize_reg, self.workgroup_size)
            loop = self.asm.unique_label("wi_loop")
            end = self.asm.unique_label("wi_end")
            self.asm.label(loop)
            self.asm.emit(RvOpcode.BGE, rs1=self._gid_reg, rs2=self._gsize_reg, label=end)
            self._gen_statements(self.kernel.body)
            self.asm.emit(RvOpcode.ADDI, rd=self._gid_reg, rs1=self._gid_reg, imm=1)
            self.asm.j(loop)
            self.asm.label(end)
            self.asm.halt()
            return self.asm.assemble()
        self._generate_rank2_nest()
        self.asm.halt()
        return self.asm.assemble()

    def _generate_rank2_nest(self) -> None:
        """Row-major, workgroup-major loop nest for a rank-2 launch.

        Workgroups execute one after another (wg1-major, wg0 within), and the
        work-items of each workgroup run in row-major local-id order.  This
        keeps the serialization-safe ``__local`` contract of the 1-D loop: a
        work-item only observes local slots already written by work-items
        with lower local ids of its *own* workgroup.
        """
        ws0, ws1 = self.workgroup_shape
        nwg0 = self.global_shape[0] // ws0
        nwg1 = self.global_shape[1] // ws1
        self.asm.li(self._ws_regs[0], ws0)
        self.asm.li(self._ws_regs[1], ws1)
        self.asm.li(self._nwg_regs[0], nwg0)
        self.asm.li(self._nwg_regs[1], nwg1)
        loops = (
            # (counter, bound, label stem) from outermost to innermost.
            (self._wg_regs[1], self._nwg_regs[1], "wg1"),
            (self._wg_regs[0], self._nwg_regs[0], "wg0"),
            (self._lid_regs[1], self._ws_regs[1], "lid1"),
            (self._lid_regs[0], self._ws_regs[0], "lid0"),
        )
        opened = []
        for counter, bound, stem in loops:
            start = self.asm.unique_label(f"{stem}_loop")
            end = self.asm.unique_label(f"{stem}_end")
            self.asm.li(counter, 0)
            self.asm.label(start)
            self.asm.emit(RvOpcode.BGE, rs1=counter, rs2=bound, label=end)
            opened.append((counter, start, end))
            if stem == "wg1":
                self.asm.emit(
                    RvOpcode.MUL,
                    rd=self._wgbase_regs[1],
                    rs1=self._wg_regs[1],
                    rs2=self._ws_regs[1],
                )
            elif stem == "wg0":
                self.asm.emit(
                    RvOpcode.MUL,
                    rd=self._wgbase_regs[0],
                    rs1=self._wg_regs[0],
                    rs2=self._ws_regs[0],
                )
            elif stem == "lid1":
                self.asm.emit(
                    RvOpcode.ADD,
                    rd=self._gid_regs[1],
                    rs1=self._wgbase_regs[1],
                    rs2=self._lid_regs[1],
                )
        self.asm.emit(
            RvOpcode.ADD,
            rd=self._gid_regs[0],
            rs1=self._wgbase_regs[0],
            rs2=self._lid_regs[0],
        )
        self._gen_statements(self.kernel.body)
        for counter, start, end in reversed(opened):
            self.asm.emit(RvOpcode.ADDI, rd=counter, rs1=counter, imm=1)
            self.asm.j(start)
            self.asm.label(end)

    def _allocate_variables(self) -> None:
        for param in self.kernel.params:
            self._var_regs[param.name] = self._reserve()
        for name, symbol in self.kernel.symbols.items():
            if not symbol.is_param:
                self._var_regs[name] = self._reserve()

    def _load_parameters(self) -> None:
        for param in self.kernel.params:
            if param.name not in self.param_values:
                raise CompilationError(
                    f"no value provided for kernel parameter {param.name!r}"
                )
            self.asm.li(self._var_regs[param.name], int(self.param_values[param.name]))
        # __local arrays are backed by zero-initialized data-memory regions;
        # their base addresses behave like ordinary buffer pointers.  One
        # shared instance serves every workgroup of the serialized work-item
        # loop, which is correct for kernels whose work-items write their
        # local slots before reading them (the serialization-safe subset).
        for name, symbol in self.kernel.symbols.items():
            if symbol.is_local_array:
                if name not in self.local_addresses:
                    raise CompilationError(f"no backing store for __local array {name!r}")
                self.asm.li(self._var_regs[name], int(self.local_addresses[name]))

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _gen_statements(self, statements: List[Stmt]) -> None:
        for statement in statements:
            self._gen_statement(statement)

    def _gen_statement(self, statement: Stmt) -> None:
        if isinstance(statement, DeclStmt):
            for name, init in zip(statement.names, statement.inits, strict=True):
                if init is not None:
                    self._gen_assign_to_var(name, init)
        elif isinstance(statement, AssignStmt):
            self._gen_assignment(statement)
        elif isinstance(statement, IfStmt):
            self._gen_if(statement)
        elif isinstance(statement, WhileStmt):
            self._gen_loop(statement.condition, statement.body, step=None)
        elif isinstance(statement, ForStmt):
            if statement.init is not None:
                self._gen_statement(statement.init)
            self._gen_loop(statement.condition, statement.body, step=statement.step)
        elif isinstance(statement, (BarrierStmt, ReturnStmt, LocalDeclStmt)):
            pass  # barriers are no-ops on a single in-order core; local
            # arrays were materialized as data-memory regions up front
        else:  # pragma: no cover - defensive
            raise CompilationError(f"unsupported statement {type(statement).__name__}")

    def _gen_assign_to_var(self, name: str, value: Expr) -> None:
        destination = self._var_register(name)
        register = self._eval(value, preferred=destination)
        if register != destination:
            self.asm.mv(destination, register)
        self._release(register)

    def _gen_assignment(self, statement: AssignStmt) -> None:
        target = statement.target
        if isinstance(target, VarRef):
            if statement.op == "=":
                self._gen_assign_to_var(target.name, statement.value)
                return
            destination = self._var_register(target.name)
            value = self._eval(statement.value)
            self._emit_binop(statement.op[:-1], destination, destination, value,
                             unsigned=_unsigned(target, statement.value))
            self._release(value)
            return
        if isinstance(target, Index):
            address = self._element_address(target)
            if statement.op == "=":
                value = self._eval(statement.value)
            else:
                current = self._acquire()
                self.asm.emit(RvOpcode.LW, rd=current, rs1=address, imm=0)
                rhs = self._eval(statement.value)
                self._emit_binop(statement.op[:-1], current, current, rhs,
                                 unsigned=_unsigned(target, statement.value))
                self._release(rhs)
                value = current
            self.asm.emit(RvOpcode.SW, rs1=address, rs2=value, imm=0)
            self._release(value)
            self._release(address)
            return
        raise CompilationError("assignment target must be a variable or buffer[index]")

    def _gen_if(self, statement: IfStmt) -> None:
        condition = self._eval(statement.condition, as_bool=True)
        else_label = self.asm.unique_label("else")
        end_label = self.asm.unique_label("endif")
        self.asm.emit(RvOpcode.BEQ, rs1=condition, rs2=ZERO, label=else_label)
        self._release(condition)
        self._gen_statements(statement.then_body)
        if statement.has_else:
            self.asm.j(end_label)
            self.asm.label(else_label)
            self._gen_statements(statement.else_body)
            self.asm.label(end_label)
        else:
            self.asm.label(else_label)

    def _gen_loop(self, condition: Optional[Expr], body: List[Stmt], step: Optional[Stmt]) -> None:
        if condition is None:
            raise CompilationError("loops without a condition are not supported")
        start = self.asm.unique_label("loop")
        end = self.asm.unique_label("loop_end")
        self.asm.label(start)
        register = self._eval(condition, as_bool=True)
        self.asm.emit(RvOpcode.BEQ, rs1=register, rs2=ZERO, label=end)
        self._release(register)
        self._gen_statements(body)
        if step is not None:
            self._gen_statement(step)
        self.asm.j(start)
        self.asm.label(end)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _eval(self, expr: Expr, preferred: Optional[int] = None, as_bool: bool = False) -> int:
        register = self._eval_value(expr, preferred)
        if not as_bool:
            return register
        if isinstance(expr, BinaryOp) and expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
            return register
        if isinstance(expr, UnaryOp) and expr.op == "!":
            return register
        normalized = self._acquire()
        self.asm.emit(RvOpcode.SLTU, rd=normalized, rs1=ZERO, rs2=register)
        self._release(register)
        return normalized

    def _eval_value(self, expr: Expr, preferred: Optional[int] = None) -> int:
        if isinstance(expr, IntLiteral):
            destination = preferred if preferred is not None else self._acquire()
            self.asm.li(destination, expr.value)
            return destination
        if isinstance(expr, VarRef):
            return self._var_register(expr.name)
        if isinstance(expr, Call):
            return self._eval_call(expr, preferred)
        if isinstance(expr, Index):
            address = self._element_address(expr)
            destination = preferred if preferred is not None else self._acquire()
            self.asm.emit(RvOpcode.LW, rd=destination, rs1=address, imm=0)
            self._release(address)
            return destination
        if isinstance(expr, UnaryOp):
            return self._eval_unary(expr, preferred)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, preferred)
        raise CompilationError(f"unsupported expression {type(expr).__name__}")

    _ID_BUILTINS = (
        "get_global_id",
        "get_global_size",
        "get_local_size",
        "get_local_id",
        "get_group_id",
        "get_num_groups",
    )

    def _builtin_dim(self, expr: Call) -> int:
        """Literal dimension argument of a work-item builtin, rank-checked."""
        dimension = expr.args[0]
        dim = dimension.value if isinstance(dimension, IntLiteral) else 0
        if dim >= self.rank:
            raise CompilationError(
                f"{expr.name} queries dimension {dim} of a rank-{self.rank} launch"
            )
        return dim

    def _eval_call(self, expr: Call, preferred: Optional[int]) -> int:
        destination = preferred if preferred is not None else self._acquire()
        name = expr.name
        if name in self._ID_BUILTINS and self.rank == 2:
            dim = self._builtin_dim(expr)
            if name == "get_global_id":
                self.asm.mv(destination, self._gid_regs[dim])
            elif name == "get_global_size":
                self.asm.li(destination, self.global_shape[dim])
            elif name == "get_local_size":
                self.asm.mv(destination, self._ws_regs[dim])
            elif name == "get_local_id":
                self.asm.mv(destination, self._lid_regs[dim])
            elif name == "get_group_id":
                self.asm.mv(destination, self._wg_regs[dim])
            else:  # get_num_groups
                self.asm.mv(destination, self._nwg_regs[dim])
            return destination
        if name in self._ID_BUILTINS:
            self._builtin_dim(expr)
        if name == "get_global_id":
            self.asm.mv(destination, self._gid_reg)
        elif name == "get_global_size":
            self.asm.mv(destination, self._gsize_reg)
        elif name == "get_local_size":
            self.asm.mv(destination, self._wgsize_reg)
        elif name == "get_local_id":
            self.asm.emit(RvOpcode.REMU, rd=destination, rs1=self._gid_reg, rs2=self._wgsize_reg)
        elif name == "get_group_id":
            self.asm.emit(RvOpcode.DIVU, rd=destination, rs1=self._gid_reg, rs2=self._wgsize_reg)
        elif name == "get_num_groups":
            self.asm.emit(RvOpcode.DIVU, rd=destination, rs1=self._gsize_reg, rs2=self._wgsize_reg)
        elif name in ("min", "max"):
            left = self._eval(expr.args[0])
            right = self._eval(expr.args[1])
            skip = self.asm.unique_label("minmax")
            self.asm.mv(destination, right)
            branch = RvOpcode.BGE if name == "min" else RvOpcode.BLT
            self.asm.emit(branch, rs1=left, rs2=right, label=skip)
            self.asm.mv(destination, left)
            self.asm.label(skip)
            self._release(left)
            self._release(right)
        else:
            raise CompilationError(f"unknown function {name!r}")
        return destination

    def _eval_unary(self, expr: UnaryOp, preferred: Optional[int]) -> int:
        operand = self._eval(expr.operand)
        destination = preferred if preferred is not None else self._acquire()
        if expr.op == "-":
            self.asm.emit(RvOpcode.SUB, rd=destination, rs1=ZERO, rs2=operand)
        elif expr.op == "~":
            self.asm.emit(RvOpcode.XORI, rd=destination, rs1=operand, imm=-1)
        elif expr.op == "!":
            self.asm.emit(RvOpcode.SLTIU, rd=destination, rs1=operand, imm=1)
        else:  # pragma: no cover - the parser only produces the three above
            raise CompilationError(f"unsupported unary operator {expr.op!r}")
        if operand != destination:
            self._release(operand)
        return destination

    def _eval_binary(self, expr: BinaryOp, preferred: Optional[int]) -> int:
        op = expr.op
        unsigned = _unsigned(expr.left, expr.right)
        if (
            isinstance(expr.right, IntLiteral)
            and op in _IMMEDIATE_BINOPS
            and _fits_i12(expr.right.value)
        ):
            left = self._eval(expr.left)
            destination = preferred if preferred is not None else self._acquire()
            self.asm.emit(_IMMEDIATE_BINOPS[op], rd=destination, rs1=left, imm=expr.right.value)
            if left != destination:
                self._release(left)
            return destination
        if isinstance(expr.right, IntLiteral) and op in ("<<", ">>") and 0 <= expr.right.value < 32:
            left = self._eval(expr.left)
            destination = preferred if preferred is not None else self._acquire()
            if op == "<<":
                self.asm.emit(RvOpcode.SLLI, rd=destination, rs1=left, imm=expr.right.value)
            else:
                shift = RvOpcode.SRLI if unsigned else RvOpcode.SRAI
                self.asm.emit(shift, rd=destination, rs1=left, imm=expr.right.value)
            if left != destination:
                self._release(left)
            return destination
        if (
            isinstance(expr.right, IntLiteral)
            and op == "-"
            and _fits_i12(-expr.right.value)
        ):
            left = self._eval(expr.left)
            destination = preferred if preferred is not None else self._acquire()
            self.asm.emit(RvOpcode.ADDI, rd=destination, rs1=left, imm=-expr.right.value)
            if left != destination:
                self._release(left)
            return destination

        left = self._eval(expr.left)
        right = self._eval(expr.right)
        destination = preferred if preferred is not None else self._acquire()
        self._emit_binop(op, destination, left, right, unsigned)
        if left != destination:
            self._release(left)
        if right != destination:
            self._release(right)
        return destination

    def _emit_binop(self, op: str, rd: int, left: int, right: int, unsigned: bool) -> None:
        if op in _DIRECT_BINOPS:
            self.asm.emit(_DIRECT_BINOPS[op], rd=rd, rs1=left, rs2=right)
            return
        if op == ">>":
            self.asm.emit(RvOpcode.SRL if unsigned else RvOpcode.SRA, rd=rd, rs1=left, rs2=right)
            return
        compare = RvOpcode.SLTU if unsigned else RvOpcode.SLT
        if op == "<":
            self.asm.emit(compare, rd=rd, rs1=left, rs2=right)
        elif op == ">":
            self.asm.emit(compare, rd=rd, rs1=right, rs2=left)
        elif op == "<=":
            self.asm.emit(compare, rd=rd, rs1=right, rs2=left)
            self.asm.emit(RvOpcode.XORI, rd=rd, rs1=rd, imm=1)
        elif op == ">=":
            self.asm.emit(compare, rd=rd, rs1=left, rs2=right)
            self.asm.emit(RvOpcode.XORI, rd=rd, rs1=rd, imm=1)
        elif op == "==":
            self.asm.emit(RvOpcode.SUB, rd=rd, rs1=left, rs2=right)
            self.asm.emit(RvOpcode.SLTIU, rd=rd, rs1=rd, imm=1)
        elif op == "!=":
            self.asm.emit(RvOpcode.SUB, rd=rd, rs1=left, rs2=right)
            self.asm.emit(RvOpcode.SLTU, rd=rd, rs1=ZERO, rs2=rd)
        elif op in ("&&", "||"):
            normalized_left = self._acquire()
            self.asm.emit(RvOpcode.SLTU, rd=normalized_left, rs1=ZERO, rs2=left)
            self.asm.emit(RvOpcode.SLTU, rd=rd, rs1=ZERO, rs2=right)
            combiner = RvOpcode.AND if op == "&&" else RvOpcode.OR
            self.asm.emit(combiner, rd=rd, rs1=normalized_left, rs2=rd)
            self._release(normalized_left)
        else:  # pragma: no cover - the parser only produces known operators
            raise CompilationError(f"unsupported binary operator {op!r}")

    def _element_address(self, expr: Index) -> int:
        base = self._var_register(expr.base)
        index = self._eval(expr.index)
        address = self._acquire()
        self.asm.emit(RvOpcode.SLLI, rd=address, rs1=index, imm=2)
        self.asm.emit(RvOpcode.ADD, rd=address, rs1=address, rs2=base)
        if index != address:
            self._release(index)
        return address


def _unsigned(*operands) -> bool:
    return any(
        operand is not None and getattr(operand, "ctype", None) is CType.UINT
        for operand in operands
    )


def generate_riscv_case(
    kernel: KernelDecl,
    workload: GpuWorkload,
    name: Optional[str] = None,
    memory_bytes: int = 32 * 1024,
) -> RiscvCase:
    """Compile a kernel for the RISC-V baseline and bind it to a workload.

    The workload's buffers are laid out in the 32 kB tightly-coupled memory,
    buffer parameters receive the resulting base addresses, scalar parameters
    receive the workload's scalar values, and the NDRange becomes the
    work-item loop bounds.
    """
    memory, addresses = load_workload_into_memory(workload, memory_bytes)
    values: Dict[str, int] = {}
    for param in kernel.params:
        if param.is_pointer:
            if param.name not in addresses:
                raise CompilationError(f"workload provides no buffer for parameter {param.name!r}")
            values[param.name] = addresses[param.name]
        else:
            if param.name not in workload.scalars:
                raise CompilationError(f"workload provides no value for parameter {param.name!r}")
            values[param.name] = int(workload.scalars[param.name])
    local_addresses: Dict[str, int] = {}
    for symbol_name, symbol in kernel.symbols.items():
        if symbol.is_local_array:
            local_addresses[symbol_name] = memory.allocate(symbol.array_words)
    generator = RiscvCodeGenerator(
        kernel,
        values,
        global_size=workload.ndrange.global_shape,
        workgroup_size=workload.ndrange.workgroup_shape,
        name=name,
        local_addresses=local_addresses,
    )
    program = generator.generate()
    return RiscvCase(program.name, program, memory, addresses, workload.expected)
