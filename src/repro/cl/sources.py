"""OpenCL-C sources of the benchmark suite: the paper's seven plus the
extended six (and a ``vec_add`` example extra).

These are the kernel texts a user of the real FGPU tool-chain would write; the
compiler in this package lowers them to the G-GPU ISA and to the scalar
RISC-V baseline.  Each source mirrors the semantics of the corresponding
hand-written kernel in :mod:`repro.kernels`, so the same
:class:`~repro.kernels.library.GpuWorkload` (buffers, scalars, expected
outputs) exercises both: the tests cross-check that the compiled kernel and
the hand-written kernel produce identical results.

``div_int`` deliberately spells out the 32-step restoring division: the FGPU
has no hardware divider, so its compiler emits exactly this kind of software
sequence, and that is why the paper's div_int shows the smallest speed-up of
the suite.

The cooperative extended-suite sources (``dot``, ``reduce_sum``,
``inclusive_scan``) are written in the *serialization-safe* form — after a
barrier, a work-item only reads ``__local`` slots written by work-items with
lower (or equal) local ids — so the RISC-V back end's sequential work-item
loop computes the same values the SIMT execution does.  The hand-written
G-GPU kernels use the log-depth tree/scan forms instead; integer addition is
associative mod 2^32, so all forms agree bit-exactly.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CompilationError

MAT_MUL_CL = """
// C = A x B with a fixed inner dimension of 64 (one output element per work-item).
__kernel void mat_mul(__global int *a, __global int *b, __global int *c, int n) {
    int gid = get_global_id(0);
    int row = gid >> 6;
    int col = gid & 63;
    int acc = 0;
    for (int k = 0; k < 64; k += 1) {
        acc += a[row * 64 + k] * b[k * 64 + col];
    }
    c[gid] = acc;
}
"""

COPY_CL = """
// Streaming buffer copy: one load and one store per work-item.
__kernel void copy(__global int *src, __global int *dst, int n) {
    int gid = get_global_id(0);
    dst[gid] = src[gid];
}
"""

VEC_MUL_CL = """
// Element-wise vector multiply.
__kernel void vec_mul(__global int *a, __global int *b, __global int *out, int n) {
    int gid = get_global_id(0);
    out[gid] = a[gid] * b[gid];
}
"""

FIR_CL = """
// 16-tap FIR filter over a sliding window.
__kernel void fir(__global int *x, __global int *coeff, __global int *y, int n) {
    int gid = get_global_id(0);
    int acc = 0;
    for (int t = 0; t < 16; t += 1) {
        acc += x[gid + t] * coeff[t];
    }
    y[gid] = acc;
}
"""

DIV_INT_CL = """
// Element-wise integer division via 32-step restoring division (the FGPU has
// no hardware divider); the subtract-or-keep decision is per-lane divergent.
__kernel void div_int(__global int *a, __global int *b, __global int *q, int n) {
    int gid = get_global_id(0);
    uint dividend = a[gid];
    uint divisor = b[gid];
    uint rem = 0;
    uint quo = 0;
    for (int step = 0; step < 32; step += 1) {
        uint bit = dividend >> 31;
        dividend = dividend << 1;
        rem = (rem << 1) | bit;
        quo = quo << 1;
        if (rem >= divisor) {
            rem -= divisor;
            quo |= 1;
        }
    }
    q[gid] = quo;
}
"""

XCORR_CL = """
// Strided cross-correlation: each work-item correlates the 256-sample
// reference window against its own stride-16 segment of the signal.
__kernel void xcorr(__global int *x, __global int *y, __global int *out, int n) {
    int gid = get_global_id(0);
    int base = gid * 16;
    int acc = 0;
    for (int t = 0; t < 256; t += 1) {
        acc += x[t] * y[base + t];
    }
    out[gid] = acc;
}
"""

PARALLEL_SEL_CL = """
// Parallel selection (rank) sort: every work-item scans the whole array to
// compute its element's rank, then scatters the element to its position.
__kernel void parallel_sel(__global int *a, __global int *out, int n) {
    int gid = get_global_id(0);
    int my_value = a[gid];
    int rank = 0;
    for (int j = 0; j < n; j += 1) {
        if (a[j] < my_value) {
            rank += 1;
        }
    }
    out[rank] = my_value;
}
"""

VEC_ADD_CL = """
// Element-wise vector addition (the quickstart example).
__kernel void vec_add(__global int *a, __global int *b, __global int *out, int n) {
    int gid = get_global_id(0);
    out[gid] = a[gid] + b[gid];
}
"""

SAXPY_CL = """
// out = alpha * x + y (integer SAXPY).
__kernel void saxpy(__global int *x, __global int *y, __global int *out, int alpha, int n) {
    int gid = get_global_id(0);
    out[gid] = alpha * x[gid] + y[gid];
}
"""

DOT_CL = """
// Per-workgroup dot-product partials.  The products are staged in local
// memory; after the barrier the last work-item of the group accumulates
// them.  (The hand-written kernel tree-reduces instead -- integer addition
// is associative mod 2^32, so both orders give identical partials.)
__kernel void dot(__global int *a, __global int *b, __global int *partial, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int lsize = get_local_size(0);
    __local int tmp[256];
    tmp[lid] = a[gid] * b[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == lsize - 1) {
        int acc = 0;
        for (int j = 0; j < lsize; j += 1) {
            acc += tmp[j];
        }
        partial[get_group_id(0)] = acc;
    }
}
"""

REDUCE_SUM_CL = """
// Per-workgroup sum reduction through local memory (see dot for the
// accumulation-order note).
__kernel void reduce_sum(__global int *a, __global int *partial, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int lsize = get_local_size(0);
    __local int tmp[256];
    tmp[lid] = a[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == lsize - 1) {
        int acc = 0;
        for (int j = 0; j < lsize; j += 1) {
            acc += tmp[j];
        }
        partial[get_group_id(0)] = acc;
    }
}
"""

INCLUSIVE_SCAN_CL = """
// Per-workgroup inclusive prefix sum: each work-item accumulates the local
// slots at or below its lane (the hand-written kernel runs the log-depth
// Hillis-Steele form instead).
__kernel void inclusive_scan(__global int *a, __global int *out, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    __local int tmp[256];
    tmp[lid] = a[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    int acc = 0;
    for (int j = 0; j <= lid; j += 1) {
        acc += tmp[j];
    }
    out[gid] = acc;
}
"""

HISTOGRAM_CL = """
// Output-driven 256-bin histogram: work-item gid counts the samples whose
// top byte equals its bin (the G-GPU has no atomics).
__kernel void histogram(__global int *a, __global int *hist, int n) {
    int gid = get_global_id(0);
    int count = 0;
    for (int j = 0; j < n; j += 1) {
        uint sample = a[j];
        if ((sample >> 24) == gid) {
            count += 1;
        }
    }
    hist[gid] = count;
}
"""

TRANSPOSE_CL = """
// Transpose of a (rows x 64) matrix: coalesced reads, stride-rows writes.
__kernel void transpose(__global int *a, __global int *out, int rows, int n) {
    int gid = get_global_id(0);
    int row = gid >> 6;
    int col = gid & 63;
    out[col * rows + row] = a[gid];
}
"""

MATMUL2D_CL = """
// Rank-2 dense GEMM: C (m x 16) = A (m x 16) x B (16 x 16), one work-item
// per output element on a ((16, m), (8, 8)) NDRange.  The hand-written
// kernel stages 8x8 tiles of A and B through __local memory; the compiled
// form keeps plain row-major indexing, because the RISC-V back end
// serializes whole work-items and is only faithful to __local reads from
// lower-or-equal local ids (a tile load is a forward dependency).
__kernel void matmul2d(__global int *a, __global int *b, __global int *c, int m) {
    int col = get_global_id(0);
    int row = get_global_id(1);
    int acc = 0;
    for (int k = 0; k < 16; k += 1) {
        acc += a[row * 16 + k] * b[k * 16 + col];
    }
    c[row * 16 + col] = acc;
}
"""

CONV2D_CL = """
// 3x3 stencil over a 16-wide image with a one-pixel halo (rows are 18
// words), launched on a ((16, h), (16, 4)) NDRange: dimension 0 walks a
// row, dimension 1 walks rows.
__kernel void conv2d(__global int *src, __global int *krn, __global int *out, int h) {
    int x = get_global_id(0);
    int y = get_global_id(1);
    int acc = 0;
    for (int ky = 0; ky < 3; ky += 1) {
        for (int kx = 0; kx < 3; kx += 1) {
            acc += src[(y + ky) * 18 + (x + kx)] * krn[ky * 3 + kx];
        }
    }
    out[y * 16 + x] = acc;
}
"""

BITONIC_SORT_CL = """
// Per-workgroup 64-key sort.  The hand-written kernel runs the parallel
// bitonic network with a barrier per round; the compiled form stages the
// chunk through __local memory and lets the last work-item exchange-sort
// and publish it (sorted output is unique, so both agree bit-exactly).
// The single-writer form is what the serializing RISC-V back end and the
// static race verifier can both reason about.
__kernel void bitonic_sort(__global int *a, __global int *out, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int lsize = get_local_size(0);
    __local int tmp[64];
    tmp[lid] = a[gid];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (lid == lsize - 1) {
        int base = gid - lid;
        for (int i = 0; i < lsize; i += 1) {
            for (int j = i + 1; j < lsize; j += 1) {
                int vi = tmp[i];
                int vj = tmp[j];
                if (vj < vi) {
                    tmp[i] = vj;
                    tmp[j] = vi;
                }
            }
            out[base + i] = tmp[i];
        }
    }
}
"""

# The benchmark suite, keyed by the kernel-registry names: the seven paper
# kernels of Table III / Figs. 5-6 followed by the six extended-suite ones
# and the three rank-2-era dense workloads.
BENCHMARK_CL_SOURCES: Dict[str, str] = {
    "mat_mul": MAT_MUL_CL,
    "copy": COPY_CL,
    "vec_mul": VEC_MUL_CL,
    "fir": FIR_CL,
    "div_int": DIV_INT_CL,
    "xcorr": XCORR_CL,
    "parallel_sel": PARALLEL_SEL_CL,
    "saxpy": SAXPY_CL,
    "dot": DOT_CL,
    "reduce_sum": REDUCE_SUM_CL,
    "inclusive_scan": INCLUSIVE_SCAN_CL,
    "histogram": HISTOGRAM_CL,
    "transpose": TRANSPOSE_CL,
    "matmul2d": MATMUL2D_CL,
    "conv2d": CONV2D_CL,
    "bitonic_sort": BITONIC_SORT_CL,
}

# Additional sources used by examples and tests.
EXTRA_CL_SOURCES: Dict[str, str] = {
    "vec_add": VEC_ADD_CL,
}


def get_benchmark_source(name: str) -> str:
    """OpenCL-C source of one of the paper's benchmarks (or the extras)."""
    if name in BENCHMARK_CL_SOURCES:
        return BENCHMARK_CL_SOURCES[name]
    if name in EXTRA_CL_SOURCES:
        return EXTRA_CL_SOURCES[name]
    known = sorted(set(BENCHMARK_CL_SOURCES) | set(EXTRA_CL_SOURCES))
    raise CompilationError(f"no OpenCL source for {name!r}; available: {known}")
