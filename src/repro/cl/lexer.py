"""Tokenizer for the OpenCL-C subset.

The lexer produces a flat list of :class:`Token` objects with line/column
information so parse and semantic errors can point at the offending source
location.  Comments (``//`` and ``/* */``) and whitespace are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import CompilationError

KEYWORDS = frozenset(
    {
        "__kernel",
        "kernel",
        "__global",
        "global",
        "__local",
        "local",
        "const",
        "void",
        "int",
        "uint",
        "if",
        "else",
        "for",
        "while",
        "return",
        "barrier",
    }
)

# Multi-character operators must be listed longest-first so maximal munch works.
_OPERATORS = (
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "++",
    "--",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "~",
    "!",
    "<",
    ">",
    "=",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ";",
)


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    OPERATOR = "operator"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: TokenKind
    text: str
    line: int
    column: int
    value: int = 0

    def is_op(self, text: str) -> bool:
        """Whether this token is the given operator/punctuator."""
        return self.kind is TokenKind.OPERATOR and self.text == text

    def is_keyword(self, text: str) -> bool:
        """Whether this token is the given keyword."""
        return self.kind is TokenKind.KEYWORD and self.text == text

    def location(self) -> str:
        """Human-readable ``line:column`` location."""
        return f"{self.line}:{self.column}"


def _is_ident_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_ident_char(char: str) -> bool:
    return char.isalnum() or char == "_"


class _Scanner:
    """Character-level cursor with line/column tracking."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.index = 0
        self.line = 1
        self.column = 1

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.source)

    def peek(self, offset: int = 0) -> str:
        position = self.index + offset
        return self.source[position] if position < len(self.source) else ""

    def advance(self, count: int = 1) -> str:
        text = self.source[self.index : self.index + count]
        for char in text:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.index += count
        return text

    def error(self, message: str) -> CompilationError:
        return CompilationError(f"lex error at {self.line}:{self.column}: {message}")


def _skip_trivia(scanner: _Scanner) -> None:
    """Skip whitespace and comments."""
    while not scanner.exhausted:
        char = scanner.peek()
        if char in " \t\r\n":
            scanner.advance()
        elif char == "/" and scanner.peek(1) == "/":
            while not scanner.exhausted and scanner.peek() != "\n":
                scanner.advance()
        elif char == "/" and scanner.peek(1) == "*":
            scanner.advance(2)
            while not scanner.exhausted and not (scanner.peek() == "*" and scanner.peek(1) == "/"):
                scanner.advance()
            if scanner.exhausted:
                raise scanner.error("unterminated block comment")
            scanner.advance(2)
        else:
            return


def _lex_number(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    text = ""
    if scanner.peek() == "0" and scanner.peek(1) in "xX":
        text += scanner.advance(2)
        while _is_ident_char(scanner.peek()):
            text += scanner.advance()
        try:
            value = int(text, 16)
        except ValueError as exc:
            raise CompilationError(f"lex error at {line}:{column}: bad hex literal {text!r}") from exc
    else:
        while scanner.peek().isdigit():
            text += scanner.advance()
        value = int(text)
    # Accept (and discard) the common integer suffixes.  The explicit truth
    # check matters: peek() returns "" at end of input, and "" is "in" every
    # string.
    while scanner.peek() and scanner.peek() in "uUlL":
        scanner.advance()
    if _is_ident_start(scanner.peek()):
        raise CompilationError(
            f"lex error at {line}:{column}: identifier cannot start with a digit"
        )
    return Token(TokenKind.NUMBER, text, line, column, value=value)


def _lex_word(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    text = ""
    while _is_ident_char(scanner.peek()):
        text += scanner.advance()
    kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
    return Token(kind, text, line, column)


def _lex_operator(scanner: _Scanner) -> Token:
    line, column = scanner.line, scanner.column
    for operator in _OPERATORS:
        if scanner.source.startswith(operator, scanner.index):
            scanner.advance(len(operator))
            return Token(TokenKind.OPERATOR, operator, line, column)
    raise scanner.error(f"unexpected character {scanner.peek()!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize OpenCL-C source text; the list always ends with an END token."""
    scanner = _Scanner(source)
    tokens: List[Token] = []
    while True:
        _skip_trivia(scanner)
        if scanner.exhausted:
            break
        char = scanner.peek()
        if char.isdigit():
            tokens.append(_lex_number(scanner))
        elif _is_ident_start(char):
            tokens.append(_lex_word(scanner))
        else:
            tokens.append(_lex_operator(scanner))
    tokens.append(Token(TokenKind.END, "", scanner.line, scanner.column))
    return tokens
