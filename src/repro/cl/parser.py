"""Recursive-descent parser for the OpenCL-C subset.

The grammar follows C's expression precedence.  The parser is purely
syntactic: name resolution, type checking, and uniformity analysis happen in
:mod:`repro.cl.semantics`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cl.lexer import Token, TokenKind, tokenize
from repro.cl.nodes import (
    AssignStmt,
    BarrierStmt,
    BinaryOp,
    Call,
    CType,
    DeclStmt,
    Expr,
    ForStmt,
    IfStmt,
    Index,
    IntLiteral,
    KernelDecl,
    LocalDeclStmt,
    Param,
    ReturnStmt,
    SourceSpan,
    Stmt,
    TranslationUnit,
    UnaryOp,
    VarRef,
    WhileStmt,
)
from repro.errors import CompilationError

ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=")

# Binary operator precedence levels, loosest first; each level is left
# associative (the subset has no assignment expressions or ternaries).
_BINARY_LEVELS: Tuple[Tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


def _span(token: Token) -> SourceSpan:
    return SourceSpan(token.line, token.column)


class Parser:
    """Token-stream parser producing a :class:`TranslationUnit`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # Token-stream helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.END:
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> CompilationError:
        token = token or self._peek()
        return CompilationError(f"parse error at {token.location()}: {message}")

    def _expect_op(self, text: str) -> Token:
        token = self._peek()
        if not token.is_op(text):
            raise self._error(f"expected {text!r}, found {token.text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        token = self._peek()
        if not token.is_keyword(text):
            raise self._error(f"expected {text!r}, found {token.text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise self._error(f"expected an identifier, found {token.text!r}")
        return self._advance()

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._advance()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #
    def parse_translation_unit(self) -> TranslationUnit:
        """Parse the whole source file."""
        unit = TranslationUnit()
        while self._peek().kind is not TokenKind.END:
            unit.kernels.append(self._parse_kernel())
        if not unit.kernels:
            raise CompilationError("1:1: the source contains no __kernel function")
        return unit

    def _parse_kernel(self) -> KernelDecl:
        start = self._peek()
        if not (self._accept_keyword("__kernel") or self._accept_keyword("kernel")):
            raise self._error("expected a '__kernel' function")
        self._expect_keyword("void")
        name = self._expect_ident()
        self._expect_op("(")
        params: List[Param] = []
        if not self._peek().is_op(")"):
            params.append(self._parse_param())
            while self._accept_op(","):
                params.append(self._parse_param())
        self._expect_op(")")
        body = self._parse_block()
        return KernelDecl(name=name.text, params=params, body=body, span=_span(start))

    def _parse_param(self) -> Param:
        start = self._peek()
        is_global = self._accept_keyword("__global") or self._accept_keyword("global")
        self._accept_keyword("const")
        ctype = self._parse_scalar_type()
        is_pointer = self._accept_op("*")
        if is_global and not is_pointer:
            raise self._error("__global parameters must be pointers", start)
        name = self._expect_ident()
        if is_pointer:
            return Param(name=name.text, ctype=CType.PTR, is_pointer=True, span=_span(start))
        return Param(name=name.text, ctype=ctype, is_pointer=False, span=_span(start))

    def _parse_scalar_type(self) -> CType:
        token = self._peek()
        if token.is_keyword("int"):
            self._advance()
            return CType.INT
        if token.is_keyword("uint"):
            self._advance()
            return CType.UINT
        raise self._error(f"expected a type, found {token.text!r}")

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #
    def _parse_block(self) -> List[Stmt]:
        self._expect_op("{")
        statements: List[Stmt] = []
        while not self._peek().is_op("}"):
            if self._peek().kind is TokenKind.END:
                raise self._error("unterminated block")
            statements.append(self._parse_statement())
        self._expect_op("}")
        return statements

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.is_op("{"):
            # A bare block contributes its statements via an if(1)-free
            # wrapper; representing it as an IfStmt would change semantics of
            # declarations, so the subset simply inlines it.
            raise self._error("nested bare blocks are not supported; use if/for/while blocks")
        if token.is_keyword("int") or token.is_keyword("uint"):
            statement = self._parse_declaration()
            self._expect_op(";")
            return statement
        if token.is_keyword("__local") or token.is_keyword("local"):
            return self._parse_local_declaration()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.is_keyword("barrier"):
            return self._parse_barrier()
        if token.is_keyword("return"):
            self._advance()
            self._expect_op(";")
            return ReturnStmt(span=_span(token))
        statement = self._parse_assignment()
        self._expect_op(";")
        return statement

    def _parse_declaration(self) -> DeclStmt:
        start = self._peek()
        ctype = self._parse_scalar_type()
        names: List[str] = []
        inits: List[Optional[Expr]] = []
        while True:
            name = self._expect_ident()
            names.append(name.text)
            if self._accept_op("="):
                inits.append(self._parse_expression())
            else:
                inits.append(None)
            if not self._accept_op(","):
                break
        return DeclStmt(ctype=ctype, names=tuple(names), inits=tuple(inits), span=_span(start))

    def _parse_local_declaration(self) -> LocalDeclStmt:
        start = self._peek()
        if not (self._accept_keyword("__local") or self._accept_keyword("local")):
            raise self._error("expected '__local'")
        ctype = self._parse_scalar_type()
        name = self._expect_ident()
        self._expect_op("[")
        size_token = self._peek()
        if size_token.kind is not TokenKind.NUMBER:
            raise self._error("__local array size must be an integer constant")
        self._advance()
        self._expect_op("]")
        self._expect_op(";")
        if size_token.value <= 0:
            raise self._error("__local array size must be positive", size_token)
        return LocalDeclStmt(
            ctype=ctype, name=name.text, size=size_token.value, span=_span(start)
        )

    def _parse_assignment(self) -> AssignStmt:
        start = self._peek()
        target = self._parse_lvalue()
        token = self._peek()
        if token.is_op("++") or token.is_op("--"):
            self._advance()
            op = "+=" if token.text == "++" else "-="
            one = IntLiteral(1, span=_span(token))
            return AssignStmt(target=target, op=op, value=one, span=_span(start))
        for candidate in ASSIGN_OPS:
            if token.is_op(candidate):
                self._advance()
                value = self._parse_expression()
                return AssignStmt(target=target, op=candidate, value=value, span=_span(start))
        raise self._error(f"expected an assignment operator, found {token.text!r}")

    def _parse_lvalue(self) -> Expr:
        name = self._expect_ident()
        if self._accept_op("["):
            index = self._parse_expression()
            self._expect_op("]")
            return Index(base=name.text, index=index, span=_span(name))
        return VarRef(name=name.text, span=_span(name))

    def _parse_if(self) -> IfStmt:
        start = self._expect_keyword("if")
        self._expect_op("(")
        condition = self._parse_expression()
        self._expect_op(")")
        then_body = self._parse_body_or_single()
        else_body: List[Stmt] = []
        has_else = False
        if self._accept_keyword("else"):
            has_else = True
            if self._peek().is_keyword("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_body_or_single()
        return IfStmt(
            condition=condition,
            then_body=then_body,
            else_body=else_body,
            has_else=has_else,
            span=_span(start),
        )

    def _parse_while(self) -> WhileStmt:
        start = self._expect_keyword("while")
        self._expect_op("(")
        condition = self._parse_expression()
        self._expect_op(")")
        body = self._parse_body_or_single()
        return WhileStmt(condition=condition, body=body, span=_span(start))

    def _parse_for(self) -> ForStmt:
        start = self._expect_keyword("for")
        self._expect_op("(")
        init: Optional[Stmt] = None
        if not self._peek().is_op(";"):
            if self._peek().is_keyword("int") or self._peek().is_keyword("uint"):
                init = self._parse_declaration()
            else:
                init = self._parse_assignment()
        self._expect_op(";")
        condition: Optional[Expr] = None
        if not self._peek().is_op(";"):
            condition = self._parse_expression()
        self._expect_op(";")
        step: Optional[Stmt] = None
        if not self._peek().is_op(")"):
            step = self._parse_assignment()
        self._expect_op(")")
        body = self._parse_body_or_single()
        return ForStmt(init=init, condition=condition, step=step, body=body, span=_span(start))

    def _parse_barrier(self) -> BarrierStmt:
        start = self._expect_keyword("barrier")
        self._expect_op("(")
        # The memory-fence flag argument (CLK_LOCAL_MEM_FENCE | ...) is parsed
        # and discarded: the G-GPU barrier synchronizes the whole workgroup.
        while not self._peek().is_op(")"):
            if self._peek().kind is TokenKind.END:
                raise self._error("unterminated barrier()")
            self._advance()
        self._expect_op(")")
        self._expect_op(";")
        return BarrierStmt(span=_span(start))

    def _parse_body_or_single(self) -> List[Stmt]:
        if self._peek().is_op("{"):
            return self._parse_block()
        return [self._parse_statement()]

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def _parse_expression(self) -> Expr:
        return self._parse_binary(0)

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while True:
            token = self._peek()
            matched = None
            for op in _BINARY_LEVELS[level]:
                if token.is_op(op):
                    matched = op
                    break
            if matched is None:
                return left
            self._advance()
            right = self._parse_binary(level + 1)
            left = BinaryOp(op=matched, left=left, right=right, span=_span(token))

    def _parse_unary(self) -> Expr:
        token = self._peek()
        for op in ("-", "!", "~", "+"):
            if token.is_op(op):
                self._advance()
                operand = self._parse_unary()
                if op == "+":
                    return operand
                return UnaryOp(op=op, operand=operand, span=_span(token))
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return IntLiteral(token.value, span=_span(token))
        if token.is_op("("):
            self._advance()
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._accept_op("("):
                args: List[Expr] = []
                if not self._peek().is_op(")"):
                    args.append(self._parse_expression())
                    while self._accept_op(","):
                        args.append(self._parse_expression())
                self._expect_op(")")
                return Call(name=token.text, args=tuple(args), span=_span(token))
            if self._accept_op("["):
                index = self._parse_expression()
                self._expect_op("]")
                return Index(base=token.text, index=index, span=_span(token))
            return VarRef(name=token.text, span=_span(token))
        raise self._error(f"expected an expression, found {token.text!r}")


def parse(source: str) -> TranslationUnit:
    """Tokenize and parse OpenCL-C source text."""
    return Parser(tokenize(source)).parse_translation_unit()
