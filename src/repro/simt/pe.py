"""Processing-element ALU: vectorized lane arithmetic.

The 8 PEs of a CU execute one instruction for 8 lanes per cycle; functionally
the whole 64-lane wavefront sees the same operation.  This module implements
the arithmetic of every ALU/MUL/DIV opcode as a numpy operation over the lane
vectors, with 32-bit wrap-around semantics and RISC-style division behaviour
(divide by zero yields -1 for the quotient and the dividend for the
remainder).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.arch.isa import Opcode
from repro.errors import SimulationError

WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000


def to_signed(values: np.ndarray) -> np.ndarray:
    """Reinterpret unsigned 32-bit lane values as signed."""
    values = np.asarray(values, dtype=np.int64)
    # Branch-free two's-complement fold: equivalent to subtracting 2**32
    # where the sign bit is set, without materializing the boolean mask.
    return ((values + SIGN_BIT) & WORD_MASK) - SIGN_BIT


def to_unsigned(values: np.ndarray) -> np.ndarray:
    """Wrap signed lane values back to their unsigned 32-bit representation."""
    return np.asarray(values, dtype=np.int64) & WORD_MASK


def _shift_amount(b: np.ndarray) -> np.ndarray:
    return np.asarray(b, dtype=np.int64) & 0x1F


def _add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a + b) & WORD_MASK


def _sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a - b) & WORD_MASK


def _and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a & b


def _or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a | b


def _xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a ^ b


def _sll(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a << _shift_amount(b)) & WORD_MASK


def _srl(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (a & WORD_MASK) >> _shift_amount(b)


def _sra(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return to_unsigned(to_signed(a) >> _shift_amount(b))


def _slt(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (to_signed(a) < to_signed(b)).astype(np.int64)


def _sltu(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return ((a & WORD_MASK) < (b & WORD_MASK)).astype(np.int64)


def _min(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return to_unsigned(np.minimum(to_signed(a), to_signed(b)))


def _max(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return to_unsigned(np.maximum(to_signed(a), to_signed(b)))


def _mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return (to_signed(a) * to_signed(b)) & WORD_MASK


def _mulh(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return to_unsigned((to_signed(a) * to_signed(b)) >> 32)


def _div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    sa, sb = to_signed(a), to_signed(b)
    safe_b = np.where(sb == 0, 1, sb)
    quotient = np.abs(sa) // np.abs(safe_b)
    quotient = np.where(np.sign(sa) * np.sign(safe_b) < 0, -quotient, quotient)
    quotient = np.where(sb == 0, -1, quotient)
    return to_unsigned(quotient)


def _rem(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    sa, sb = to_signed(a), to_signed(b)
    safe_b = np.where(sb == 0, 1, sb)
    quotient = np.abs(sa) // np.abs(safe_b)
    quotient = np.where(np.sign(sa) * np.sign(safe_b) < 0, -quotient, quotient)
    remainder = sa - quotient * safe_b
    remainder = np.where(sb == 0, sa, remainder)
    return to_unsigned(remainder)


_BINARY_OPS: Dict[Opcode, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    Opcode.ADD: _add,
    Opcode.SUB: _sub,
    Opcode.AND: _and,
    Opcode.OR: _or,
    Opcode.XOR: _xor,
    Opcode.SLL: _sll,
    Opcode.SRL: _srl,
    Opcode.SRA: _sra,
    Opcode.SLT: _slt,
    Opcode.SLTU: _sltu,
    Opcode.MIN: _min,
    Opcode.MAX: _max,
    Opcode.MUL: _mul,
    Opcode.MULH: _mulh,
    Opcode.DIV: _div,
    Opcode.REM: _rem,
}

# Immediate forms share the arithmetic of their register forms.
_IMMEDIATE_TO_BINARY: Dict[Opcode, Opcode] = {
    Opcode.ADDI: Opcode.ADD,
    Opcode.ANDI: Opcode.AND,
    Opcode.ORI: Opcode.OR,
    Opcode.XORI: Opcode.XOR,
    Opcode.SLLI: Opcode.SLL,
    Opcode.SRLI: Opcode.SRL,
    Opcode.SRAI: Opcode.SRA,
    Opcode.SLTI: Opcode.SLT,
    Opcode.MULI: Opcode.MUL,
}


def execute_binary(opcode: Opcode, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Execute a three-register ALU/MUL/DIV operation over the lane vectors."""
    try:
        operation = _BINARY_OPS[opcode]
    except KeyError as exc:
        raise SimulationError(f"{opcode.mnemonic} is not a binary ALU operation") from exc
    return operation(np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))


def execute_immediate(opcode: Opcode, a: np.ndarray, imm: int, lanes: int) -> np.ndarray:
    """Execute an immediate ALU operation (the immediate is broadcast)."""
    if opcode is Opcode.LI:
        return np.full(lanes, imm & WORD_MASK, dtype=np.int64)
    if opcode is Opcode.LUI:
        return np.full(lanes, (imm << 14) & WORD_MASK, dtype=np.int64)
    try:
        base = _IMMEDIATE_TO_BINARY[opcode]
    except KeyError as exc:
        raise SimulationError(f"{opcode.mnemonic} is not an immediate ALU operation") from exc
    broadcast = np.full(lanes, imm, dtype=np.int64) & WORD_MASK
    return execute_binary(base, a, broadcast)


def binary_operation(opcode: Opcode) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Resolve the lane-arithmetic callable of a three-register opcode.

    Used by the instruction pre-decoder so the per-issue path can call the
    operation directly instead of going through the dict lookup in
    :func:`execute_binary`.
    """
    try:
        return _BINARY_OPS[opcode]
    except KeyError as exc:
        raise SimulationError(f"{opcode.mnemonic} is not a binary ALU operation") from exc


def immediate_base(opcode: Opcode) -> Opcode:
    """Three-register opcode implementing an immediate form's arithmetic."""
    try:
        return _IMMEDIATE_TO_BINARY[opcode]
    except KeyError as exc:
        raise SimulationError(f"{opcode.mnemonic} is not an immediate ALU operation") from exc


def is_binary_alu(opcode: Opcode) -> bool:
    """Whether the opcode is a three-register arithmetic operation."""
    return opcode in _BINARY_OPS


def is_immediate_alu(opcode: Opcode) -> bool:
    """Whether the opcode is an immediate arithmetic operation."""
    return opcode in _IMMEDIATE_TO_BINARY or opcode in (Opcode.LI, Opcode.LUI)
