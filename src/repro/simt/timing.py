"""Latency parameters of the cycle-approximate timing model.

The FGPU is deeply pipelined; the values below describe the pipeline as seen
by a single wavefront (issue-to-writeback latencies) and the occupancy each
instruction imposes on the shared PE array.  They are architecture constants,
not technology constants: the technology only decides the clock frequency the
pipeline can run at (GPUPlanner's job), while the cycle counts of Table III
depend only on these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.isa import OpClass
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimingModel:
    """Per-class instruction latencies and occupancies (in cycles).

    ``*_latency`` is the time until the issuing wavefront may issue its next
    instruction (dependent issue; the simulator does not model register-level
    scoreboarding beyond this).  Vector instructions additionally occupy the
    PE array for ``wavefront_size / pes_per_cu`` cycles, which is added by the
    compute unit on top of these latencies.
    """

    alu_latency: int = 3
    mul_latency: int = 5
    div_latency: int = 14
    special_latency: int = 1
    mask_latency: int = 1
    branch_latency: int = 2
    local_latency: int = 3
    param_latency: int = 2
    store_latency: int = 2
    barrier_latency: int = 1
    issue_width: int = 1

    def __post_init__(self) -> None:
        for name in (
            "alu_latency",
            "mul_latency",
            "div_latency",
            "special_latency",
            "mask_latency",
            "branch_latency",
            "local_latency",
            "param_latency",
            "store_latency",
            "barrier_latency",
            "issue_width",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be at least one cycle")
        # The per-class tables are consulted on every issued instruction, so
        # they are materialized once instead of being rebuilt per call (the
        # dataclass is frozen, hence object.__setattr__).
        object.__setattr__(
            self,
            "_latency_table",
            {
                OpClass.ALU: self.alu_latency,
                OpClass.MUL: self.mul_latency,
                OpClass.DIV: self.div_latency,
                OpClass.SPECIAL: self.special_latency,
                OpClass.MASK: self.mask_latency,
                OpClass.BRANCH: self.branch_latency,
                OpClass.LOCAL: self.local_latency,
                OpClass.PARAM: self.param_latency,
                OpClass.STORE: self.store_latency,
                OpClass.SYNC: self.barrier_latency,
                OpClass.RET: 1,
                # Loads are handled by the compute unit because their latency
                # depends on the cache and memory controller.
                OpClass.LOAD: self.alu_latency,
            },
        )
        object.__setattr__(
            self,
            "_pe_array_classes",
            frozenset(
                (
                    OpClass.ALU,
                    OpClass.MUL,
                    OpClass.DIV,
                    OpClass.LOAD,
                    OpClass.STORE,
                    OpClass.LOCAL,
                    OpClass.SPECIAL,
                    OpClass.PARAM,
                )
            ),
        )

    def latency_for(self, opclass: OpClass) -> int:
        """Post-occupancy latency of an instruction of the given class."""
        return self._latency_table[opclass]

    def uses_pe_array(self, opclass: OpClass) -> bool:
        """Whether instructions of this class occupy the PE array."""
        return opclass in self._pe_array_classes
