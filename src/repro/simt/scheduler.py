"""Wavefront scheduler of a compute unit.

The WF scheduler picks, every issue opportunity, one resident wavefront whose
next instruction is ready and feeds it to the PE array.  The policy is
round-robin among ready wavefronts (the FGPU policy), which is what lets the
memory latency of one wavefront hide behind the arithmetic of the others.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.errors import SimulationError
from repro.simt.wavefront import Wavefront


class WavefrontScheduler:
    """Round-robin scheduler over the wavefronts resident in one CU."""

    def __init__(self) -> None:
        self._order: Deque[Wavefront] = deque()

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, wavefront: Wavefront) -> bool:
        return wavefront in self._order

    @property
    def resident(self) -> List[Wavefront]:
        """Wavefronts currently resident, in scheduling order."""
        return list(self._order)

    def add(self, wavefront: Wavefront) -> None:
        """Register a newly dispatched wavefront."""
        if wavefront in self._order:
            raise SimulationError(
                f"wavefront {wavefront.wavefront_id} is already resident in this CU"
            )
        self._order.append(wavefront)

    def add_all(self, wavefronts: Iterable[Wavefront]) -> None:
        """Register several wavefronts at once."""
        for wavefront in wavefronts:
            self.add(wavefront)

    def remove(self, wavefront: Wavefront) -> None:
        """Retire a finished wavefront."""
        try:
            self._order.remove(wavefront)
        except ValueError as exc:
            raise SimulationError(
                f"wavefront {wavefront.wavefront_id} is not resident in this CU"
            ) from exc

    def earliest_ready(self) -> float:
        """Ready time of the wavefront that becomes schedulable first."""
        if not self._order:
            return float("inf")
        return min(wavefront.ready_time for wavefront in self._order if not wavefront.done)

    def select(self, now: float) -> Optional[Wavefront]:
        """Pick the next wavefront with ``ready_time <= now`` (round robin).

        The selected wavefront is rotated to the back of the order so ready
        wavefronts share the issue bandwidth fairly.
        """
        for _ in range(len(self._order)):
            wavefront = self._order[0]
            self._order.rotate(-1)
            if not wavefront.done and wavefront.ready_time <= now:
                return wavefront
        return None
