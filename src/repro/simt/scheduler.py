"""Wavefront scheduler of a compute unit.

The WF scheduler picks, every issue opportunity, one resident wavefront whose
next instruction is ready and feeds it to the PE array.  The policy is
round-robin among ready wavefronts (the FGPU policy), which is what lets the
memory latency of one wavefront hide behind the arithmetic of the others.

The earliest-ready time — the compute unit's next event time, consulted by
the simulator's event heap on every scheduling decision — is cached and only
recomputed after a mutation (add/remove/ready-time update) instead of being
rebuilt with a ``min()`` scan over all residents on every call.  Code that
changes a resident's ``ready_time`` directly must call
:meth:`WavefrontScheduler.notify_ready_changed`; :meth:`select` also
invalidates the cache because callers conventionally reschedule the
wavefront they selected.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional

from repro.errors import SimulationError
from repro.simt.wavefront import Wavefront

_INFINITY = float("inf")


class WavefrontScheduler:
    """Round-robin scheduler over the wavefronts resident in one CU."""

    def __init__(self) -> None:
        self._order: Deque[Wavefront] = deque()
        self._earliest = _INFINITY
        self._earliest_valid = True
        self._active = 0
        self._active_valid = True

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, wavefront: Wavefront) -> bool:
        return wavefront in self._order

    @property
    def resident(self) -> List[Wavefront]:
        """Wavefronts currently resident, in scheduling order."""
        return list(self._order)

    def add(self, wavefront: Wavefront) -> None:
        """Register a newly dispatched wavefront."""
        if wavefront in self._order:
            raise SimulationError(
                f"wavefront {wavefront.wavefront_id} is already resident in this CU"
            )
        self._order.append(wavefront)
        self._earliest_valid = False
        self._active_valid = False

    def add_all(self, wavefronts: Iterable[Wavefront]) -> None:
        """Register several wavefronts at once."""
        for wavefront in wavefronts:
            self.add(wavefront)

    def remove(self, wavefront: Wavefront) -> None:
        """Retire a finished wavefront."""
        try:
            self._order.remove(wavefront)
        except ValueError as exc:
            raise SimulationError(
                f"wavefront {wavefront.wavefront_id} is not resident in this CU"
            ) from exc
        self._earliest_valid = False
        self._active_valid = False

    def notify_ready_changed(self) -> None:
        """Invalidate the cached earliest-ready time after external updates.

        The active count is deliberately left intact: ``Wavefront.done`` only
        changes through ``Wavefront.retire``, and every retirement is
        followed by :meth:`remove`, which invalidates the count.  Ready-time
        updates happen once per scheduling event, so recounting the residents
        there cost a full scan per issued instruction for nothing.
        """
        self._earliest_valid = False

    def active_count(self) -> int:
        """Number of unfinished resident wavefronts (cached like the min)."""
        if not self._active_valid:
            self._active = sum(1 for wavefront in self._order if not wavefront.done)
            self._active_valid = True
        return self._active

    def install_order(self, wavefronts: Iterable[Wavefront]) -> None:
        """Install a new round-robin order over the *same* resident set.

        The compute unit's batched issue path replays the scheduler's
        selection rotations on a local snapshot of the order (see
        ``ComputeUnit._step_batch``) and installs the result here in one
        assignment.  The resident set is unchanged — only the rotation state
        moves — so the cached active count stays valid; the caller follows up
        with :meth:`set_earliest` for the ready-time cache.
        """
        self._order = deque(wavefronts)

    def set_earliest(self, value: float) -> None:
        """Install an exactly-known earliest-ready time.

        The compute unit's issue loop already knows the minimum over the
        residents at the end of an ordinary scheduling event (it tracked the
        other residents' earliest ready time for macro-stepping and changed
        only the issuing wavefront), so it hands the value over instead of
        triggering a rescan per event.
        """
        self._earliest = value
        self._earliest_valid = True

    def earliest_ready(self) -> float:
        """Ready time of the wavefront that becomes schedulable first."""
        if not self._earliest_valid:
            earliest = _INFINITY
            for wavefront in self._order:
                if not wavefront.done and wavefront.ready_time < earliest:
                    earliest = wavefront.ready_time
            self._earliest = earliest
            self._earliest_valid = True
        return self._earliest

    def earliest_ready_excluding(self, excluded: Wavefront) -> float:
        """Earliest ready time among the *other* unfinished residents.

        Used by the compute unit's macro-stepping fast path: the selected
        wavefront may keep issuing back-to-back only while it stays strictly
        ahead of every other resident.
        """
        earliest = _INFINITY
        for wavefront in self._order:
            if (
                wavefront is not excluded
                and not wavefront.done
                and wavefront.ready_time < earliest
            ):
                earliest = wavefront.ready_time
        return earliest

    def select(self, now: float) -> Optional[Wavefront]:
        """Pick the next wavefront with ``ready_time <= now`` (round robin).

        The selected wavefront is rotated to the back of the order so ready
        wavefronts share the issue bandwidth fairly.
        """
        order = self._order
        for position, wavefront in enumerate(order):
            if not wavefront.done and wavefront.ready_time <= now:
                # One rotation with the same end state as rotating each
                # probed wavefront to the back individually.
                order.rotate(-(position + 1))
                # The caller is about to issue for (and therefore delay) the
                # selected wavefront, so the cached minimum goes stale.
                self._earliest_valid = False
                return wavefront
        return None
