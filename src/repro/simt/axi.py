"""Global memory controller and AXI data-interface timing model.

FGPU integrates numerous data movers that parallelize global-memory traffic on
up to four AXI data interfaces.  The controller model below is what creates
the bandwidth wall the paper observes when scaling to 8 CUs: every cache miss
or write-back occupies one AXI data port for the duration of the line
transfer, so once the ports saturate, adding CUs stops helping (and extra
contention can even hurt, as in the xcorr results of Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.arch.config import AxiConfig, CacheConfig
from repro.errors import SimulationError


@dataclass
class MemoryTrafficStats:
    """Aggregate AXI traffic for one kernel launch."""

    line_fills: int = 0
    write_backs: int = 0
    busy_cycles: float = 0.0

    @property
    def transactions(self) -> int:
        return self.line_fills + self.write_backs


class GlobalMemoryController:
    """Timing model of the global memory controller and its AXI data ports."""

    def __init__(self, axi: AxiConfig, cache: CacheConfig) -> None:
        self.axi = axi
        self.cache = cache
        self._port_free: List[float] = [0.0] * axi.data_ports
        self.stats = MemoryTrafficStats()

    @property
    def line_transfer_cycles(self) -> int:
        """Cycles one AXI port needs to move one cache line."""
        beats = self.cache.line_bytes // (self.axi.data_width_bits // 8)
        return max(1, beats)

    def reset(self) -> None:
        """Clear port occupancy and statistics (new kernel launch)."""
        self._port_free = [0.0] * self.axi.data_ports
        self.stats = MemoryTrafficStats()

    def _claim_port(self, now: float, occupancy: int) -> float:
        """Reserve the earliest-free port starting no earlier than ``now``."""
        port = min(range(len(self._port_free)), key=lambda i: self._port_free[i])
        start = max(now, self._port_free[port])
        self._port_free[port] = start + occupancy
        self.stats.busy_cycles += occupancy
        return start

    def line_fill(self, now: float) -> float:
        """Issue a line fill at time ``now``; returns the completion time."""
        if now < 0:
            raise SimulationError(f"time must be non-negative, got {now}")
        transfer = self.line_transfer_cycles
        start = self._claim_port(now, transfer)
        self.stats.line_fills += 1
        return start + self.axi.memory_latency_cycles + transfer

    def write_back(self, now: float) -> float:
        """Issue a dirty-line write-back at time ``now``; returns completion time.

        Write-backs are posted: the requesting wavefront does not wait for
        them, but they consume port bandwidth and therefore delay later fills.
        """
        if now < 0:
            raise SimulationError(f"time must be non-negative, got {now}")
        transfer = self.line_transfer_cycles
        start = self._claim_port(now, transfer)
        self.stats.write_backs += 1
        return start + transfer

    def write_back_burst(self, now: float, count: int) -> float:
        """Issue ``count`` posted write-backs starting at ``now``.

        Used by the end-of-kernel cache flush: the dirty lines drain through
        the AXI data ports after the last wavefront completes, so the traffic
        (and the port time it occupies) shows up in :class:`MemoryTrafficStats`
        without extending the kernel's cycle count.  Returns the completion
        time of the last write-back.
        """
        if count < 0:
            raise SimulationError(f"write-back burst count must be non-negative, got {count}")
        done = now
        for _ in range(count):
            done = self.write_back(now)
        return done

    def earliest_free(self) -> float:
        """Earliest time any port becomes free (used by tests and reports)."""
        return min(self._port_free)
