"""Global memory controller and AXI data-interface timing model.

FGPU integrates numerous data movers that parallelize global-memory traffic on
up to four AXI data interfaces.  The controller model below is what creates
the bandwidth wall the paper observes when scaling to 8 CUs: every cache miss
or write-back occupies one AXI data port for the duration of the line
transfer, so once the ports saturate, adding CUs stops helping (and extra
contention can even hurt, as in the xcorr results of Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.arch.config import AxiConfig, CacheConfig
from repro.errors import SimulationError


@dataclass
class MemoryTrafficStats:
    """Aggregate AXI traffic for one kernel launch."""

    line_fills: int = 0
    write_backs: int = 0
    busy_cycles: float = 0.0

    @property
    def transactions(self) -> int:
        return self.line_fills + self.write_backs


class GlobalMemoryController:
    """Timing model of the global memory controller and its AXI data ports."""

    def __init__(self, axi: AxiConfig, cache: CacheConfig) -> None:
        self.axi = axi
        self.cache = cache
        self._port_free: List[float] = [0.0] * axi.data_ports
        # The transfer width and the fill latency are consulted on every one
        # of the hundreds of thousands of misses of a sweep; resolve them
        # once instead of re-deriving them from the configs per transaction.
        self._transfer_cycles = self.line_transfer_cycles
        self._fill_latency = self.axi.memory_latency_cycles + self._transfer_cycles
        self.stats = MemoryTrafficStats()

    @property
    def line_transfer_cycles(self) -> int:
        """Cycles one AXI port needs to move one cache line."""
        beats = self.cache.line_bytes // (self.axi.data_width_bits // 8)
        return max(1, beats)

    def reset(self) -> None:
        """Clear port occupancy and statistics (new kernel launch)."""
        self._port_free = [0.0] * self.axi.data_ports
        self._transfer_cycles = self.line_transfer_cycles
        self._fill_latency = self.axi.memory_latency_cycles + self._transfer_cycles
        self.stats = MemoryTrafficStats()

    def _claim_port(self, now: float, occupancy: int) -> float:
        """Reserve the earliest-free port starting no earlier than ``now``.

        Ties break toward the lower port index, like the ``min`` scan it
        replaces; the explicit loop avoids a closure call per candidate port
        on the hottest path of the memory model.
        """
        free = self._port_free
        best = 0
        best_time = free[0]
        for index in range(1, len(free)):
            time = free[index]
            if time < best_time:
                best_time = time
                best = index
        start = now if now > best_time else best_time
        free[best] = start + occupancy
        self.stats.busy_cycles += occupancy
        return start

    def line_fill(self, now: float) -> float:
        """Issue a line fill at time ``now``; returns the completion time."""
        if now < 0:
            raise SimulationError(f"time must be non-negative, got {now}")
        start = self._claim_port(now, self._transfer_cycles)
        self.stats.line_fills += 1
        return start + self._fill_latency

    def write_back(self, now: float) -> float:
        """Issue a dirty-line write-back at time ``now``; returns completion time.

        Write-backs are posted: the requesting wavefront does not wait for
        them, but they consume port bandwidth and therefore delay later fills.
        """
        if now < 0:
            raise SimulationError(f"time must be non-negative, got {now}")
        transfer = self._transfer_cycles
        start = self._claim_port(now, transfer)
        self.stats.write_backs += 1
        return start + transfer

    def miss_burst(
        self,
        access_time: float,
        ports: int,
        hit_list: List[bool],
        wb_list: List[bool],
        completion: float,
    ) -> Tuple[float, int]:
        """Claim port time for every missing line of one coalesced access.

        ``hit_list``/``wb_list`` are the per-line outcomes of the cache probe
        in position order; line ``k`` starts at ``access_time + k // ports``
        (the cache serves ``ports`` lines per cycle).  Equivalent to calling
        :meth:`write_back` (for dirty victims) and :meth:`line_fill` per
        missing line, but in one call with the port state held in locals --
        the per-miss call overhead dominated the memory path of
        scatter-heavy kernels.  Returns the latest fill completion (starting
        from ``completion``) and the position of the last hit (-1 if none).
        """
        free = self._port_free
        num_ports = len(free)
        transfer = self._transfer_cycles
        fill_latency = self._fill_latency
        fills = 0
        write_backs = 0
        last_hit = -1
        # Track the current ports-wide wave incrementally instead of paying
        # an integer division per line position.
        wave_start = access_time
        next_wave_position = ports
        for position, hit in enumerate(hit_list):
            if position == next_wave_position:
                wave_start += 1
                next_wave_position += ports
            if hit:
                last_hit = position
                continue
            if wb_list[position]:
                best = 0
                best_time = free[0]
                for index in range(1, num_ports):
                    time = free[index]
                    if time < best_time:
                        best_time = time
                        best = index
                start = wave_start if wave_start > best_time else best_time
                free[best] = start + transfer
                write_backs += 1
            best = 0
            best_time = free[0]
            for index in range(1, num_ports):
                time = free[index]
                if time < best_time:
                    best_time = time
                    best = index
            start = wave_start if wave_start > best_time else best_time
            free[best] = start + transfer
            fills += 1
            fill_done = start + fill_latency
            if fill_done > completion:
                completion = fill_done
        self.stats.line_fills += fills
        self.stats.write_backs += write_backs
        self.stats.busy_cycles += (fills + write_backs) * transfer
        return completion, last_hit

    def write_back_burst(self, now: float, count: int) -> float:
        """Issue ``count`` posted write-backs starting at ``now``.

        Used by the end-of-kernel cache flush: the dirty lines drain through
        the AXI data ports after the last wavefront completes, so the traffic
        (and the port time it occupies) shows up in :class:`MemoryTrafficStats`
        without extending the kernel's cycle count.  Returns the completion
        time of the last write-back.
        """
        if count < 0:
            raise SimulationError(f"write-back burst count must be non-negative, got {count}")
        done = now
        for _ in range(count):
            done = self.write_back(now)
        return done

    def earliest_free(self) -> float:
        """Earliest time any port becomes free (used by tests and reports)."""
        return min(self._port_free)
