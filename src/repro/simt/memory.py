"""Memory models of the G-GPU: global memory, runtime memory, and LRAM.

The FGPU memory hierarchy consists of a byte-addressable global memory reached
through the data cache and AXI data interfaces, a Runtime Memory (RTM) holding
kernel descriptors and arguments written by the host over the AXI control
interface, and per-CU local scratchpads (LRAM).  All of them store 32-bit
words; the simulator keeps data in numpy arrays for speed.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.errors import SimulationError

WORD_BYTES = 4


class GlobalMemory:
    """Word-addressable global memory backing store.

    Addresses handed to the load/store units are byte addresses (as produced
    by pointer arithmetic in kernels); they must be word aligned.
    """

    def __init__(self, size_bytes: int = 64 * 1024 * 1024) -> None:
        if size_bytes <= 0 or size_bytes % WORD_BYTES != 0:
            raise SimulationError(f"memory size must be a positive multiple of 4, got {size_bytes}")
        self.size_bytes = size_bytes
        self._words = np.zeros(size_bytes // WORD_BYTES, dtype=np.int64)
        self._next_alloc = WORD_BYTES  # keep address 0 unused to catch null pointers

    # ------------------------------------------------------------------ #
    # Host-side buffer management (the OpenCL-like API uses this)
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Return the memory to its post-construction state.

        Zeroes the backing store and rewinds the bump allocator, so a reused
        memory hands out the same addresses — and the same initial contents —
        as a freshly built one.  The multi-device runtime relies on this to
        recycle simulator instances between sweep cells.
        """
        self._words.fill(0)
        self._next_alloc = WORD_BYTES

    def allocate(self, num_words: int, align_bytes: int = 64) -> int:
        """Reserve ``num_words`` 32-bit words and return the base byte address."""
        if num_words <= 0:
            raise SimulationError(f"allocation must be positive, got {num_words} words")
        base = self._next_alloc
        if base % align_bytes:
            base += align_bytes - (base % align_bytes)
        end = base + num_words * WORD_BYTES
        if end > self.size_bytes:
            raise SimulationError(
                f"out of global memory: requested {num_words} words at {base:#x}"
            )
        self._next_alloc = end
        return base

    def write_buffer(self, base_addr: int, values: Sequence[int]) -> None:
        """Copy host data into global memory starting at ``base_addr``."""
        data = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
        index = self._word_index(base_addr)
        if index + data.size > self._words.size:
            raise SimulationError(f"write of {data.size} words at {base_addr:#x} overflows memory")
        self._words[index : index + data.size] = data

    def read_buffer(self, base_addr: int, num_words: int) -> np.ndarray:
        """Copy ``num_words`` words starting at ``base_addr`` back to the host."""
        index = self._word_index(base_addr)
        if index + num_words > self._words.size:
            raise SimulationError(f"read of {num_words} words at {base_addr:#x} overflows memory")
        return self._words[index : index + num_words].astype(np.uint32)

    # ------------------------------------------------------------------ #
    # Device-side accesses (vectorized over wavefront lanes)
    # ------------------------------------------------------------------ #
    def load_words(self, byte_addresses: np.ndarray) -> np.ndarray:
        """Load one word per lane from the given byte addresses."""
        return self._words[self._word_indices(byte_addresses)]

    def store_words(self, byte_addresses: np.ndarray, values: np.ndarray) -> None:
        """Store one word per lane to the given byte addresses."""
        self._words[self._word_indices(byte_addresses)] = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _word_index(self, byte_addr: int) -> int:
        if byte_addr % WORD_BYTES:
            raise SimulationError(f"unaligned word access at byte address {byte_addr:#x}")
        if not 0 <= byte_addr < self.size_bytes:
            raise SimulationError(f"global memory access out of range: {byte_addr:#x}")
        return byte_addr // WORD_BYTES

    def _word_indices(self, byte_addresses: np.ndarray) -> np.ndarray:
        """Validate a vector of byte addresses and return their word indices.

        The alignment and range checks run once per wavefront memory access,
        so they are phrased as scalar reductions (one pass each) instead of
        building and re-reducing intermediate boolean arrays per condition.
        """
        addresses = np.asarray(byte_addresses, dtype=np.int64)
        if addresses.size == 0:
            return addresses
        # The bitwise OR of all addresses exposes both misalignment (a set
        # low bit) and negativity (the sign bit) in one reduction without an
        # intermediate boolean array; only the upper bound needs a second.
        combined = int(np.bitwise_or.reduce(addresses))
        if combined & (WORD_BYTES - 1):
            bad = addresses[addresses % WORD_BYTES != 0][0]
            raise SimulationError(f"unaligned word access at byte address {int(bad):#x}")
        if combined < 0 or int(addresses.max()) >= self.size_bytes:
            bad = addresses[(addresses < 0) | (addresses >= self.size_bytes)][0]
            raise SimulationError(f"global memory access out of range: {int(bad):#x}")
        return addresses >> 2


class RuntimeMemory:
    """Runtime memory (RTM) holding the launch descriptor and kernel arguments.

    The host writes the kernel arguments, NDRange geometry, and workgroup size
    here through the AXI control interface before starting the accelerator;
    the ``LP`` instruction and the work-item id instructions read it.
    """

    def __init__(self, num_words: int = 512) -> None:
        if num_words <= 0:
            raise SimulationError("runtime memory must have a positive size")
        self.num_words = num_words
        self._args: Dict[int, int] = {}
        self.global_size: Optional[int] = None
        self.workgroup_size: Optional[int] = None

    def write_descriptor(self, global_size: int, workgroup_size: int, args: Sequence[int]) -> None:
        """Store one kernel launch descriptor."""
        if len(args) > self.num_words - 8:
            raise SimulationError(
                f"too many kernel arguments ({len(args)}) for a {self.num_words}-word RTM"
            )
        self.global_size = global_size
        self.workgroup_size = workgroup_size
        self._args = {index: int(value) & 0xFFFFFFFF for index, value in enumerate(args)}

    def read_arg(self, index: int) -> int:
        """Read kernel argument ``index`` (the LP instruction)."""
        if index not in self._args:
            raise SimulationError(f"kernel argument {index} was never written to the RTM")
        return self._args[index]

    @property
    def num_args(self) -> int:
        return len(self._args)


class LocalMemory:
    """Per-CU local scratchpad (LRAM), word addressable."""

    def __init__(self, num_words: int = 2048) -> None:
        if num_words <= 0:
            raise SimulationError("local memory must have a positive size")
        self.num_words = num_words
        self._words = np.zeros(num_words, dtype=np.int64)

    def load_words(self, word_indices: np.ndarray) -> np.ndarray:
        """Load one word per lane from the given word indices."""
        self._check(word_indices)
        return self._words[np.asarray(word_indices, dtype=np.int64)]

    def store_words(self, word_indices: np.ndarray, values: np.ndarray) -> None:
        """Store one word per lane to the given word indices."""
        self._check(word_indices)
        self._words[np.asarray(word_indices, dtype=np.int64)] = (
            np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
        )

    def _check(self, word_indices: np.ndarray) -> None:
        indices = np.asarray(word_indices, dtype=np.int64)
        if indices.size == 0:
            return
        if int(indices.min()) < 0 or int(indices.max()) >= self.num_words:
            bad = indices[(indices < 0) | (indices >= self.num_words)][0]
            raise SimulationError(f"local memory access out of range: index {int(bad)}")
