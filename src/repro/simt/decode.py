"""Pre-decoded kernel programs for the SIMT issue loop.

The compute unit issues millions of wavefront-instructions per simulated
kernel, and in the original engine every single issue re-derived the opcode
class, rebuilt the latency table, converted ``Register`` operands to ints,
and dict-dispatched to a handler.  :func:`predecode_program` resolves all of
that exactly once per launch: each instruction becomes a :class:`DecodedOp`
carrying

* a small integer ``kind`` the compute unit switches on,
* plain-int operand fields (``rd``/``rs``/``rt``/``imm``),
* the timing facts (``latency``, ``uses_pe``) already looked up, and
* per-kind pre-resolved data: the lane-arithmetic callable for register ALU
  forms, the broadcast immediate vector for immediate forms, and the branch
  comparison for conditional branches.

``macro_safe`` marks instructions (ALU/MUL/DIV, SPECIAL, PARAM, LOCAL,
MASK) that touch no shared machine state — no global memory, no control
flow, no barriers — so an uncontended wavefront can issue a straight-line
run of them in one scheduling event without any other wavefront being able
to observe the difference; the compute unit's macro-stepping fast path
checks this flag per instruction.

The decoded program is immutable and depends only on the program, the timing
model, and the wavefront geometry, so one decode is shared by every compute
unit of a launch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.assembler import Program
from repro.arch.isa import Instruction, OpClass, Opcode
from repro.errors import SimulationError
from repro.simt import pe
from repro.simt.timing import TimingModel

# Instruction kinds (dense ints the compute unit dispatches on).
K_ALU_BIN = 0  # three-register ALU/MUL/DIV
K_ALU_IMM = 1  # immediate ALU with a register source
K_ALU_CONST = 2  # LI/LUI: result is a pre-broadcast constant
K_SPECIAL = 3  # work-item identification
K_PARAM = 4  # kernel-parameter load from the RTM
K_LOAD = 5  # global-memory load
K_STORE = 6  # global-memory store
K_LOCAL_LOAD = 7  # LRAM load
K_LOCAL_STORE = 8  # LRAM store
K_PUSHM = 9
K_CMASK = 10
K_INVM = 11
K_POPM = 12
K_JMP = 13
K_BEMPTY = 14
K_BCOND = 15  # BEQ/BNE/BLT/BGE
K_SYNC = 16
K_RET = 17

# Branch comparison codes for K_BCOND.
B_EQ, B_NE, B_LT, B_GE = 0, 1, 2, 3

# Region-plan step marker for instructions with no functional effect (ALU or
# SPECIAL writes to the hard-wired r0): they still occupy an issue slot, so
# they keep their position in the plan, but the batch executor skips them.
K_SKIP = -1

_BCOND_CODES = {
    Opcode.BEQ: B_EQ,
    Opcode.BNE: B_NE,
    Opcode.BLT: B_LT,
    Opcode.BGE: B_GE,
}

# Classes whose execution touches only wavefront-private or CU-private state
# and never alters control flow or another wavefront's readiness.
_MACRO_SAFE_CLASSES = frozenset(
    (
        OpClass.ALU,
        OpClass.MUL,
        OpClass.DIV,
        OpClass.SPECIAL,
        OpClass.PARAM,
        OpClass.LOCAL,
        OpClass.MASK,
    )
)

# Kinds whose functional effect is confined to *wavefront-private* state
# (registers and the execution-mask stack) and whose timing is independent of
# the data they compute.  These are the instructions the cross-wavefront
# batch engine may defer: their issue timing can be replayed exactly without
# executing them, and their execution can be stacked across wavefronts later.
# LOCAL loads/stores are macro-safe but NOT batch-safe: LRAM is shared by the
# co-resident workgroups of a CU, so their execution order must follow issue
# order exactly.
_BATCH_SAFE_KINDS = frozenset(
    (
        K_ALU_BIN,
        K_ALU_IMM,
        K_ALU_CONST,
        K_SPECIAL,
        K_PARAM,
        K_PUSHM,
        K_CMASK,
        K_INVM,
        K_POPM,
    )
)

# Step kinds that write a destination register.
_REG_WRITE_KINDS = frozenset((K_ALU_BIN, K_ALU_IMM, K_ALU_CONST, K_SPECIAL, K_PARAM))
_MASK_KINDS = frozenset((K_PUSHM, K_CMASK, K_INVM, K_POPM))


class DecodedOp:
    """One fully resolved instruction of a bound kernel program."""

    __slots__ = (
        "kind",
        "opcode",
        "opclass",
        "class_key",
        "rd",
        "rs",
        "rt",
        "imm",
        "latency",
        "uses_pe",
        "macro_safe",
        "batch_safe",
        "fn",
        "const",
        "instruction",
    )

    def __init__(
        self,
        kind: int,
        instruction: Instruction,
        latency: int,
        uses_pe: bool,
    ) -> None:
        self.kind = kind
        self.opcode = instruction.opcode
        self.opclass = instruction.opcode.opclass
        self.class_key = self.opclass.value
        self.rd = int(instruction.rd) if instruction.rd is not None else 0
        self.rs = int(instruction.rs) if instruction.rs is not None else 0
        self.rt = int(instruction.rt) if instruction.rt is not None else 0
        self.imm = int(instruction.imm) if instruction.imm is not None else 0
        self.latency = latency
        self.uses_pe = uses_pe
        self.macro_safe = self.opclass in _MACRO_SAFE_CLASSES
        self.batch_safe = kind in _BATCH_SAFE_KINDS
        self.fn = None  # lane-arithmetic callable (K_ALU_BIN / K_ALU_IMM)
        self.const = None  # broadcast immediate lanes (K_ALU_IMM / K_ALU_CONST)
        self.instruction = instruction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodedOp({self.instruction.text()}, kind={self.kind})"


# Field positions of the packed per-op tuples (DecodedProgram.packed).
P_KIND = 0
P_RD = 1
P_RS = 2
P_RT = 3
P_IMM = 4
P_LATENCY = 5
P_USES_PE = 6
P_MACRO_SAFE = 7
P_FN = 8
P_CONST = 9
P_CLASS_KEY = 10


class RegionPlan:
    """Execution plan of one batch-safe region ``[start, end)`` of a program.

    Computed once per distinct region and cached on the
    :class:`DecodedProgram` (see :meth:`DecodedProgram.region_plan`): the
    cross-wavefront batch executor replays a region's functional effect for a
    whole *stack* of wavefronts at once, and everything about that replay
    that does not depend on wavefront data lives here.

    * ``steps`` — one tuple ``(kind, rd, rs, rt, fn, const, imm, opcode)``
      per instruction of the region, in order.  Instructions whose only
      effect would be a write to the hard-wired-zero ``r0`` are marked
      :data:`K_SKIP` (they keep their slot so per-position lane accounting
      stays exact).
    * ``live_in`` — registers read before they are written in the region (the
      minimal gather set when every lane of every wavefront is active).
    * ``touched`` — ``live_in`` plus every written register (the gather set
      when masked merges need the old destination values).
    * ``writes`` — registers written by the region (``r0`` excluded).
    * ``pe_ops`` / ``plain_ops`` — instruction counts by PE-array usage, from
      which the compute unit derives the region's busy cycles.
    * ``mix_counts`` — instruction-mix increments by opcode class key.
    * ``has_mask_ops`` — whether the region manipulates the execution mask
      (forces the general masked execution path).
    """

    __slots__ = (
        "steps",
        "live_in",
        "touched",
        "writes",
        "pe_ops",
        "plain_ops",
        "mix_counts",
        "has_mask_ops",
        "length",
    )

    def __init__(self, ops: List[DecodedOp]) -> None:
        steps = []
        live_in: List[int] = []
        seen_reads = set()
        written = set()
        writes: List[int] = []
        pe_ops = 0
        plain_ops = 0
        mix: dict = {}
        has_mask = False
        for op in ops:
            kind = op.kind
            mix[op.class_key] = mix.get(op.class_key, 0) + 1
            if op.uses_pe:
                pe_ops += 1
            else:
                plain_ops += 1
            rd = op.rd
            step_kind = kind
            if kind in _MASK_KINDS:
                has_mask = True
            dead = kind in _REG_WRITE_KINDS and rd == 0 and kind != K_PARAM
            if dead:
                step_kind = K_SKIP
            else:
                if kind == K_ALU_BIN:
                    reads = (op.rs, op.rt)
                elif kind == K_ALU_IMM or kind == K_CMASK:
                    reads = (op.rs,)
                else:
                    reads = ()
                for reg in reads:
                    if reg not in written and reg not in seen_reads:
                        seen_reads.add(reg)
                        live_in.append(reg)
                if kind in _REG_WRITE_KINDS and rd and rd not in written:
                    written.add(rd)
                    writes.append(rd)
            steps.append((step_kind, rd, op.rs, op.rt, op.fn, op.const, op.imm, op.opcode))
        self.steps = steps
        self.live_in = tuple(live_in)
        self.writes = tuple(writes)
        self.touched = tuple(live_in + [reg for reg in writes if reg not in seen_reads])
        self.pe_ops = pe_ops
        self.plain_ops = plain_ops
        self.mix_counts = mix
        self.has_mask_ops = has_mask
        self.length = len(ops)


class DecodedProgram:
    """A kernel program resolved for execution (shared by all CUs).

    ``ops`` holds the :class:`DecodedOp` records; ``packed`` flattens each
    record into a plain tuple (see the ``P_*`` field indices) so the issue
    loop replaces half a dozen attribute lookups per issued instruction with
    one C-level tuple index.  ``max_register`` is the largest register index
    any instruction names; the compute unit checks it once against the
    register-file depth when the program is bound, which lets the issue loop
    index the register storage directly instead of bounds-checking every
    operand of every issue.

    For the cross-wavefront batch engine the program additionally carries the
    per-pc timing facts as parallel lists (``op_latency``, ``op_uses_pe``)
    and ``batch_end``: for each pc, the end (exclusive) of the maximal run of
    batch-safe instructions starting there (``batch_end[pc] == pc`` when the
    instruction at ``pc`` is not batch-safe).  Region execution plans are
    built lazily per distinct ``(start, end)`` window and cached for the
    lifetime of the decoded program.
    """

    __slots__ = (
        "name",
        "ops",
        "packed",
        "max_register",
        "op_latency",
        "op_uses_pe",
        "batch_end",
        "_region_plans",
    )

    def __init__(self, name: str, ops: List[DecodedOp]) -> None:
        self.name = name
        self.ops = ops
        self.packed = [
            (
                op.kind,
                op.rd,
                op.rs,
                op.rt,
                op.imm,
                op.latency,
                op.uses_pe,
                op.macro_safe,
                op.fn,
                op.const,
                op.class_key,
            )
            for op in ops
        ]
        self.max_register = max(
            (max(op.rd, op.rs, op.rt) for op in ops), default=0
        )
        self.op_latency = [op.latency for op in ops]
        self.op_uses_pe = [op.uses_pe for op in ops]
        num_ops = len(ops)
        batch_end = [0] * num_ops
        for index in range(num_ops - 1, -1, -1):
            if ops[index].batch_safe:
                if index + 1 < num_ops and ops[index + 1].batch_safe:
                    batch_end[index] = batch_end[index + 1]
                else:
                    batch_end[index] = index + 1
            else:
                batch_end[index] = index
        self.batch_end = batch_end
        self._region_plans: dict = {}

    def region_plan(self, start: int, end: int) -> RegionPlan:
        """Execution plan of the batch-safe region ``[start, end)`` (cached)."""
        key = (start, end)
        plan = self._region_plans.get(key)
        if plan is None:
            plan = RegionPlan(self.ops[start:end])
            self._region_plans[key] = plan
        return plan

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, index: int) -> DecodedOp:
        return self.ops[index]


def _classify(instruction: Instruction) -> int:
    opcode = instruction.opcode
    opclass = opcode.opclass
    if opclass in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
        if opcode in (Opcode.LI, Opcode.LUI):
            return K_ALU_CONST
        if pe.is_binary_alu(opcode):
            return K_ALU_BIN
        return K_ALU_IMM
    if opclass is OpClass.SPECIAL:
        return K_SPECIAL
    if opclass is OpClass.PARAM:
        return K_PARAM
    if opclass is OpClass.LOAD:
        return K_LOAD
    if opclass is OpClass.STORE:
        return K_STORE
    if opclass is OpClass.LOCAL:
        return K_LOCAL_LOAD if opcode is Opcode.LLW else K_LOCAL_STORE
    if opclass is OpClass.MASK:
        return {
            Opcode.PUSHM: K_PUSHM,
            Opcode.CMASK: K_CMASK,
            Opcode.INVM: K_INVM,
            Opcode.POPM: K_POPM,
        }[opcode]
    if opclass is OpClass.BRANCH:
        if opcode is Opcode.JMP:
            return K_JMP
        if opcode is Opcode.BEMPTY:
            return K_BEMPTY
        return K_BCOND
    if opclass is OpClass.SYNC:
        return K_SYNC
    if opclass is OpClass.RET:
        return K_RET
    raise SimulationError(f"unhandled opcode class {opclass}")  # pragma: no cover


def predecode_program(
    program: Program,
    timing: Optional[TimingModel] = None,
    wavefront_size: int = 64,
) -> DecodedProgram:
    """Resolve ``program`` into a :class:`DecodedProgram` for execution."""
    timing = timing or TimingModel()
    ops: List[DecodedOp] = []
    for instruction in program.instructions:
        opclass = instruction.opcode.opclass
        op = DecodedOp(
            kind=_classify(instruction),
            instruction=instruction,
            latency=timing.latency_for(opclass),
            uses_pe=timing.uses_pe_array(opclass),
        )
        kind = op.kind
        if kind == K_ALU_BIN:
            op.fn = pe.binary_operation(op.opcode)
        elif kind == K_ALU_IMM:
            op.fn = pe.binary_operation(pe.immediate_base(op.opcode))
            op.const = np.full(wavefront_size, op.imm, dtype=np.int64) & pe.WORD_MASK
        elif kind == K_ALU_CONST:
            value = op.imm if op.opcode is Opcode.LI else op.imm << 14
            op.const = np.full(wavefront_size, value & pe.WORD_MASK, dtype=np.int64)
        elif kind == K_BCOND:
            op.fn = _BCOND_CODES[op.opcode]
        ops.append(op)
    return DecodedProgram(program.name, ops)
