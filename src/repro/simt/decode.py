"""Pre-decoded kernel programs for the SIMT issue loop.

The compute unit issues millions of wavefront-instructions per simulated
kernel, and in the original engine every single issue re-derived the opcode
class, rebuilt the latency table, converted ``Register`` operands to ints,
and dict-dispatched to a handler.  :func:`predecode_program` resolves all of
that exactly once per launch: each instruction becomes a :class:`DecodedOp`
carrying

* a small integer ``kind`` the compute unit switches on,
* plain-int operand fields (``rd``/``rs``/``rt``/``imm``),
* the timing facts (``latency``, ``uses_pe``) already looked up, and
* per-kind pre-resolved data: the lane-arithmetic callable for register ALU
  forms, the broadcast immediate vector for immediate forms, and the branch
  comparison for conditional branches.

``macro_safe`` marks instructions (ALU/MUL/DIV, SPECIAL, PARAM, LOCAL,
MASK) that touch no shared machine state — no global memory, no control
flow, no barriers — so an uncontended wavefront can issue a straight-line
run of them in one scheduling event without any other wavefront being able
to observe the difference; the compute unit's macro-stepping fast path
checks this flag per instruction.

The decoded program is immutable and depends only on the program, the timing
model, and the wavefront geometry, so one decode is shared by every compute
unit of a launch.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.arch.assembler import Program
from repro.arch.isa import Instruction, OpClass, Opcode
from repro.errors import SimulationError
from repro.simt import pe
from repro.simt.timing import TimingModel

# Instruction kinds (dense ints the compute unit dispatches on).
K_ALU_BIN = 0  # three-register ALU/MUL/DIV
K_ALU_IMM = 1  # immediate ALU with a register source
K_ALU_CONST = 2  # LI/LUI: result is a pre-broadcast constant
K_SPECIAL = 3  # work-item identification
K_PARAM = 4  # kernel-parameter load from the RTM
K_LOAD = 5  # global-memory load
K_STORE = 6  # global-memory store
K_LOCAL_LOAD = 7  # LRAM load
K_LOCAL_STORE = 8  # LRAM store
K_PUSHM = 9
K_CMASK = 10
K_INVM = 11
K_POPM = 12
K_JMP = 13
K_BEMPTY = 14
K_BCOND = 15  # BEQ/BNE/BLT/BGE
K_SYNC = 16
K_RET = 17

# Branch comparison codes for K_BCOND.
B_EQ, B_NE, B_LT, B_GE = 0, 1, 2, 3

_BCOND_CODES = {
    Opcode.BEQ: B_EQ,
    Opcode.BNE: B_NE,
    Opcode.BLT: B_LT,
    Opcode.BGE: B_GE,
}

# Classes whose execution touches only wavefront-private or CU-private state
# and never alters control flow or another wavefront's readiness.
_MACRO_SAFE_CLASSES = frozenset(
    (
        OpClass.ALU,
        OpClass.MUL,
        OpClass.DIV,
        OpClass.SPECIAL,
        OpClass.PARAM,
        OpClass.LOCAL,
        OpClass.MASK,
    )
)


class DecodedOp:
    """One fully resolved instruction of a bound kernel program."""

    __slots__ = (
        "kind",
        "opcode",
        "opclass",
        "class_key",
        "rd",
        "rs",
        "rt",
        "imm",
        "latency",
        "uses_pe",
        "macro_safe",
        "fn",
        "const",
        "instruction",
    )

    def __init__(
        self,
        kind: int,
        instruction: Instruction,
        latency: int,
        uses_pe: bool,
    ) -> None:
        self.kind = kind
        self.opcode = instruction.opcode
        self.opclass = instruction.opcode.opclass
        self.class_key = self.opclass.value
        self.rd = int(instruction.rd) if instruction.rd is not None else 0
        self.rs = int(instruction.rs) if instruction.rs is not None else 0
        self.rt = int(instruction.rt) if instruction.rt is not None else 0
        self.imm = int(instruction.imm) if instruction.imm is not None else 0
        self.latency = latency
        self.uses_pe = uses_pe
        self.macro_safe = self.opclass in _MACRO_SAFE_CLASSES
        self.fn = None  # lane-arithmetic callable (K_ALU_BIN / K_ALU_IMM)
        self.const = None  # broadcast immediate lanes (K_ALU_IMM / K_ALU_CONST)
        self.instruction = instruction

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecodedOp({self.instruction.text()}, kind={self.kind})"


# Field positions of the packed per-op tuples (DecodedProgram.packed).
P_KIND = 0
P_RD = 1
P_RS = 2
P_RT = 3
P_IMM = 4
P_LATENCY = 5
P_USES_PE = 6
P_MACRO_SAFE = 7
P_FN = 8
P_CONST = 9
P_CLASS_KEY = 10


class DecodedProgram:
    """A kernel program resolved for execution (shared by all CUs).

    ``ops`` holds the :class:`DecodedOp` records; ``packed`` flattens each
    record into a plain tuple (see the ``P_*`` field indices) so the issue
    loop replaces half a dozen attribute lookups per issued instruction with
    one C-level tuple index.  ``max_register`` is the largest register index
    any instruction names; the compute unit checks it once against the
    register-file depth when the program is bound, which lets the issue loop
    index the register storage directly instead of bounds-checking every
    operand of every issue.
    """

    __slots__ = ("name", "ops", "packed", "max_register")

    def __init__(self, name: str, ops: List[DecodedOp]) -> None:
        self.name = name
        self.ops = ops
        self.packed = [
            (
                op.kind,
                op.rd,
                op.rs,
                op.rt,
                op.imm,
                op.latency,
                op.uses_pe,
                op.macro_safe,
                op.fn,
                op.const,
                op.class_key,
            )
            for op in ops
        ]
        self.max_register = max(
            (max(op.rd, op.rs, op.rt) for op in ops), default=0
        )

    def __len__(self) -> int:
        return len(self.ops)

    def __getitem__(self, index: int) -> DecodedOp:
        return self.ops[index]


def _classify(instruction: Instruction) -> int:
    opcode = instruction.opcode
    opclass = opcode.opclass
    if opclass in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
        if opcode in (Opcode.LI, Opcode.LUI):
            return K_ALU_CONST
        if pe.is_binary_alu(opcode):
            return K_ALU_BIN
        return K_ALU_IMM
    if opclass is OpClass.SPECIAL:
        return K_SPECIAL
    if opclass is OpClass.PARAM:
        return K_PARAM
    if opclass is OpClass.LOAD:
        return K_LOAD
    if opclass is OpClass.STORE:
        return K_STORE
    if opclass is OpClass.LOCAL:
        return K_LOCAL_LOAD if opcode is Opcode.LLW else K_LOCAL_STORE
    if opclass is OpClass.MASK:
        return {
            Opcode.PUSHM: K_PUSHM,
            Opcode.CMASK: K_CMASK,
            Opcode.INVM: K_INVM,
            Opcode.POPM: K_POPM,
        }[opcode]
    if opclass is OpClass.BRANCH:
        if opcode is Opcode.JMP:
            return K_JMP
        if opcode is Opcode.BEMPTY:
            return K_BEMPTY
        return K_BCOND
    if opclass is OpClass.SYNC:
        return K_SYNC
    if opclass is OpClass.RET:
        return K_RET
    raise SimulationError(f"unhandled opcode class {opclass}")  # pragma: no cover


def predecode_program(
    program: Program,
    timing: Optional[TimingModel] = None,
    wavefront_size: int = 64,
) -> DecodedProgram:
    """Resolve ``program`` into a :class:`DecodedProgram` for execution."""
    timing = timing or TimingModel()
    ops: List[DecodedOp] = []
    for instruction in program.instructions:
        opclass = instruction.opcode.opclass
        op = DecodedOp(
            kind=_classify(instruction),
            instruction=instruction,
            latency=timing.latency_for(opclass),
            uses_pe=timing.uses_pe_array(opclass),
        )
        kind = op.kind
        if kind == K_ALU_BIN:
            op.fn = pe.binary_operation(op.opcode)
        elif kind == K_ALU_IMM:
            op.fn = pe.binary_operation(pe.immediate_base(op.opcode))
            op.const = np.full(wavefront_size, op.imm, dtype=np.int64) & pe.WORD_MASK
        elif kind == K_ALU_CONST:
            value = op.imm if op.opcode is Opcode.LI else op.imm << 14
            op.const = np.full(wavefront_size, value & pe.WORD_MASK, dtype=np.int64)
        elif kind == K_BCOND:
            op.fn = _BCOND_CODES[op.opcode]
        ops.append(op)
    return DecodedProgram(program.name, ops)
