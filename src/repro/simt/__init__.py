"""Cycle-approximate functional simulator of the G-GPU.

This package is the stand-in for the FGPU RTL running on an FPGA or as an
ASIC: it executes SIMT kernel programs functionally (so results can be checked
against reference implementations) while tracking cycle counts with a timing
model that reflects the paper's architecture:

* each Compute Unit streams 64-lane wavefronts through 8 Processing Elements
  (8 cycles of PE-array occupancy per wavefront instruction),
* up to 8 wavefronts (512 work-items) are resident per CU and hide memory
  latency from one another,
* all CUs share one central direct-mapped write-back data cache and a global
  memory controller whose AXI data ports bound the off-chip bandwidth, which
  is what limits scaling from 4 to 8 CUs on memory-bound kernels,
* full thread divergence is supported through an execution-mask stack; a
  divergent wavefront still occupies the full PE-array slot, which is why
  control-divergent kernels (div_int, xcorr, parallel_sel) show poor speed-ups.
"""

from repro.simt.memory import GlobalMemory, RuntimeMemory, LocalMemory
from repro.simt.cache import DataCache, CacheStats
from repro.simt.axi import GlobalMemoryController
from repro.simt.registers import WavefrontRegisterFile
from repro.simt.wavefront import Wavefront
from repro.simt.dispatcher import WorkgroupDispatcher
from repro.simt.scheduler import WavefrontScheduler
from repro.simt.cu import ComputeUnit
from repro.simt.trace import KernelRunStats, InstructionMix
from repro.simt.gpu import GGPUSimulator, LaunchResult

__all__ = [
    "GlobalMemory",
    "RuntimeMemory",
    "LocalMemory",
    "DataCache",
    "CacheStats",
    "GlobalMemoryController",
    "WavefrontRegisterFile",
    "Wavefront",
    "WorkgroupDispatcher",
    "WavefrontScheduler",
    "ComputeUnit",
    "KernelRunStats",
    "InstructionMix",
    "GGPUSimulator",
    "LaunchResult",
]
