"""Cycle-approximate functional simulator of the G-GPU.

This package is the stand-in for the FGPU RTL running on an FPGA or as an
ASIC: it executes SIMT kernel programs functionally (so results can be checked
against reference implementations) while tracking cycle counts with a timing
model that reflects the paper's architecture:

* each Compute Unit streams 64-lane wavefronts through 8 Processing Elements
  (8 cycles of PE-array occupancy per wavefront instruction),
* up to 8 wavefronts (512 work-items) are resident per CU and hide memory
  latency from one another,
* all CUs share one central direct-mapped write-back data cache and a global
  memory controller whose AXI data ports bound the off-chip bandwidth, which
  is what limits scaling from 4 to 8 CUs on memory-bound kernels,
* full thread divergence is supported through an execution-mask stack; a
  divergent wavefront still occupies the full PE-array slot, which is why
  control-divergent kernels (div_int, xcorr, parallel_sel) show poor speed-ups.

Simulator internals
-------------------
The engine is event driven rather than instruction-at-a-time:

* **Global event heap.**  ``GGPUSimulator._run`` keeps a heap of
  ``(next_event_time, cu_index)`` entries and always services the compute
  unit with the earliest pending event, instead of re-scanning every CU and
  every resident wavefront per issued instruction.  Stale heap entries are
  re-validated lazily against the CU's current event time.
* **Cached scheduler state.**  Each ``WavefrontScheduler`` caches its
  earliest-ready time and unfinished-resident count, invalidating them on
  add/remove/ready-time updates, so a CU's ``next_event_time`` is O(1)
  between mutations.
* **Pre-decoded programs.**  ``repro.simt.decode`` resolves each instruction
  once per launch into a ``DecodedOp`` (dispatch kind, plain-int operands,
  pre-looked-up latency/occupancy, pre-broadcast immediates, resolved ALU
  callable); all CUs share the decode.
* **Macro-stepping fast path.**  After issuing the selected instruction, a CU
  keeps issuing for the same wavefront while the next instruction is
  *macro-safe* (ALU/MUL/DIV, SPECIAL, PARAM, LOCAL, MASK — straight-line work
  that touches no shared machine state) and the wavefront stays strictly
  ahead of every other unfinished resident.  Such runs are batched into one
  scheduling event with bulk timing/stats updates; this is provably
  cycle-exact and is locked by golden regression tests
  (``tests/test_simt_golden.py``) that compare against single-instruction
  stepping and pin the Table III cycle counts.
* **Posted stores.**  Global-memory stores never stall the issuing wavefront
  beyond the fixed store pipeline latency; their line traffic still claims
  AXI port time.  See the ``repro.simt.cu`` module docstring for the
  rationale.
* **Accounted memory maintenance.**  The end-of-kernel cache flush drains
  dirty lines through the global memory controller (posted, so it adds AXI
  traffic but not cycles), cache hit latency and per-cycle port width come
  from ``CacheConfig``, and accesses touching more lines than the cache has
  ports are serialized one ``ports``-wide wave per cycle.
"""

from repro.simt.memory import GlobalMemory, RuntimeMemory, LocalMemory
from repro.simt.cache import DataCache, CacheStats
from repro.simt.axi import GlobalMemoryController
from repro.simt.registers import WavefrontRegisterFile
from repro.simt.wavefront import Wavefront
from repro.simt.decode import DecodedOp, DecodedProgram, predecode_program
from repro.simt.dispatcher import WorkgroupDispatcher
from repro.simt.scheduler import WavefrontScheduler
from repro.simt.cu import ComputeUnit
from repro.simt.trace import KernelRunStats, InstructionMix
from repro.simt.gpu import GGPUSimulator, LaunchResult

__all__ = [
    "DecodedOp",
    "DecodedProgram",
    "predecode_program",
    "GlobalMemory",
    "RuntimeMemory",
    "LocalMemory",
    "DataCache",
    "CacheStats",
    "GlobalMemoryController",
    "WavefrontRegisterFile",
    "Wavefront",
    "WorkgroupDispatcher",
    "WavefrontScheduler",
    "ComputeUnit",
    "KernelRunStats",
    "InstructionMix",
    "GGPUSimulator",
    "LaunchResult",
]
