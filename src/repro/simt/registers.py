"""Per-wavefront register file.

Each work-item owns ``num_registers`` 32-bit general-purpose registers; a
wavefront's register state is therefore a ``num_registers x wavefront_size``
array.  In the hardware this is the banked SRAM register file inside each CU
(one of the macros GPUPlanner splits to raise the clock frequency); here it is
a numpy array with masked writes so inactive lanes keep their values across
divergent control flow.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError

WORD_MASK = 0xFFFFFFFF


class WavefrontRegisterFile:
    """Registers of all lanes of one wavefront.

    Register 0 is hard-wired to zero: writes to it are ignored, reads always
    return zero, matching the ISA definition.
    """

    def __init__(self, num_registers: int, wavefront_size: int) -> None:
        if num_registers < 1 or wavefront_size < 1:
            raise SimulationError("register file dimensions must be positive")
        self.num_registers = num_registers
        self.wavefront_size = wavefront_size
        self._values = np.zeros((num_registers, wavefront_size), dtype=np.int64)

    def read(self, index: int) -> np.ndarray:
        """Read a register for all lanes (unsigned 32-bit values in int64)."""
        self._check(index)
        return self._values[index].copy()

    def write(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Write a register for the lanes selected by ``mask``."""
        self._check(index)
        if index == 0:
            return
        values = np.asarray(values, dtype=np.int64) & WORD_MASK
        if np.isscalar(values) or values.ndim == 0:
            values = np.full(self.wavefront_size, int(values), dtype=np.int64)
        self._values[index] = np.where(mask, values, self._values[index])

    def write_all_lanes(self, index: int, values: np.ndarray) -> None:
        """Write a register unconditionally (used to seed work-item ids)."""
        self._check(index)
        if index == 0:
            return
        self._values[index] = np.asarray(values, dtype=np.int64) & WORD_MASK

    def set_row(self, index: int, values: np.ndarray) -> None:
        """Unconditional write of an already-masked int64 lane vector.

        The fast-path twin of :meth:`write_all_lanes`: every value produced
        inside the issue loop (PE lane arithmetic, memory loads, broadcast
        constants, work-item ids) is already wrapped to 32 bits, so the
        per-write ``& WORD_MASK`` pass would re-mask masked data a quarter
        million times per kernel.  Callers owning unmasked data must use
        :meth:`write_all_lanes`.
        """
        self._check(index)
        if index == 0:
            return
        self._values[index] = values

    def merge_row(self, index: int, values: np.ndarray, mask: np.ndarray) -> None:
        """Masked write of an already-masked int64 lane vector (see set_row)."""
        self._check(index)
        if index == 0:
            return
        row = self._values[index]
        self._values[index] = np.where(mask, values, row)

    def snapshot(self) -> np.ndarray:
        """Copy of the whole register state (used by tests)."""
        return self._values.copy()

    def _check(self, index: int) -> None:
        if not 0 <= index < self.num_registers:
            raise SimulationError(f"register index out of range: {index}")
