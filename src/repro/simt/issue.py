"""Cross-wavefront batched execution of deferred batch-safe regions.

The vectorized issue engine (see :meth:`repro.simt.cu.ComputeUnit._step_batch`)
splits a scheduling event into two halves: the *timing* of a batch-safe
instruction run is replayed exactly at event time (it is data-independent),
while the *functional* effect — registers and the execution-mask stack, all
wavefront-private state — is deferred here.  Each deferred window is one
contiguous pc range of one wavefront; windows accumulate across scheduling
events, wavefronts, and compute units until something needs real register
state (a load, store, branch, barrier, LRAM access, or the end of the
launch), at which point :meth:`BatchExecutor.flush` executes everything.

At flush time the pending windows are grouped by ``(program, start)``.  The
round-robin phase stagger of a compute unit means the wavefronts of one
group usually stopped at *different* end pcs (the wavefront that reached the
batch boundary first froze the others mid-window), so a group is a **ragged**
set of windows ``[start, end_i)`` sharing a start.  The group executes as
*stacked* numpy operations over a ``(num_wavefronts, wavefront_size)`` array
per register: the wavefronts are sorted by descending end so the rows still
covering the current pc always form a prefix of the stack, and a wavefront
whose window ends simply drops out of the prefix (its state is scattered
back at that point).  One ufunc call per instruction thus replaces up to
``num_wavefronts`` per-wavefront calls.  A group with a single wavefront
skips the stacking entirely and executes directly on the register rows.

Because batch-safe instructions touch no shared state, the order in which
groups (or wavefronts within a group) execute is unobservable, and every
lane computes the exact value the scalar path would have produced: the lane
arithmetic in :mod:`repro.simt.pe` is element-wise, so stacking wavefronts
along a new axis is bit-identical per lane.

Divergence support mirrors the scalar mask stack: regions containing mask
instructions run a general path that tracks a stacked ``(k, lanes)`` active
mask, a region-local stack for masks pushed inside the window, and a
``consumed`` count for pops that reach into masks pushed *before* the window
(which still live on the per-wavefront stacks).  Active-lane statistics are
mask-dependent, so they are accounted here, per instruction position, rather
than in the timing replay.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.arch.isa import Opcode
from repro.errors import SimulationError
from repro.simt.decode import (
    DecodedProgram,
    RegionPlan,
    K_ALU_BIN,
    K_ALU_CONST,
    K_ALU_IMM,
    K_CMASK,
    K_INVM,
    K_PARAM,
    K_POPM,
    K_PUSHM,
    K_SPECIAL,
)
from repro.simt.wavefront import Wavefront


def _special_rows(
    opcode, wavefronts: List[Wavefront], lanes: int, dim: int = 0
) -> np.ndarray:
    """Stacked result rows of a work-item-identification instruction.

    All wavefronts of a group come from the same launch, so the dimension
    check against the launch rank only needs the first one — and it raises
    the exact error the scalar path would have.
    """
    if dim:
        wavefronts[0].check_dim(dim, opcode.mnemonic)
    if opcode is Opcode.LID:
        return np.stack([wavefront.local_id_dims[dim] for wavefront in wavefronts])
    if opcode is Opcode.GID:
        return np.stack([wavefront.global_id_dims[dim] for wavefront in wavefronts])
    count = len(wavefronts)
    if opcode is Opcode.WGID:
        column = np.fromiter(
            (wavefront.workgroup_id_dims[dim] for wavefront in wavefronts),
            dtype=np.int64,
            count=count,
        )
        return np.broadcast_to(column[:, None], (count, lanes))
    first = wavefronts[0]
    if opcode is Opcode.WGSIZE:
        value = first.workgroup_shape[dim]
    elif opcode is Opcode.GSIZE:
        value = first.global_shape[dim]
    elif opcode is Opcode.NWG:
        value = first.groups_shape[dim]
    else:  # pragma: no cover - defensive
        raise SimulationError(f"unhandled special opcode {opcode.mnemonic}")
    return np.full((count, lanes), value, dtype=np.int64)


def _special_row(opcode, wavefront: Wavefront, lanes: int, dim: int = 0) -> np.ndarray:
    """Single-wavefront result row of a work-item-identification instruction."""
    if dim:
        wavefront.check_dim(dim, opcode.mnemonic)
    if opcode is Opcode.LID:
        return wavefront.local_id_dims[dim]
    if opcode is Opcode.GID:
        return wavefront.global_id_dims[dim]
    if opcode is Opcode.WGID:
        value = wavefront.workgroup_id_dims[dim]
    elif opcode is Opcode.WGSIZE:
        value = wavefront.workgroup_shape[dim]
    elif opcode is Opcode.GSIZE:
        value = wavefront.global_shape[dim]
    elif opcode is Opcode.NWG:
        value = wavefront.groups_shape[dim]
    else:  # pragma: no cover - defensive
        raise SimulationError(f"unhandled special opcode {opcode.mnemonic}")
    return np.full(lanes, value, dtype=np.int64)


def _outer_mask_rows(
    wavefronts: List[Wavefront], consumed: int, mnemonic: str
) -> np.ndarray:
    """Stack the mask-stack entries ``consumed`` levels below each top.

    Reaches into masks pushed *before* the deferred window; raises exactly
    like the scalar path when a wavefront's stack is too shallow.
    """
    rows = []
    for wavefront in wavefronts:
        stack = wavefront._mask_stack
        if len(stack) <= consumed:
            raise SimulationError(f"{mnemonic} executed with an empty mask stack")
        rows.append(stack[-1 - consumed])
    return np.stack(rows)


class BatchExecutor:
    """Accumulates deferred batch-safe windows and executes them stacked."""

    __slots__ = ("_pending",)

    def __init__(self) -> None:
        # wavefront -> [program, cu, start_pc, end_pc]; windows of one
        # wavefront are always contiguous (any scalar-path activity flushes
        # first), so a later deferral merely extends the recorded end.
        self._pending: Dict[Wavefront, list] = {}

    def has_pending(self) -> bool:
        """Whether any deferred window awaits execution."""
        return bool(self._pending)

    def clear(self) -> None:
        """Drop all deferred windows (start of a new launch)."""
        self._pending.clear()

    def defer(
        self,
        wavefront: Wavefront,
        program: DecodedProgram,
        cu,
        start: int,
        end: int,
    ) -> None:
        """Record that ``wavefront`` issued program window ``[start, end)``."""
        entry = self._pending.get(wavefront)
        if entry is not None:
            if entry[0] is program and entry[3] == start:
                entry[3] = end
                return
            self.flush()  # defensive: a non-contiguous window cannot merge
        self._pending[wavefront] = [program, cu, start, end]

    def flush(self) -> None:
        """Execute every deferred window, stacked across wavefronts and CUs."""
        pending = self._pending
        if not pending:
            return
        self._pending = {}
        groups: dict = {}
        for wavefront, (program, cu, start, end) in pending.items():
            key = (id(program), start)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = (program, start, [])
            bucket[2].append((end, wavefront, cu))
        for program, start, members in groups.values():
            if len(members) == 1:
                end, wavefront, cu = members[0]
                self._execute_single(
                    program.region_plan(start, end), wavefront, cu
                )
            else:
                self._execute_ragged(program, start, members)

    def flush_wavefront(self, wavefront: Wavefront) -> None:
        """Materialize ``wavefront``'s private state before a scalar step.

        Deferred windows touch only wavefront-private state, so a load,
        store, branch, or LRAM access of one wavefront needs *its* window
        executed — every other wavefront's window can stay deferred and keep
        accumulating.  The whole same-start group is executed together
        anyway: it costs one stacked pass now instead of several single-row
        passes later (the group's other members would each flush alone at
        their own next scalar step), and it is unobservable — batch-safe
        windows of different wavefronts commute.
        """
        pending = self._pending
        entry = pending.pop(wavefront, None)
        if entry is None:
            return
        program, cu, start, end = entry
        members = [(end, wavefront, cu)]
        if pending:
            same_start = [
                other
                for other, (other_program, _, other_start, _) in pending.items()
                if other_program is program and other_start == start
            ]
            for other in same_start:
                _, other_cu, _, other_end = pending.pop(other)
                members.append((other_end, other, other_cu))
        if len(members) == 1:
            self._execute_single(program.region_plan(start, end), wavefront, cu)
        else:
            self._execute_ragged(program, start, members)

    # ------------------------------------------------------------------ #
    # Single-wavefront execution (no stacking overhead)
    # ------------------------------------------------------------------ #
    def _execute_single(self, plan: RegionPlan, wavefront: Wavefront, cu) -> None:
        """Execute one wavefront's window directly on its register rows.

        Mirrors the functional half of the scalar issue loop; used when a
        flush group holds a single wavefront, where stacking into a
        ``(1, lanes)`` array would cost more than it saves.
        """
        rows = wavefront.registers._values
        lanes = wavefront.wavefront_size
        rtm = cu._rtm
        if not plan.has_mask_ops and wavefront._active_count == lanes:
            for kind, rd, rs, rt, fn, const, imm, opcode in plan.steps:
                if kind == K_ALU_BIN:
                    rows[rd] = fn(rows[rs], rows[rt])
                elif kind == K_ALU_IMM:
                    rows[rd] = fn(rows[rs], const)
                elif kind == K_ALU_CONST:
                    rows[rd] = const
                elif kind == K_SPECIAL:
                    rows[rd] = _special_row(opcode, wavefront, lanes, imm)
                elif kind == K_PARAM:
                    value = rtm.read_arg(imm)
                    if rd:
                        rows[rd] = value
                # K_SKIP: no functional effect.
            issues = plan.length * lanes
            wavefront.active_lane_issues += issues
            cu.stats.active_lane_issues += issues
            return
        mask = wavefront.active_mask
        count = wavefront._active_count
        issues = 0
        for kind, rd, rs, rt, fn, const, imm, opcode in plan.steps:
            if kind == K_ALU_BIN:
                rows[rd] = np.where(mask, fn(rows[rs], rows[rt]), rows[rd])
            elif kind == K_ALU_IMM:
                rows[rd] = np.where(mask, fn(rows[rs], const), rows[rd])
            elif kind == K_ALU_CONST:
                rows[rd] = np.where(mask, const, rows[rd])
            elif kind == K_SPECIAL:
                result = _special_row(opcode, wavefront, lanes, imm)
                rows[rd] = np.where(mask, result, rows[rd])
            elif kind == K_PARAM:
                value = rtm.read_arg(imm)
                if rd:
                    rows[rd] = np.where(mask, value, rows[rd])
            elif kind == K_PUSHM:
                wavefront.push_mask()
                mask = wavefront.active_mask
            elif kind == K_CMASK:
                wavefront.constrain_mask(rows[rs])
                mask = wavefront.active_mask
                count = wavefront._active_count
            elif kind == K_INVM:
                wavefront.invert_mask()
                mask = wavefront.active_mask
                count = wavefront._active_count
            elif kind == K_POPM:
                wavefront.pop_mask()
                mask = wavefront.active_mask
                count = wavefront._active_count
            issues += count
        wavefront.active_lane_issues += issues
        cu.stats.active_lane_issues += issues

    # ------------------------------------------------------------------ #
    # Ragged group execution
    # ------------------------------------------------------------------ #
    def _execute_ragged(self, program: DecodedProgram, start: int, members) -> None:
        """Execute a same-start group of windows with possibly ragged ends.

        The members are sorted by descending end pc so the windows still
        covering the current instruction always occupy a prefix of the
        stacked arrays; when the walk reaches a member's end, that row's
        state is scattered back and the active prefix shrinks.  Splitting
        the group at the distinct ends instead would re-stack the shared
        prefix once per distinct end.
        """
        members.sort(key=lambda member: member[0], reverse=True)
        ends = [member[0] for member in members]
        wavefronts = [member[1] for member in members]
        cus = [member[2] for member in members]
        plan = program.region_plan(start, ends[0])
        count = len(wavefronts)
        lanes = wavefronts[0].wavefront_size
        if not plan.has_mask_ops and all(
            wavefront._active_count == lanes for wavefront in wavefronts
        ):
            self._execute_full(plan, wavefronts, cus, ends, start, count, lanes)
        else:
            self._execute_masked(plan, wavefronts, cus, ends, start, count, lanes)

    def _execute_full(
        self,
        plan: RegionPlan,
        wavefronts: List[Wavefront],
        cus: List,
        ends: List[int],
        start: int,
        count: int,
        lanes: int,
    ) -> None:
        """Every lane of every wavefront active and no mask traffic: the
        stacked operations write destinations unconditionally."""
        stacked = {
            reg: np.stack([wavefront.registers._values[reg] for wavefront in wavefronts])
            for reg in plan.live_in
        }
        rtm = cus[0]._rtm
        written: List[int] = []
        written_seen = set()
        # ``alive``: rows [0, alive) still cover the current pc.
        alive = count
        pc = start
        for kind, rd, rs, rt, fn, const, imm, opcode in plan.steps:
            while alive and ends[alive - 1] <= pc:
                alive -= 1
                self._scatter_row(
                    stacked, written, wavefronts, alive, cus, (pc - start) * lanes
                )
            pc += 1
            if kind == K_ALU_BIN:
                result = fn(stacked[rs][:alive], stacked[rt][:alive])
            elif kind == K_ALU_IMM:
                result = fn(stacked[rs][:alive], const)
            elif kind == K_ALU_CONST:
                result = np.broadcast_to(const, (alive, lanes))
            elif kind == K_SPECIAL:
                result = _special_rows(opcode, wavefronts[:alive], lanes, imm)
            elif kind == K_PARAM:
                value = rtm.read_arg(imm)
                if rd == 0:
                    continue
                result = np.full((alive, lanes), value, dtype=np.int64)
            else:  # K_SKIP
                continue
            target = stacked.get(rd)
            if target is None or target.shape[0] != count:
                # First write to this register, or a prior write happened
                # while fewer rows were alive (impossible for a shrinking
                # prefix, kept for clarity): allocate the full stack.
                full = np.empty((count, lanes), dtype=np.int64)
                if target is not None:
                    full[: target.shape[0]] = target
                stacked[rd] = full
                target = full
            target[:alive] = result
            if rd not in written_seen:
                written_seen.add(rd)
                written.append(rd)
        issues = (pc - start) * lanes
        for index in range(alive):
            self._scatter_row(stacked, written, wavefronts, index, cus, issues)

    @staticmethod
    def _scatter_row(
        stacked: dict,
        written: List[int],
        wavefronts: List[Wavefront],
        index: int,
        cus: List,
        issues: int,
    ) -> None:
        """Write one wavefront's computed registers and lane stats back."""
        wavefront = wavefronts[index]
        rows = wavefront.registers._values
        for reg in written:
            rows[reg] = stacked[reg][index]
        wavefront.active_lane_issues += issues
        cus[index].stats.active_lane_issues += issues

    def _execute_masked(
        self,
        plan: RegionPlan,
        wavefronts: List[Wavefront],
        cus: List,
        ends: List[int],
        start: int,
        count: int,
        lanes: int,
    ) -> None:
        """General path: stacked execution under the stacked active masks."""
        stacked = {
            reg: np.stack([wavefront.registers._values[reg] for wavefront in wavefronts])
            for reg in plan.touched
        }
        masks = np.stack([wavefront.active_mask for wavefront in wavefronts])
        counts = np.fromiter(
            (wavefront._active_count for wavefront in wavefronts),
            dtype=np.int64,
            count=count,
        )
        lane_acc = np.zeros(count, dtype=np.int64)
        region_stack: List[np.ndarray] = []
        consumed = 0
        rtm = cus[0]._rtm
        alive = count
        pc = start
        for kind, rd, rs, rt, fn, const, imm, opcode in plan.steps:
            while alive and ends[alive - 1] <= pc:
                alive -= 1
                self._scatter_masked_row(
                    wavefronts[alive],
                    cus[alive],
                    stacked,
                    plan.writes,
                    masks,
                    counts,
                    region_stack,
                    consumed,
                    int(lane_acc[alive]),
                    alive,
                )
            pc += 1
            view = masks[:alive]
            if kind == K_ALU_BIN:
                stacked[rd][:alive] = np.where(
                    view, fn(stacked[rs][:alive], stacked[rt][:alive]), stacked[rd][:alive]
                )
            elif kind == K_ALU_IMM:
                stacked[rd][:alive] = np.where(
                    view, fn(stacked[rs][:alive], const), stacked[rd][:alive]
                )
            elif kind == K_ALU_CONST:
                stacked[rd][:alive] = np.where(view, const, stacked[rd][:alive])
            elif kind == K_SPECIAL:
                result = _special_rows(opcode, wavefronts[:alive], lanes, imm)
                stacked[rd][:alive] = np.where(view, result, stacked[rd][:alive])
            elif kind == K_PARAM:
                value = rtm.read_arg(imm)
                if rd:
                    stacked[rd][:alive] = np.where(view, value, stacked[rd][:alive])
            elif kind == K_PUSHM:
                # Nothing below ever mutates a mask array in place, so the
                # push can keep a reference instead of the scalar path's copy.
                region_stack.append(masks)
            elif kind == K_CMASK:
                # A fresh array (never mutated in place) so region-stack
                # entries holding the previous masks stay intact; dropped
                # rows keep their frozen state, which later scatters never
                # read.
                masks = masks.copy()
                masks[:alive] &= stacked[rs][:alive] != 0
                counts = counts.copy()
                counts[:alive] = np.count_nonzero(masks[:alive], axis=1)
            elif kind == K_INVM:
                if region_stack:
                    top = region_stack[-1][:alive]
                else:
                    top = _outer_mask_rows(wavefronts[:alive], consumed, "INVM")
                masks = masks.copy()
                masks[:alive] = top & ~masks[:alive]
                counts = counts.copy()
                counts[:alive] = np.count_nonzero(masks[:alive], axis=1)
            elif kind == K_POPM:
                if region_stack:
                    masks = region_stack.pop()
                else:
                    popped = _outer_mask_rows(wavefronts[:alive], consumed, "POPM")
                    consumed += 1
                    masks = masks.copy()
                    masks[:alive] = popped
                counts = counts.copy()
                counts[:alive] = np.count_nonzero(masks[:alive], axis=1)
            # K_SKIP: no functional effect, but the slot still counts below.
            lane_acc[:alive] += counts[:alive]
        for index in range(alive):
            self._scatter_masked_row(
                wavefronts[index],
                cus[index],
                stacked,
                plan.writes,
                masks,
                counts,
                region_stack,
                consumed,
                int(lane_acc[index]),
                index,
            )

    @staticmethod
    def _scatter_masked_row(
        wavefront: Wavefront,
        cu,
        stacked: dict,
        writes,
        masks: np.ndarray,
        counts: np.ndarray,
        region_stack: List[np.ndarray],
        consumed: int,
        issues: int,
        index: int,
    ) -> None:
        """Write one wavefront's registers, mask state, and stats back."""
        rows = wavefront.registers._values
        for reg in writes:
            rows[reg] = stacked[reg][index]
        if consumed:
            del wavefront._mask_stack[-consumed:]
        # Row views of the stacked arrays are safe to install directly:
        # later in-place scalar mask updates touch only that wavefront's
        # row.  Stack entries get copies because the scalar path may
        # mutate a popped mask in place while the entry must survive.
        wavefront.active_mask = masks[index]
        wavefront._active_count = int(counts[index])
        for entry in region_stack:
            wavefront._mask_stack.append(entry[index].copy())
        wavefront.active_lane_issues += issues
        cu.stats.active_lane_issues += issues
