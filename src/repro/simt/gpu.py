"""Top-level G-GPU simulator with an OpenCL-like host API.

The host side of the FGPU only needs standard OpenCL-API procedures: allocate
buffers, write them, set kernel arguments, enqueue an NDRange, and read the
results back.  :class:`GGPUSimulator` exposes exactly that surface and runs
the kernel on the configured number of Compute Units, returning the cycle
count and the detailed statistics the evaluation harness consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.kernel import Kernel, NDRange
from repro.errors import KernelError, SimulationError
from repro.simt.axi import GlobalMemoryController
from repro.simt.cache import DataCache
from repro.simt.cu import ComputeUnit
from repro.simt.dispatcher import WorkgroupDispatcher
from repro.simt.memory import GlobalMemory, RuntimeMemory
from repro.simt.timing import TimingModel
from repro.simt.trace import KernelRunStats

ArgValue = Union[int, np.integer]


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel_name: str
    stats: KernelRunStats

    @property
    def cycles(self) -> float:
        """Total cycle count of the launch (the paper's Table III metric)."""
        return self.stats.cycles

    @property
    def kcycles(self) -> float:
        """Cycle count in thousands of cycles."""
        return self.stats.kcycles


class GGPUSimulator:
    """Functional + cycle-approximate simulator of one G-GPU instance."""

    def __init__(
        self,
        config: Optional[GGPUConfig] = None,
        memory_bytes: int = 64 * 1024 * 1024,
        timing: Optional[TimingModel] = None,
    ) -> None:
        self.config = config or GGPUConfig()
        self.timing = timing or TimingModel()
        self.memory = GlobalMemory(memory_bytes)
        self.cache = DataCache(self.config.cache)
        self.memory_controller = GlobalMemoryController(self.config.axi, self.config.cache)
        self.rtm = RuntimeMemory(self.config.rtm_words)
        self.compute_units = [
            ComputeUnit(
                cu_id=index,
                config=self.config,
                cache=self.cache,
                memory_controller=self.memory_controller,
                global_memory=self.memory,
                timing=self.timing,
            )
            for index in range(self.config.num_cus)
        ]

    # ------------------------------------------------------------------ #
    # Host API (OpenCL flavoured)
    # ------------------------------------------------------------------ #
    def allocate_buffer(self, num_words: int) -> int:
        """Allocate a global-memory buffer; returns its base byte address."""
        return self.memory.allocate(num_words)

    def write_buffer(self, base_addr: int, values: Sequence[int]) -> None:
        """Copy host data into a buffer."""
        self.memory.write_buffer(base_addr, values)

    def read_buffer(self, base_addr: int, num_words: int) -> np.ndarray:
        """Read a buffer back to the host."""
        return self.memory.read_buffer(base_addr, num_words)

    def create_buffer(self, values: Sequence[int]) -> int:
        """Allocate a buffer sized for ``values`` and initialize it."""
        values = list(values)
        base = self.allocate_buffer(len(values))
        self.write_buffer(base, values)
        return base

    # ------------------------------------------------------------------ #
    # Kernel launch
    # ------------------------------------------------------------------ #
    def launch(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Dict[str, ArgValue],
    ) -> LaunchResult:
        """Run ``kernel`` over ``ndrange`` with the given argument values."""
        ordered_args = self._order_args(kernel, args)
        if len(kernel.program) > self.config.cram_words:
            raise KernelError(
                f"kernel {kernel.name!r} has {len(kernel.program)} instructions but the "
                f"CRAM holds only {self.config.cram_words}"
            )
        self.rtm.write_descriptor(ndrange.global_size, ndrange.workgroup_size, ordered_args)
        self.cache.reset()
        self.memory_controller.reset()
        for cu in self.compute_units:
            cu.bind(kernel.program, self.rtm)

        dispatcher = WorkgroupDispatcher(self.config, ndrange)
        for cu, wavefronts in zip(self.compute_units, dispatcher.initial_assignment(len(self.compute_units))):
            if wavefronts:
                cu.admit(wavefronts)

        last_completion = self._run(dispatcher)

        stats = KernelRunStats(
            kernel_name=kernel.name,
            num_cus=self.config.num_cus,
            global_size=ndrange.global_size,
            workgroup_size=ndrange.workgroup_size,
            wavefront_size=self.config.wavefront_size,
            cycles=last_completion,
            workgroups_dispatched=dispatcher.dispatched_workgroups,
            cu_stats=[cu.stats for cu in self.compute_units],
            cache=self.cache.stats,
            traffic=self.memory_controller.stats,
        )
        return LaunchResult(kernel.name, stats)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _order_args(self, kernel: Kernel, args: Dict[str, ArgValue]) -> List[int]:
        missing = [arg.name for arg in kernel.args if arg.name not in args]
        if missing:
            raise KernelError(f"kernel {kernel.name!r} is missing arguments: {missing}")
        unknown = [name for name in args if all(arg.name != name for arg in kernel.args)]
        if unknown:
            raise KernelError(f"kernel {kernel.name!r} got unexpected arguments: {unknown}")
        return [int(args[arg.name]) for arg in kernel.args]

    def _run(self, dispatcher: WorkgroupDispatcher) -> float:
        last_completion = 0.0
        guard = 0
        max_steps = 200_000_000  # defensive bound against runaway kernels
        while True:
            busy_cus = [cu for cu in self.compute_units if cu.busy]
            if not busy_cus:
                if dispatcher.has_pending():
                    # All CUs drained but work remains (tiny CU counts with
                    # large workgroups); refill the first CU.
                    wavefronts = dispatcher.refill(0, last_completion)
                    if wavefronts is None:
                        raise SimulationError("dispatcher refused to refill an idle G-GPU")
                    self.compute_units[0].admit(wavefronts)
                    continue
                break
            cu = min(busy_cus, key=lambda candidate: candidate.next_event_time())
            if cu.next_event_time() == float("inf"):
                raise SimulationError("deadlock: all resident wavefronts are blocked")
            retired = cu.step()
            guard += 1
            if guard > max_steps:
                raise SimulationError("simulation exceeded the maximum step count")
            for wavefront in retired:
                last_completion = max(last_completion, wavefront.completion_time)
                refill = dispatcher.refill(cu.resident_wavefronts, wavefront.completion_time)
                if refill is not None:
                    cu.admit(refill)
        return last_completion
