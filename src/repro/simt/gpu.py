"""Top-level G-GPU simulator with an OpenCL-like host API.

The host side of the FGPU only needs standard OpenCL-API procedures: allocate
buffers, write them, set kernel arguments, enqueue an NDRange, and read the
results back.  :class:`GGPUSimulator` exposes exactly that surface and runs
the kernel on the configured number of Compute Units, returning the cycle
count and the detailed statistics the evaluation harness consumes.

The launch loop is a global event heap: every busy CU is represented by a
``(next_event_time, cu_index)`` entry and the simulator always services the
CU with the earliest pending event (ties break toward the lower CU index),
instead of re-scanning every CU's resident wavefronts per issued
instruction.  Entries are invalidated lazily — a popped entry whose CU has
moved on is simply re-pushed at its current event time.

At the end of a launch the dirty cache lines are flushed through the global
memory controller, so the end-of-kernel drain shows up as AXI write-back
traffic (it is posted, so it does not extend the kernel's cycle count).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.kernel import Kernel, NDRange
from repro.errors import KernelError, SimulationError
from repro.simt.axi import GlobalMemoryController
from repro.simt.cache import DataCache
from repro.simt.cu import ComputeUnit, lram_slot_geometry
from repro.simt.decode import DecodedProgram, predecode_program
from repro.simt.dispatcher import WorkgroupDispatcher
from repro.simt.issue import BatchExecutor
from repro.simt.memory import GlobalMemory, RuntimeMemory
from repro.simt.timing import TimingModel
from repro.simt.trace import KernelRunStats

ArgValue = Union[int, np.integer]


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel_name: str
    stats: KernelRunStats

    @property
    def cycles(self) -> float:
        """Total cycle count of the launch (the paper's Table III metric)."""
        return self.stats.cycles

    @property
    def kcycles(self) -> float:
        """Cycle count in thousands of cycles."""
        return self.stats.kcycles


class GGPUSimulator:
    """Functional + cycle-approximate simulator of one G-GPU instance."""

    def __init__(
        self,
        config: Optional[GGPUConfig] = None,
        memory_bytes: int = 64 * 1024 * 1024,
        timing: Optional[TimingModel] = None,
        vectorized: bool = True,
    ) -> None:
        self.config = config or GGPUConfig()
        self.timing = timing or TimingModel()
        self.vectorized = vectorized
        self.memory = GlobalMemory(memory_bytes)
        self.cache = DataCache(self.config.cache)
        self.memory_controller = GlobalMemoryController(self.config.axi, self.config.cache)
        self.rtm = RuntimeMemory(self.config.rtm_words)
        # Pre-decoded programs, keyed by the identity of the kernel's program
        # object (a strong reference to the program is kept alongside so a
        # recycled id can never alias a different program).  Re-launching the
        # same kernel -- the common case for command queues and sweeps --
        # skips the decode entirely.
        self._decode_cache: Dict[int, tuple] = {}
        self.decode_cache_hits = 0
        self.decode_cache_misses = 0
        self.compute_units = [
            ComputeUnit(
                cu_id=index,
                config=self.config,
                cache=self.cache,
                memory_controller=self.memory_controller,
                global_memory=self.memory,
                timing=self.timing,
            )
            for index in range(self.config.num_cus)
        ]
        # Cross-wavefront batched issue (see repro.simt.issue): one executor
        # shared by every CU so deferred windows stack across the whole
        # device; the toggle selects the per-CU fast path and is bit-exact in
        # results and cycle counts either way.
        self.batch_executor = BatchExecutor()
        for cu in self.compute_units:
            cu._executor = self.batch_executor
            cu.vectorized = vectorized

    # ------------------------------------------------------------------ #
    # Host API (OpenCL flavoured)
    # ------------------------------------------------------------------ #
    def allocate_buffer(self, num_words: int) -> int:
        """Allocate a global-memory buffer; returns its base byte address."""
        return self.memory.allocate(num_words)

    def write_buffer(self, base_addr: int, values: Sequence[int]) -> None:
        """Copy host data into a buffer."""
        self.memory.write_buffer(base_addr, values)

    def read_buffer(self, base_addr: int, num_words: int) -> np.ndarray:
        """Read a buffer back to the host."""
        return self.memory.read_buffer(base_addr, num_words)

    def create_buffer(self, values: Sequence[int]) -> int:
        """Allocate a buffer sized for ``values`` and initialize it."""
        values = list(values)
        base = self.allocate_buffer(len(values))
        self.write_buffer(base, values)
        return base

    def reset(self) -> None:
        """Return the simulator to its post-construction state.

        Global memory is zeroed and its allocator rewound, so later
        allocations see the exact addresses a fresh simulator would hand out;
        the pre-decoded program cache survives (decoding is launch-invariant).
        Cache and memory-controller state need no treatment here — every
        ``launch`` already resets both.  The multi-device runtime uses this to
        reuse one device pool across sweep cells with bit-identical outcomes.
        """
        self.memory.reset()

    # ------------------------------------------------------------------ #
    # Kernel launch
    # ------------------------------------------------------------------ #
    def launch(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Dict[str, ArgValue],
        verify: bool = False,
    ) -> LaunchResult:
        """Run ``kernel`` over ``ndrange`` with the given argument values.

        With ``verify=True`` the ISA-level static lint
        (:func:`repro.analysis.isalint.lint_kernel`) runs first and any
        error-severity finding rejects the launch with :class:`KernelError`.
        """
        if verify:
            from repro.analysis.isalint import verify_kernel_or_raise

            verify_kernel_or_raise(kernel)
        ordered_args = self._order_args(kernel, args)
        if len(kernel.program) > self.config.cram_words:
            raise KernelError(
                f"kernel {kernel.name!r} has {len(kernel.program)} instructions but the "
                f"CRAM holds only {self.config.cram_words}"
            )
        if kernel.local_words:
            _, slot_words = lram_slot_geometry(self.config, ndrange.workgroup_size)
            if kernel.local_words > slot_words:
                raise KernelError(
                    f"kernel {kernel.name!r} declares {kernel.local_words} local words but "
                    f"a workgroup of {ndrange.workgroup_size} work-items only gets a "
                    f"{slot_words}-word LRAM window"
                )
        self.rtm.write_descriptor(ndrange.global_size, ndrange.workgroup_size, ordered_args)
        self.cache.reset()
        self.memory_controller.reset()
        # A launch that died mid-flight may have left deferred windows for
        # wavefronts that no longer exist; they must not leak into this one.
        self.batch_executor.clear()
        decoded = self._decoded_program(kernel)
        for cu in self.compute_units:
            cu.bind(kernel.program, self.rtm, decoded=decoded, local_words=kernel.local_words)

        dispatcher = WorkgroupDispatcher(self.config, ndrange)
        for cu, wavefronts in zip(self.compute_units, dispatcher.initial_assignment(len(self.compute_units)), strict=True):
            if wavefronts:
                cu.admit(wavefronts)

        last_completion = self._run(dispatcher)

        # End-of-kernel flush: drain the dirty lines through the memory
        # controller so the write-back traffic is accounted.  The drain is
        # posted (it happens behind the completed kernel), so it occupies AXI
        # port time but does not extend the cycle count.
        flushed = self.cache.flush()
        if flushed:
            self.memory_controller.write_back_burst(last_completion, flushed)

        stats = KernelRunStats(
            kernel_name=kernel.name,
            num_cus=self.config.num_cus,
            global_size=ndrange.global_size,
            workgroup_size=ndrange.workgroup_size,
            wavefront_size=self.config.wavefront_size,
            cycles=last_completion,
            workgroups_dispatched=dispatcher.dispatched_workgroups,
            cu_stats=[cu.stats for cu in self.compute_units],
            cache=self.cache.stats,
            traffic=self.memory_controller.stats,
        )
        return LaunchResult(kernel.name, stats)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _decoded_program(self, kernel: Kernel) -> DecodedProgram:
        """Pre-decode ``kernel`` once per simulator; later launches reuse it."""
        key = id(kernel.program)
        entry = self._decode_cache.get(key)
        if entry is not None and entry[0] is kernel.program:
            self.decode_cache_hits += 1
            return entry[1]
        decoded = predecode_program(kernel.program, self.timing, self.config.wavefront_size)
        self._decode_cache[key] = (kernel.program, decoded)
        self.decode_cache_misses += 1
        return decoded

    def _order_args(self, kernel: Kernel, args: Dict[str, ArgValue]) -> List[int]:
        missing = [arg.name for arg in kernel.args if arg.name not in args]
        if missing:
            raise KernelError(f"kernel {kernel.name!r} is missing arguments: {missing}")
        unknown = [name for name in args if all(arg.name != name for arg in kernel.args)]
        if unknown:
            raise KernelError(f"kernel {kernel.name!r} got unexpected arguments: {unknown}")
        return [int(args[arg.name]) for arg in kernel.args]

    def _run(self, dispatcher: WorkgroupDispatcher) -> float:
        """Drive all CUs to completion on a global event heap.

        The heap holds ``(next_event_time, cu_index)`` entries for busy CUs;
        stale entries are detected by re-reading the CU's current event time
        and re-pushed.  CUs whose residents are all blocked (parked at a
        barrier) drop out of the heap; if the heap drains while such a CU is
        still busy the launch has deadlocked, matching the old per-step scan
        which raised once every remaining CU was blocked.
        """
        compute_units = self.compute_units
        infinity = float("inf")
        last_completion = 0.0
        guard = 0
        max_steps = 200_000_000  # defensive bound against runaway kernels
        if len(compute_units) == 1:
            return self._run_single_cu(dispatcher, max_steps)
        # The schedulers are fixed for the whole launch (bind happened), so
        # the per-event time probes go straight to the cached minimum.
        event_times = [cu.scheduler.earliest_ready for cu in compute_units]
        heap: List[tuple] = [
            (cu.next_event_time(), index)
            for index, cu in enumerate(compute_units)
            if cu.busy
        ]
        heapq.heapify(heap)
        while True:
            if not heap:
                if any(cu.busy for cu in compute_units):
                    raise SimulationError("deadlock: all resident wavefronts are blocked")
                if dispatcher.has_pending():
                    self._refill_idle_cus(dispatcher, last_completion, heap)
                    continue
                break
            event_time, index = heapq.heappop(heap)
            current = event_times[index]()
            if current == infinity:
                # Drained or blocked at a barrier (a drained CU's earliest
                # ready time is also infinite); deadlock check on empty heap.
                continue
            if current != event_time:
                heapq.heappush(heap, (current, index))
                continue
            cu = compute_units[index]
            retired = cu.step(current)
            guard += 1
            if guard > max_steps:
                raise SimulationError("simulation exceeded the maximum step count")
            for wavefront in retired:
                if wavefront.completion_time > last_completion:
                    last_completion = wavefront.completion_time
                if not cu.has_free_lram_window():
                    continue  # local-memory occupancy limit: no window free yet
                refill = dispatcher.refill(cu.resident_wavefronts, wavefront.completion_time)
                if refill is not None:
                    cu.admit(refill)
            current = event_times[index]()
            if current != infinity:
                heapq.heappush(heap, (current, index))
        self.batch_executor.flush()
        return last_completion

    def _run_single_cu(self, dispatcher: WorkgroupDispatcher, max_steps: int) -> float:
        """Event loop specialization for one CU: no heap, no stale entries.

        Cycle-for-cycle identical to the heap loop — with a single CU the
        heap always popped that CU's current event time — minus the per-event
        tuple pushes and pops.
        """
        cu = self.compute_units[0]
        next_event_time = cu.scheduler.earliest_ready
        infinity = float("inf")
        last_completion = 0.0
        guard = 0
        while True:
            current = next_event_time()
            if current == infinity:
                if cu.busy:
                    raise SimulationError("deadlock: all resident wavefronts are blocked")
                if dispatcher.has_pending():
                    self._refill_idle_cus(dispatcher, last_completion, [])
                    continue
                break
            retired = cu.step(current)
            guard += 1
            if guard > max_steps:
                raise SimulationError("simulation exceeded the maximum step count")
            for wavefront in retired:
                if wavefront.completion_time > last_completion:
                    last_completion = wavefront.completion_time
                if not cu.has_free_lram_window():
                    continue  # local-memory occupancy limit: no window free yet
                refill = dispatcher.refill(cu.resident_wavefronts, wavefront.completion_time)
                if refill is not None:
                    cu.admit(refill)
        self.batch_executor.flush()
        return last_completion

    def _refill_idle_cus(
        self,
        dispatcher: WorkgroupDispatcher,
        now: float,
        heap: List[tuple],
    ) -> None:
        """Refill every drained CU round-robin up to capacity.

        Reached only when all CUs drained while workgroups are still pending
        (tiny CU counts with large workgroups).  Workgroups are dealt one at
        a time across the CUs — using each CU's real residency — until every
        CU is full or the queue empties, and every refilled CU is re-entered
        into the event heap.
        """
        assignment = dispatcher.refill_idle(
            [cu.resident_wavefronts for cu in self.compute_units], now
        )
        if not any(assignment):
            raise SimulationError("dispatcher refused to refill an idle G-GPU")
        for index, wavefronts in enumerate(assignment):
            if wavefronts:
                cu = self.compute_units[index]
                cu.admit(wavefronts)
                heapq.heappush(heap, (cu.next_event_time(), index))
