"""Workgroup dispatcher.

The WG dispatcher of the FGPU assigns workgroups to compute units as they
free up capacity.  Workgroups share a program counter space and are split into
wavefronts on arrival at a CU; a CU can host up to
``max_wavefronts_per_cu`` wavefronts (512 work-items in the default
configuration).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.arch.config import GGPUConfig
from repro.arch.kernel import NDRange
from repro.errors import SimulationError
from repro.simt.wavefront import Wavefront


class WorkgroupDispatcher:
    """Hands out workgroups to CUs and materializes their wavefronts."""

    def __init__(self, config: GGPUConfig, ndrange: NDRange) -> None:
        if ndrange.workgroup_size > config.work_items_per_cu:
            raise SimulationError(
                f"workgroup of {ndrange.workgroup_size} work-items does not fit the "
                f"{config.work_items_per_cu} work-items a CU can host"
            )
        if ndrange.workgroup_size % config.wavefront_size != 0:
            raise SimulationError(
                f"workgroup size {ndrange.workgroup_size} must be a multiple of the "
                f"wavefront size {config.wavefront_size}"
            )
        self.config = config
        self.ndrange = ndrange
        self._pending: Deque[int] = deque(range(ndrange.num_workgroups))
        self._next_wavefront_id = 0
        self.dispatched_workgroups = 0

    @property
    def wavefronts_per_workgroup(self) -> int:
        """Number of wavefronts one workgroup expands into."""
        return self.ndrange.workgroup_size // self.config.wavefront_size

    @property
    def pending_workgroups(self) -> int:
        """Workgroups not yet assigned to a CU."""
        return len(self._pending)

    def has_pending(self) -> bool:
        """Whether any workgroup is still waiting for a CU."""
        return bool(self._pending)

    def cu_capacity_workgroups(self) -> int:
        """How many whole workgroups fit in one CU at the same time."""
        return max(1, self.config.max_wavefronts_per_cu // self.wavefronts_per_workgroup)

    def dispatch(self, ready_time: float = 0.0) -> List[Wavefront]:
        """Pop the next workgroup and return its wavefronts, ready at ``ready_time``."""
        if not self._pending:
            raise SimulationError("no pending workgroup to dispatch")
        workgroup_id = self._pending.popleft()
        self.dispatched_workgroups += 1
        wavefronts = []
        for index in range(self.wavefronts_per_workgroup):
            wavefront = Wavefront(
                wavefront_id=self._next_wavefront_id,
                workgroup_id=workgroup_id,
                index_in_workgroup=index,
                wavefront_size=self.config.wavefront_size,
                num_registers=self.config.num_registers,
                workgroup_size=self.ndrange.workgroup_size,
                global_size=self.ndrange.global_size,
                num_workgroups=self.ndrange.num_workgroups,
                global_shape=self.ndrange.global_shape,
                workgroup_shape=self.ndrange.workgroup_shape,
                groups_shape=self.ndrange.groups_shape,
            )
            wavefront.ready_time = ready_time
            self._next_wavefront_id += 1
            wavefronts.append(wavefront)
        return wavefronts

    def initial_assignment(self, num_cus: int) -> List[List[Wavefront]]:
        """Fill every CU up to capacity with initial workgroups (round robin)."""
        assignment: List[List[Wavefront]] = [[] for _ in range(num_cus)]
        capacity = self.cu_capacity_workgroups()
        for _ in range(capacity):
            for cu_index in range(num_cus):
                if not self.has_pending():
                    return assignment
                assignment[cu_index].extend(self.dispatch())
        return assignment

    def refill(self, cu_resident_wavefronts: int, now: float) -> Optional[List[Wavefront]]:
        """Give a CU another workgroup if it has room, else ``None``."""
        if not self.has_pending():
            return None
        if cu_resident_wavefronts + self.wavefronts_per_workgroup > self.config.max_wavefronts_per_cu:
            return None
        return self.dispatch(ready_time=now)

    def refill_idle(
        self, cu_residencies: List[int], now: float
    ) -> List[List[Wavefront]]:
        """Deal pending workgroups round-robin across a drained G-GPU.

        ``cu_residencies`` holds each CU's current unfinished-wavefront count.
        Workgroups are dealt one at a time across the CUs — so a handful of
        remaining workgroups spreads over all CUs instead of piling onto the
        first one — until every CU is at capacity or the queue empties.
        Returns the wavefronts for each CU (possibly empty lists).
        """
        assignment: List[List[Wavefront]] = [[] for _ in cu_residencies]
        residencies = list(cu_residencies)
        progress = True
        while self.has_pending() and progress:
            progress = False
            for cu_index in range(len(residencies)):
                if not self.has_pending():
                    break
                wavefronts = self.refill(residencies[cu_index], now)
                if wavefronts is not None:
                    assignment[cu_index].extend(wavefronts)
                    residencies[cu_index] += len(wavefronts)
                    progress = True
        return assignment
