"""Execution statistics collected during a kernel launch.

The raw result the paper's evaluation needs is the *cycle count* of each
kernel on each G-GPU configuration (Table III); the rest of the statistics
(instruction mix, SIMD efficiency, cache behaviour, AXI traffic) exist so the
examples and the design-space exploration can explain *why* a kernel scales or
does not.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.arch.isa import OpClass
from repro.simt.axi import MemoryTrafficStats
from repro.simt.cache import CacheStats


@dataclass
class InstructionMix:
    """Dynamic instruction counts per execution class."""

    counts: Dict[str, int] = field(default_factory=dict)

    def record(self, opclass: OpClass, amount: int = 1) -> None:
        """Add ``amount`` executed instructions of the given class."""
        key = opclass.value
        self.counts[key] = self.counts.get(key, 0) + amount

    @property
    def total(self) -> int:
        """Total dynamic wavefront-instructions."""
        return sum(self.counts.values())

    def fraction(self, opclass: OpClass) -> float:
        """Fraction of issued instructions belonging to the given class."""
        if self.total == 0:
            return 0.0
        return self.counts.get(opclass.value, 0) / self.total

    def merge(self, other: "InstructionMix") -> "InstructionMix":
        """Element-wise sum of two mixes."""
        merged = dict(self.counts)
        for key, value in other.counts.items():
            merged[key] = merged.get(key, 0) + value
        return InstructionMix(merged)


@dataclass
class ComputeUnitStats:
    """Per-CU statistics for one launch."""

    cu_id: int
    wavefront_size: int = 64
    wavefronts_executed: int = 0
    instructions_issued: int = 0
    active_lane_issues: int = 0
    busy_cycles: float = 0.0
    issue_events: int = 0
    mix: InstructionMix = field(default_factory=InstructionMix)

    @property
    def simd_efficiency(self) -> float:
        """Average fraction of lanes active per issued instruction."""
        if self.instructions_issued == 0:
            return 1.0
        return self.active_lane_issues / (self.instructions_issued * float(self.wavefront_size))

    @property
    def macro_batching(self) -> float:
        """Average instructions issued per scheduling event.

        1.0 means every instruction needed its own trip through the event
        loop; higher values measure how much work the macro-stepping fast
        path batched into single scheduling decisions.
        """
        if self.issue_events == 0:
            return 1.0
        return self.instructions_issued / self.issue_events


@dataclass
class KernelRunStats:
    """Everything measured during one kernel launch."""

    kernel_name: str
    num_cus: int
    global_size: int
    workgroup_size: int
    wavefront_size: int = 64
    cycles: float = 0.0
    workgroups_dispatched: int = 0
    cu_stats: List[ComputeUnitStats] = field(default_factory=list)
    cache: CacheStats = field(default_factory=CacheStats)
    traffic: MemoryTrafficStats = field(default_factory=MemoryTrafficStats)

    @property
    def kcycles(self) -> float:
        """Cycle count in thousands of cycles (the unit of Table III)."""
        return self.cycles / 1.0e3

    @property
    def instructions_issued(self) -> int:
        """Total wavefront-instructions issued across all CUs."""
        return sum(stats.instructions_issued for stats in self.cu_stats)

    @property
    def simd_efficiency(self) -> float:
        """Launch-wide SIMD lane utilization."""
        issued = self.instructions_issued
        if issued == 0:
            return 1.0
        active = sum(stats.active_lane_issues for stats in self.cu_stats)
        return active / (issued * float(self.wavefront_size))

    @property
    def mix(self) -> InstructionMix:
        """Aggregate dynamic instruction mix."""
        merged = InstructionMix()
        for stats in self.cu_stats:
            merged = merged.merge(stats.mix)
        return merged

    def runtime_us(self, freq_mhz: float) -> float:
        """Wall-clock kernel runtime in microseconds at the given frequency."""
        return self.cycles / freq_mhz

    def summary(self) -> str:
        """One-line human-readable summary used by the examples."""
        return (
            f"{self.kernel_name}: {self.cycles:.0f} cycles on {self.num_cus} CU(s), "
            f"{self.instructions_issued} instructions, "
            f"SIMD efficiency {self.simd_efficiency:.2f}, "
            f"cache hit rate {self.cache.hit_rate:.2f}"
        )
