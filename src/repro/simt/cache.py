"""Central direct-mapped write-back data cache (performance model).

The FGPU data cache is a single cache shared by all CUs: direct mapped,
multi-port, write back, with data movers that parallelize traffic on the AXI
data interfaces.  Because it is the only agent in front of global memory there
is no coherence problem, so the simulator keeps the *data* in
:class:`~repro.simt.memory.GlobalMemory` and models the cache as tags only:
each access reports whether it hit and whether a dirty victim line must be
written back, and the :class:`~repro.simt.axi.GlobalMemoryController` turns
misses and write-backs into AXI traffic and latency.

The tag and dirty state is held in numpy arrays so a whole coalesced
wavefront access (up to ``wavefront_size`` distinct lines for fully scattered
addresses) is probed in a handful of vector operations
(:meth:`DataCache.access_lines`); the scalar :meth:`DataCache.access_line`
remains for single-line probes and as the replay path when one access maps
two different lines onto the same direct-mapped set.

The cache serves at most ``CacheConfig.ports`` distinct lines per cycle: the
compute unit's timing model serializes wider accesses into one
``ports``-wide wave per cycle (see ``ComputeUnit._memory_timing``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.arch.config import CacheConfig
from repro.errors import SimulationError


@dataclass
class CacheStats:
    """Aggregate cache statistics for one kernel launch."""

    read_accesses: int = 0
    write_accesses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    write_backs: int = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without going to global memory."""
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        return CacheStats(
            read_accesses=self.read_accesses + other.read_accesses,
            write_accesses=self.write_accesses + other.write_accesses,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            write_backs=self.write_backs + other.write_backs,
        )


@dataclass(frozen=True)
class LineAccess:
    """Outcome of accessing one cache line."""

    line_address: int
    hit: bool
    write_back: bool


_NO_TAG = -1  # sentinel for an invalid line (line addresses are >= 0)


class DataCache:
    """Tag-only model of the central direct-mapped write-back cache."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self._tags = np.full(self.config.num_lines, _NO_TAG, dtype=np.int64)
        self._dirty = np.zeros(self.config.num_lines, dtype=bool)
        self.stats = CacheStats()
        self.hit_latency_cycles = self.config.hit_latency_cycles
        self._line_bytes = self.config.line_bytes
        self._num_lines = self.config.num_lines
        # Any set of distinct line addresses spanning less than the cache
        # size maps to pairwise-distinct direct-mapped sets, so the aliasing
        # probe of access_lines reduces to one span comparison.
        self._span_bytes = self._line_bytes * self._num_lines
        # Power-of-two line sizes (the overwhelmingly common configuration)
        # turn the per-access floor/divide/modulo address math into single
        # bitwise operations; ``num_lines`` is already enforced power of two.
        if self._line_bytes & (self._line_bytes - 1) == 0:
            self._line_floor_mask = ~(self._line_bytes - 1)
            self._line_shift = self._line_bytes.bit_length() - 1
            self._index_mask = self._num_lines - 1
        else:
            self._line_floor_mask = 0
            self._line_shift = -1
            self._index_mask = 0

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def line_address(self, byte_address: int) -> int:
        """Address of the cache line containing ``byte_address``."""
        return byte_address - (byte_address % self.config.line_bytes)

    def coalesce_lines(self, byte_addresses: Sequence[int]) -> np.ndarray:
        """Distinct line addresses touched by a wavefront access, ascending.

        Wavefront address patterns are overwhelmingly monotonic (affine in
        the lane id), so the line addresses arrive already sorted and the
        ``np.unique`` sort is wasted work: a non-decreasing run is deduped
        with one difference pass.  Scattered patterns fall back to the sort.
        """
        addresses = np.asarray(byte_addresses, dtype=np.int64)
        if self._line_shift >= 0:
            lines = addresses & self._line_floor_mask
        else:
            lines = addresses - (addresses % self._line_bytes)
        if addresses.size <= 1:
            return lines
        steps = lines[1:] - lines[:-1]
        smallest_step = int(steps.min())
        if smallest_step > 0:
            return lines  # strictly increasing: already distinct and sorted
        if smallest_step == 0:
            keep = np.empty(lines.size, dtype=bool)
            keep[0] = True
            np.not_equal(steps, 0, out=keep[1:])
            return lines[keep]
        return np.unique(lines)

    def coalesce(self, byte_addresses: Sequence[int]) -> List[int]:
        """Distinct cache lines touched by a wavefront access (coalescing)."""
        return [int(line) for line in self.coalesce_lines(byte_addresses)]

    def _index(self, line_address: int) -> int:
        if self._line_shift >= 0:
            return (line_address >> self._line_shift) & self._index_mask
        return (line_address // self.config.line_bytes) % self.config.num_lines

    # ------------------------------------------------------------------ #
    # Accesses
    # ------------------------------------------------------------------ #
    def access_line(self, line_address: int, is_write: bool) -> LineAccess:
        """Access one line, updating tags, dirty bits, and statistics."""
        if line_address < 0 or line_address % self.config.line_bytes:
            raise SimulationError(f"bad cache line address {line_address:#x}")
        index = self._index(line_address)
        hit = self._tags[index] == line_address
        write_back = False
        if is_write:
            self.stats.write_accesses += 1
        else:
            self.stats.read_accesses += 1
        if not hit:
            if is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
            if self._tags[index] != _NO_TAG and self._dirty[index]:
                write_back = True
                self.stats.write_backs += 1
            self._tags[index] = line_address
            self._dirty[index] = False
        if is_write:
            self._dirty[index] = True
        return LineAccess(line_address, bool(hit), write_back)

    def access_lines(
        self, line_addresses: np.ndarray, is_write: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Access a batch of *distinct* lines (one coalesced wavefront access).

        Returns ``(hits, write_backs)`` boolean arrays aligned with
        ``line_addresses``.  Equivalent to calling :meth:`access_line` on each
        line in order; the vector path requires the lines to map to distinct
        direct-mapped sets (always true for contiguous accesses, and for any
        access narrower than the cache) and falls back to the sequential
        replay when two lines of one access collide on a set.
        """
        lines = np.asarray(line_addresses, dtype=np.int64)
        count = lines.size
        if count == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=bool)
        if self._line_shift >= 0:
            indices = (lines >> self._line_shift) & self._index_mask
        else:
            indices = (lines // self._line_bytes) % self._num_lines
        # Distinct lines alias the same direct-mapped set only when the
        # access spans at least the whole cache, so the common case needs a
        # span comparison, not a sorted-uniqueness probe.
        if (
            count > 1
            and int(lines.max() - lines.min()) >= self._span_bytes
            and np.unique(indices).size != count
        ):
            # Two lines of the same access alias the same set: replay them
            # sequentially so eviction order stays exact.
            hits = np.zeros(count, dtype=bool)
            write_backs = np.zeros(count, dtype=bool)
            for position, line in enumerate(lines):
                outcome = self.access_line(int(line), is_write)
                hits[position] = outcome.hit
                write_backs[position] = outcome.write_back
            return hits, write_backs
        tags = self._tags[indices]
        hits = tags == lines
        misses = ~hits
        write_backs = misses & (tags != _NO_TAG) & self._dirty[indices]
        num_misses = int(misses.sum())
        if is_write:
            self.stats.write_accesses += count
            self.stats.write_misses += num_misses
        else:
            self.stats.read_accesses += count
            self.stats.read_misses += num_misses
        self.stats.write_backs += int(write_backs.sum())
        if num_misses:
            miss_indices = indices[misses]
            self._tags[miss_indices] = lines[misses]
            self._dirty[miss_indices] = False
        if is_write:
            self._dirty[indices] = True
        return hits, write_backs

    def access_sorted_lines(
        self, lines: np.ndarray, is_write: bool
    ) -> Tuple[Optional[List[bool]], Optional[List[bool]], int]:
        """Probe one coalesced access whose lines are ascending and distinct.

        The compute unit's memory path counterpart of :meth:`access_lines`
        (same tag/dirty/statistics updates, same sequential replay when two
        lines alias one direct-mapped set), shaped for the consumer: it
        returns ``(hit_list, write_back_list, num_misses)`` with the outcomes
        as plain Python lists -- which the port-contention walk needs anyway
        -- and skips building them entirely for the all-hit case, returning
        ``(None, None, 0)``.  ``lines`` must come from
        :meth:`coalesce_lines` (ascending, distinct).
        """
        count = lines.size
        if count == 0:
            return None, None, 0
        if self._line_shift >= 0:
            indices = (lines >> self._line_shift) & self._index_mask
        else:
            indices = (lines // self._line_bytes) % self._num_lines
        if count > 1 and int(lines[-1]) - int(lines[0]) >= self._span_bytes:
            if np.unique(indices).size != count:
                # Aliasing inside one access: replay sequentially so the
                # eviction order stays exact.
                hit_list: List[bool] = []
                wb_list: List[bool] = []
                num_misses = 0
                for line in lines.tolist():
                    outcome = self.access_line(line, is_write)
                    hit_list.append(outcome.hit)
                    wb_list.append(outcome.write_back)
                    if not outcome.hit:
                        num_misses += 1
                return hit_list, wb_list, num_misses
        tags = self._tags[indices]
        hits = tags == lines
        num_misses = count - int(hits.sum())
        stats = self.stats
        if is_write:
            stats.write_accesses += count
            stats.write_misses += num_misses
        else:
            stats.read_accesses += count
            stats.read_misses += num_misses
        if num_misses == 0:
            if is_write:
                self._dirty[indices] = True
            return None, None, 0
        misses = ~hits
        write_backs = misses & (tags != _NO_TAG) & self._dirty[indices]
        stats.write_backs += int(write_backs.sum())
        miss_indices = indices[misses]
        self._tags[miss_indices] = lines[misses]
        self._dirty[miss_indices] = False
        if is_write:
            self._dirty[indices] = True
        return hits.tolist(), write_backs.tolist(), num_misses

    def access_wavefront(
        self, byte_addresses: Sequence[int], is_write: bool
    ) -> List[LineAccess]:
        """Access all lines touched by one wavefront memory instruction."""
        lines = self.coalesce_lines(byte_addresses)
        hits, write_backs = self.access_lines(lines, is_write)
        return [
            LineAccess(int(line), bool(hit), bool(write_back))
            for line, hit, write_back in zip(lines, hits, write_backs, strict=True)
        ]

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Write back all dirty lines (end of kernel); returns the number flushed.

        Only the tag state and the cache-level counter are updated here; the
        caller is responsible for pushing the flushed lines through the
        global memory controller so the drain occupies AXI port time (see
        ``GGPUSimulator.launch``).
        """
        dirty = (self._tags != _NO_TAG) & self._dirty
        flushed = int(dirty.sum())
        self._dirty[:] = False
        self.stats.write_backs += flushed
        return flushed

    def reset(self) -> None:
        """Invalidate the whole cache and clear statistics."""
        self._tags[:] = _NO_TAG
        self._dirty[:] = False
        self.stats = CacheStats()

    def resident_lines(self) -> Set[int]:
        """Set of line addresses currently cached (used by tests)."""
        return {int(tag) for tag in self._tags if tag != _NO_TAG}
