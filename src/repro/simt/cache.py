"""Central direct-mapped write-back data cache (performance model).

The FGPU data cache is a single cache shared by all CUs: direct mapped,
multi-port, write back, with data movers that parallelize traffic on the AXI
data interfaces.  Because it is the only agent in front of global memory there
is no coherence problem, so the simulator keeps the *data* in
:class:`~repro.simt.memory.GlobalMemory` and models the cache as tags only:
each access reports whether it hit and whether a dirty victim line must be
written back, and the :class:`~repro.simt.axi.GlobalMemoryController` turns
misses and write-backs into AXI traffic and latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.arch.config import CacheConfig
from repro.errors import SimulationError


@dataclass
class CacheStats:
    """Aggregate cache statistics for one kernel launch."""

    read_accesses: int = 0
    write_accesses: int = 0
    read_misses: int = 0
    write_misses: int = 0
    write_backs: int = 0

    @property
    def accesses(self) -> int:
        return self.read_accesses + self.write_accesses

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses served without going to global memory."""
        if self.accesses == 0:
            return 1.0
        return 1.0 - self.misses / self.accesses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the element-wise sum of two stats objects."""
        return CacheStats(
            read_accesses=self.read_accesses + other.read_accesses,
            write_accesses=self.write_accesses + other.write_accesses,
            read_misses=self.read_misses + other.read_misses,
            write_misses=self.write_misses + other.write_misses,
            write_backs=self.write_backs + other.write_backs,
        )


@dataclass(frozen=True)
class LineAccess:
    """Outcome of accessing one cache line."""

    line_address: int
    hit: bool
    write_back: bool


class DataCache:
    """Tag-only model of the central direct-mapped write-back cache."""

    def __init__(self, config: Optional[CacheConfig] = None) -> None:
        self.config = config or CacheConfig()
        self._tags: List[Optional[int]] = [None] * self.config.num_lines
        self._dirty: List[bool] = [False] * self.config.num_lines
        self.stats = CacheStats()
        self.hit_latency_cycles = 4

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #
    def line_address(self, byte_address: int) -> int:
        """Address of the cache line containing ``byte_address``."""
        return byte_address - (byte_address % self.config.line_bytes)

    def coalesce(self, byte_addresses: Sequence[int]) -> List[int]:
        """Distinct cache lines touched by a wavefront access (coalescing)."""
        addresses = np.asarray(byte_addresses, dtype=np.int64)
        if addresses.size == 0:
            return []
        lines = np.unique(addresses - (addresses % self.config.line_bytes))
        return [int(line) for line in lines]

    def _index(self, line_address: int) -> int:
        return (line_address // self.config.line_bytes) % self.config.num_lines

    # ------------------------------------------------------------------ #
    # Accesses
    # ------------------------------------------------------------------ #
    def access_line(self, line_address: int, is_write: bool) -> LineAccess:
        """Access one line, updating tags, dirty bits, and statistics."""
        if line_address < 0 or line_address % self.config.line_bytes:
            raise SimulationError(f"bad cache line address {line_address:#x}")
        index = self._index(line_address)
        hit = self._tags[index] == line_address
        write_back = False
        if is_write:
            self.stats.write_accesses += 1
        else:
            self.stats.read_accesses += 1
        if not hit:
            if is_write:
                self.stats.write_misses += 1
            else:
                self.stats.read_misses += 1
            if self._tags[index] is not None and self._dirty[index]:
                write_back = True
                self.stats.write_backs += 1
            self._tags[index] = line_address
            self._dirty[index] = False
        if is_write:
            self._dirty[index] = True
        return LineAccess(line_address, hit, write_back)

    def access_wavefront(
        self, byte_addresses: Sequence[int], is_write: bool
    ) -> List[LineAccess]:
        """Access all lines touched by one wavefront memory instruction."""
        return [self.access_line(line, is_write) for line in self.coalesce(byte_addresses)]

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def flush(self) -> int:
        """Write back all dirty lines (end of kernel); returns the number flushed."""
        flushed = 0
        for index in range(self.config.num_lines):
            if self._tags[index] is not None and self._dirty[index]:
                flushed += 1
                self._dirty[index] = False
        self.stats.write_backs += flushed
        return flushed

    def reset(self) -> None:
        """Invalidate the whole cache and clear statistics."""
        self._tags = [None] * self.config.num_lines
        self._dirty = [False] * self.config.num_lines
        self.stats = CacheStats()

    def resident_lines(self) -> Set[int]:
        """Set of line addresses currently cached (used by tests)."""
        return {tag for tag in self._tags if tag is not None}
