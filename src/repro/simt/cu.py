"""Compute Unit: a SIMD machine of 8 Processing Elements.

The CU is both the functional and the timing heart of the simulator.  Each
call to :meth:`ComputeUnit.step` is one *scheduling event*: the CU selects
one ready resident wavefront and issues at least one instruction for it:

* the instruction executes functionally for the active lanes (vectorized in
  :mod:`repro.simt.pe`),
* vector instructions occupy the shared PE array for
  ``wavefront_size / pes_per_cu`` cycles (8 cycles for the default 64-lane
  wavefront on 8 PEs),
* loads and stores go through the shared data cache; misses and dirty
  write-backs are turned into AXI transactions by the global memory
  controller, whose port contention is what limits multi-CU scaling,
* the issuing wavefront becomes ready again after the instruction's latency,
  so other resident wavefronts can hide that latency.

Macro-stepping fast path
------------------------
Programs are bound as pre-decoded instruction streams
(:mod:`repro.simt.decode`), and after issuing the selected instruction the CU
keeps issuing for the *same* wavefront as long as (a) the next instruction is
macro-safe — ALU/MUL/DIV, SPECIAL, PARAM, LOCAL, or MASK, i.e. straight-line
work that touches no shared machine state — and (b) the wavefront's next
ready time stays strictly ahead of every other unfinished resident.  Under
those two conditions no other wavefront (in this CU or any other: macro-safe
instructions never touch the shared cache or the AXI ports) could have issued
in between, so batching the whole run into one scheduling event is
cycle-for-cycle identical to issuing one instruction per event, while
skipping the per-instruction trips through the scheduler and the simulator's
event heap.  Setting :attr:`ComputeUnit.macro_step` to ``False`` disables the
batching; the regression tests assert both modes produce identical cycle
counts and results.

Posted stores
-------------
Global-memory stores are *posted*: the issuing wavefront only waits out the
fixed ``TimingModel.store_latency`` pipeline latency and never stalls on the
store's cache outcome, while the store's line traffic (write-allocate fills
and dirty evictions) still claims AXI port time and therefore delays later
fills.  This matches the FGPU's write-back data movers, which complete stores
in the background.  The alternative — stalling the wavefront on store-miss
port contention — was rejected because no later instruction depends on a
store result, so the stall would model latency the hardware does not expose.
The original engine computed that unused store completion time and discarded
it; the computation is now skipped entirely.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.assembler import Program
from repro.errors import SimulationError
from repro.simt.axi import GlobalMemoryController
from repro.simt.cache import DataCache
from repro.simt.decode import (
    DecodedProgram,
    P_FN,
    P_IMM,
    P_MACRO_SAFE,
    P_RD,
    P_RS,
    P_RT,
    K_ALU_BIN,
    K_ALU_CONST,
    K_ALU_IMM,
    K_BCOND,
    K_BEMPTY,
    K_CMASK,
    K_INVM,
    K_JMP,
    K_LOAD,
    K_LOCAL_LOAD,
    K_LOCAL_STORE,
    K_PARAM,
    K_POPM,
    K_PUSHM,
    K_RET,
    K_SPECIAL,
    K_STORE,
    K_SYNC,
    B_EQ,
    B_NE,
    B_LT,
    predecode_program,
)
from repro.arch.isa import Opcode
from repro.simt.memory import GlobalMemory, LocalMemory, RuntimeMemory
from repro.simt.scheduler import WavefrontScheduler
from repro.simt.timing import TimingModel
from repro.simt.trace import ComputeUnitStats
from repro.simt.wavefront import Wavefront

_INFINITY = float("inf")


def lram_slot_geometry(config: GGPUConfig, workgroup_size: int):
    """LRAM partitioning for one launch geometry: ``(num_slots, slot_words)``.

    A CU can host ``max_wavefronts_per_cu // wavefronts_per_workgroup``
    workgroups at once, and each concurrently resident workgroup owns an
    equal, private window of the CU's LRAM.  This is what makes ``__local``
    data per-workgroup (OpenCL semantics) instead of CU-global: two
    co-resident workgroups that both address ``lram[lid]`` can no longer
    clobber each other's scratch values.
    """
    wavefronts_per_wg = max(1, workgroup_size // config.wavefront_size)
    num_slots = max(1, config.max_wavefronts_per_cu // wavefronts_per_wg)
    return num_slots, config.lram_words_per_cu // num_slots


class ComputeUnit:
    """One Compute Unit of the G-GPU."""

    def __init__(
        self,
        cu_id: int,
        config: GGPUConfig,
        cache: DataCache,
        memory_controller: GlobalMemoryController,
        global_memory: GlobalMemory,
        timing: Optional[TimingModel] = None,
    ) -> None:
        self.cu_id = cu_id
        self.config = config
        self.cache = cache
        self.memory_controller = memory_controller
        self.global_memory = global_memory
        self.timing = timing or TimingModel()
        self.local_memory = LocalMemory(config.lram_words_per_cu)
        self.scheduler = WavefrontScheduler()
        self.array_free_time = 0.0
        self.stats = ComputeUnitStats(cu_id, wavefront_size=config.wavefront_size)
        self.macro_step = True
        # Cross-wavefront batched issue (see _step_batch): the simulator
        # wires every CU to its shared BatchExecutor and sets the toggle; a
        # bare CU stays on the scalar path.
        self.vectorized = False
        self._executor = None
        # Pooled per-resident record lists for _step_batch (see there).
        self._batch_records: List[list] = []
        self._program: Optional[DecodedProgram] = None
        self._rtm: Optional[RuntimeMemory] = None
        self._barrier_waiters: Dict[int, List[Wavefront]] = {}
        self._occupancy = config.lanes_rounds_per_wavefront
        self._cache_ports = config.cache.ports
        self._lram_words = config.lram_words_per_cu
        self._use_lram_windows = False
        self._wg_lram_base: Dict[int, int] = {}
        self._wg_live_wavefronts: Dict[int, int] = {}
        self._free_lram_slots: Optional[List[int]] = None
        self._slot_words = self._lram_words

    # ------------------------------------------------------------------ #
    # Launch management
    # ------------------------------------------------------------------ #
    def bind(
        self,
        program: Program,
        rtm: RuntimeMemory,
        decoded: Optional[DecodedProgram] = None,
        local_words: int = 0,
    ) -> None:
        """Attach the kernel program and runtime memory for a new launch.

        ``decoded`` lets the simulator share one pre-decoded program across
        all CUs; when omitted the CU decodes the program itself.
        ``local_words`` is the kernel's declared per-workgroup ``__local``
        footprint: when non-zero, every resident workgroup gets a private
        LRAM window (and the window supply limits workgroup occupancy, the
        way local-memory usage limits occupancy on real GPUs).  Kernels that
        declare no local memory keep the historical CU-global LRAM
        addressing.
        """
        if decoded is None:
            decoded = predecode_program(program, self.timing, self.config.wavefront_size)
        if decoded.max_register >= self.config.num_registers:
            raise SimulationError(
                f"kernel {decoded.name!r} uses register r{decoded.max_register} but the "
                f"register file holds only {self.config.num_registers} registers"
            )
        self._program = decoded
        self._rtm = rtm
        self.array_free_time = 0.0
        self.scheduler = WavefrontScheduler()
        self.stats = ComputeUnitStats(self.cu_id, wavefront_size=self.config.wavefront_size)
        self._barrier_waiters = {}
        self.local_memory = LocalMemory(self.config.lram_words_per_cu)
        # Per-workgroup LRAM windows (see lram_slot_geometry): slot geometry
        # is fixed by the first admitted workgroup's size, bases are assigned
        # per resident workgroup and recycled when its wavefronts retire.
        self._use_lram_windows = local_words > 0
        self._wg_lram_base: Dict[int, int] = {}
        self._wg_live_wavefronts: Dict[int, int] = {}
        self._free_lram_slots: Optional[List[int]] = None
        self._slot_words = self._lram_words

    def admit(self, wavefronts: List[Wavefront]) -> None:
        """Accept newly dispatched wavefronts (assigning LRAM windows)."""
        if self._program is None:
            raise SimulationError("compute unit has no program bound")
        if len(self.scheduler) + len(wavefronts) > self.config.max_wavefronts_per_cu:
            raise SimulationError(
                f"CU {self.cu_id} cannot host {len(wavefronts)} more wavefronts"
            )
        if self._use_lram_windows:
            for wavefront in wavefronts:
                workgroup = wavefront.workgroup_id
                if workgroup not in self._wg_lram_base:
                    if self._free_lram_slots is None:
                        num_slots, self._slot_words = lram_slot_geometry(
                            self.config, wavefront.workgroup_size
                        )
                        # pop() hands out slot 0 first, matching dispatch order.
                        self._free_lram_slots = list(range(num_slots - 1, -1, -1))
                    if not self._free_lram_slots:
                        raise SimulationError(
                            f"CU {self.cu_id} has no free LRAM window for workgroup {workgroup}"
                        )
                    self._wg_lram_base[workgroup] = (
                        self._free_lram_slots.pop() * self._slot_words
                    )
                    self._wg_live_wavefronts[workgroup] = 0
                self._wg_live_wavefronts[workgroup] += 1
        self.scheduler.add_all(wavefronts)

    def has_free_lram_window(self) -> bool:
        """Whether another workgroup could get an LRAM window right now.

        Always true for kernels without ``__local`` data; for local-memory
        kernels the window supply is the occupancy limit the dispatcher must
        respect before offering this CU another workgroup.
        """
        if not self._use_lram_windows or self._free_lram_slots is None:
            return True
        return bool(self._free_lram_slots)

    def _release_workgroup(self, workgroup: int) -> None:
        """Recycle a retired workgroup's LRAM window."""
        if not self._use_lram_windows:
            return
        remaining = self._wg_live_wavefronts[workgroup] - 1
        if remaining:
            self._wg_live_wavefronts[workgroup] = remaining
            return
        base = self._wg_lram_base.pop(workgroup)
        del self._wg_live_wavefronts[workgroup]
        self._free_lram_slots.append(base // self._slot_words)

    @property
    def resident_wavefronts(self) -> int:
        """Number of wavefronts currently resident (finished ones excluded)."""
        return self.scheduler.active_count()

    @property
    def busy(self) -> bool:
        """Whether any resident wavefront still has work."""
        return self.scheduler.active_count() > 0

    def next_event_time(self) -> float:
        """Time at which this CU can issue its next instruction."""
        return self.scheduler.earliest_ready()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self, now: Optional[float] = None) -> List[Wavefront]:
        """Run one scheduling event; return the wavefronts retired by it.

        One event issues one instruction of one ready wavefront, plus — when
        the macro-stepping conditions hold — the uncontended straight-line
        macro-safe run that follows it.
        """
        program = self._program
        if program is None or self._rtm is None:
            raise SimulationError("compute unit has no program bound")
        if now is None:
            now = self.scheduler.earliest_ready()
        if now == _INFINITY:
            raise SimulationError(f"CU {self.cu_id} stepped with no ready wavefront")
        wavefront = self.scheduler.select(now)
        if wavefront is None:
            raise SimulationError(f"CU {self.cu_id} found no schedulable wavefront at {now}")

        if self.vectorized and self.macro_step and self._executor is not None:
            pc0 = wavefront.pc
            batch_end = program.batch_end
            if (
                pc0 < len(batch_end)
                and batch_end[pc0] > pc0 + 1
                and self.scheduler.active_count() > 1
            ):
                return self._step_batch(program, wavefront, now)
        executor = self._executor
        if executor is not None and executor._pending:
            # The scalar path below reads (and writes) only the selected
            # wavefront's register and mask state, so just its deferred
            # window (plus the same-start group it belongs to) must
            # materialize; other wavefronts' windows keep accumulating.
            executor.flush_wavefront(wavefront)

        ops = program.ops
        packed = program.packed
        num_ops = len(packed)
        others_ready = (
            self.scheduler.earliest_ready_excluding(wavefront)
            if self.macro_step
            else -_INFINITY
        )
        occupancy_rounds = self._occupancy
        stats = self.stats
        mix_counts = stats.mix.counts
        issued = 0
        active_issues = 0
        busy_cycles = 0.0
        retired: List[Wavefront] = []
        ended_at_sync = False
        num_active = wavefront.num_active
        # Register indices were bounds-checked against the register file once
        # at bind time, so the issue loop indexes the lane storage directly;
        # writes to r0 are dropped (hardwired zero) and partially active
        # wavefronts merge through the execution mask.
        reg_rows = wavefront.registers._values
        lanes = wavefront.wavefront_size

        while True:
            pc = wavefront.pc
            if pc >= num_ops:
                raise SimulationError(
                    f"wavefront {wavefront.wavefront_id} ran past the end of {program.name}"
                )
            op = packed[pc]
            kind, rd, rs, rt, imm, latency, uses_pe, _macro, fn, const, key = op

            # --- timing: issue slot and PE-array occupancy ---------------- #
            issue_start = wavefront.ready_time
            if now > issue_start:
                issue_start = now
            if uses_pe:
                if self.array_free_time > issue_start:
                    issue_start = self.array_free_time
                occupancy = occupancy_rounds
                self.array_free_time = issue_start + occupancy
            else:
                occupancy = 1
            completion = issue_start + occupancy + latency

            # --- statistics (per-wavefront counters are added once in the
            # epilogue; the issuing wavefront is fixed for the whole event) - #
            issued += 1
            active_issues += num_active
            busy_cycles += occupancy
            mix_counts[key] = mix_counts.get(key, 0) + 1

            # --- functional execution ------------------------------------- #
            next_pc = pc + 1
            if kind == K_ALU_BIN:
                if rd:
                    result = fn(reg_rows[rs], reg_rows[rt])
                    if num_active == lanes:
                        reg_rows[rd] = result
                    else:
                        reg_rows[rd] = np.where(
                            wavefront.active_mask, result, reg_rows[rd]
                        )
                else:
                    fn(reg_rows[rs], reg_rows[rt])
            elif kind == K_ALU_IMM:
                if rd:
                    result = fn(reg_rows[rs], const)
                    if num_active == lanes:
                        reg_rows[rd] = result
                    else:
                        reg_rows[rd] = np.where(
                            wavefront.active_mask, result, reg_rows[rd]
                        )
                else:
                    fn(reg_rows[rs], const)
            elif kind == K_ALU_CONST:
                if rd:
                    if num_active == lanes:
                        reg_rows[rd] = const
                    else:
                        reg_rows[rd] = np.where(
                            wavefront.active_mask, const, reg_rows[rd]
                        )
            elif kind == K_SPECIAL:
                self._execute_special(wavefront, ops[pc])
            elif kind == K_PARAM:
                value = self._rtm.read_arg(imm)
                self._write_register(
                    wavefront,
                    rd,
                    np.full(wavefront.wavefront_size, value, dtype=np.int64),
                )
            elif kind == K_LOAD:
                completion = self._execute_load(wavefront, op, issue_start + occupancy)
            elif kind == K_STORE:
                completion = self._execute_store(wavefront, op, issue_start + occupancy)
            elif kind == K_LOCAL_LOAD or kind == K_LOCAL_STORE:
                self._execute_local(wavefront, op, kind)
            elif kind == K_PUSHM:
                wavefront.push_mask()
            elif kind == K_CMASK:
                wavefront.constrain_mask(reg_rows[rs])
                num_active = wavefront.num_active
            elif kind == K_INVM:
                wavefront.invert_mask()
                num_active = wavefront.num_active
            elif kind == K_POPM:
                wavefront.pop_mask()
                num_active = wavefront.num_active
            elif kind == K_JMP:
                next_pc = imm
            elif kind == K_BEMPTY:
                next_pc = imm if not wavefront.any_active else next_pc
            elif kind == K_BCOND:
                next_pc = self._execute_branch(wavefront, op, next_pc)
            elif kind == K_SYNC:
                completion, parked = self._execute_barrier(wavefront, issue_start + occupancy)
                wavefront.pc = next_pc
                if not parked:
                    wavefront.ready_time = completion
                # A released barrier rewrites the other waiters' ready times,
                # a parked one leaves this wavefront unschedulable: either
                # way the scheduling state changed, so the event ends here.
                ended_at_sync = True
                break
            elif kind == K_RET:
                wavefront.retire(completion)
                retired.append(wavefront)
                wavefront.pc = next_pc
                wavefront.ready_time = completion
                break
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unhandled instruction kind {kind}")

            wavefront.pc = next_pc
            wavefront.ready_time = completion

            # --- macro-stepping continuation ------------------------------ #
            if completion >= others_ready:
                break
            if next_pc >= num_ops or not packed[next_pc][P_MACRO_SAFE]:
                break
            now = completion

        stats.instructions_issued += issued
        stats.active_lane_issues += active_issues
        stats.busy_cycles += busy_cycles
        stats.issue_events += 1
        wavefront.instructions_issued += issued
        wavefront.active_lane_issues += active_issues
        if retired:
            for finished in retired:
                self.scheduler.remove(finished)
                self._release_workgroup(finished.workgroup_id)
                stats.wavefronts_executed += 1
        elif ended_at_sync or not self.macro_step:
            # A barrier may have rewritten several residents' ready times
            # (and without macro-stepping ``others_ready`` was never
            # computed), so the cached minimum must be rebuilt by a scan.
            self.scheduler.notify_ready_changed()
        else:
            # Only the issuing wavefront's ready time changed during the
            # event; the earliest-ready time is known exactly without
            # re-scanning the residents.
            ready = wavefront.ready_time
            self.scheduler.set_earliest(ready if ready < others_ready else others_ready)
        return retired

    def _step_batch(self, program: DecodedProgram, wavefront: Wavefront, now: float) -> List[Wavefront]:
        """Batched scheduling events over batch-safe instruction runs.

        This is the scalar event loop of :meth:`step`, replayed in pure
        Python over *timing state only*, for as many consecutive scheduling
        events as stay inside batch-safe instruction runs (``DecodedProgram.
        batch_end``).  Batch-safe instructions have data-independent timing
        and touch only wavefront-private state, so the replay reproduces the
        scalar engine's issue times, PE-array occupancy, round-robin
        rotations, and macro-stepping decisions bit-for-bit without executing
        anything — the functional effects are deferred to the shared
        :class:`~repro.simt.issue.BatchExecutor`, which later executes each
        pc window stacked across every participating wavefront (of every CU)
        in a handful of numpy operations.

        The batch ends when the earliest-ready wavefront's next instruction
        is not batch-safe (loads/stores, LRAM, branches, barriers, RET): that
        wavefront is deliberately *not* selected or rotated here, so the next
        real :meth:`step` selects it exactly like the scalar engine would
        have, flushing the executor before touching shared state.  Splitting
        one scalar macro-run at such a boundary is cycle-neutral: the
        follow-up event issues at the same ``now`` with the same ready time,
        PE-array state, and deque order (a full rotation is the identity), so
        only ``issue_events`` can differ from the scalar path — the same
        accounting freedom macro-stepping itself already has.
        """
        scheduler = self.scheduler
        batch_end = program.batch_end
        latencies = program.op_latency
        uses_pe_flags = program.op_uses_pe
        num_ops = len(latencies)
        occupancy_rounds = self._occupancy
        array_free = self.array_free_time
        infinity = _INFINITY
        # [ready_time, pc, window_end, start_pc, wavefront] per resident, in
        # deque order; select() already rotated the issuing wavefront to the
        # back, exactly as the scalar path sees it.  The round-robin order is
        # tracked with a circular ``head`` index instead of rotating the
        # list, so one scheduling event costs two scans (a fused min /
        # second-min pass and the deque-order selection scan).  The record
        # lists themselves are pooled on the CU and refilled in place, so a
        # batch invocation allocates nothing per resident.
        records = self._batch_records
        count = 0
        for resident in scheduler._order:
            pc = resident.pc
            end = batch_end[pc] if pc < num_ops else pc
            if count < len(records):
                entry = records[count]
                entry[0] = resident.ready_time
                entry[1] = pc
                entry[2] = end
                entry[3] = pc
                entry[4] = resident
            else:
                records.append([resident.ready_time, pc, end, pc, resident])
            count += 1
        head = 0
        selected = count - 1
        record = records[selected]
        events = 0
        best = infinity
        while True:
            ready = record[0]
            pc = record[1]
            end = record[2]
            events += 1
            # Fused pass: the minimum ready time over the *other* residents
            # (the macro-stepping bound) falls out of a best/second-best
            # scan keyed on the selected slot.
            low = infinity
            low_slot = -1
            second = infinity
            for slot in range(count):
                value = records[slot][0]
                if value < low:
                    second = low
                    low = value
                    low_slot = slot
                elif value < second:
                    second = value
            others = second if low_slot == selected else low
            while True:
                issue = ready if ready > now else now
                if uses_pe_flags[pc]:
                    if array_free > issue:
                        issue = array_free
                    array_free = issue + occupancy_rounds
                    completion = issue + occupancy_rounds + latencies[pc]
                else:
                    completion = issue + 1 + latencies[pc]
                pc += 1
                ready = completion
                if completion >= others:
                    break
                if pc >= end:
                    break
                now = completion
            record[0] = ready
            record[1] = pc
            best = others if others < ready else ready
            # Deque-order selection: first resident (from head) whose ready
            # time has arrived, exactly like WavefrontScheduler.select.
            index = head
            for _ in range(count):
                if records[index][0] <= best:
                    break
                index += 1
                if index == count:
                    index = 0
            nxt = records[index]
            now = best
            if nxt[1] >= nxt[2]:
                # The next selection's instruction is not batch-safe: stop
                # without rotating, so the real step selects it identically.
                break
            head = index + 1 if index + 1 < count else 0
            record = nxt
            selected = index

        self.array_free_time = array_free
        stats = self.stats
        mix_counts = stats.mix.counts
        executor = self._executor
        issued_total = 0
        order = []
        for offset in range(count):
            entry = records[head + offset - count if head + offset >= count else head + offset]
            issuer = entry[4]
            entry[4] = None  # don't pin wavefronts in the pool past the batch
            order.append(issuer)
            end_pc = entry[1]
            start_pc = entry[3]
            if end_pc > start_pc:
                issued = end_pc - start_pc
                issued_total += issued
                issuer.pc = end_pc
                issuer.ready_time = entry[0]
                issuer.instructions_issued += issued
                plan = program.region_plan(start_pc, end_pc)
                stats.busy_cycles += plan.pe_ops * occupancy_rounds + plan.plain_ops
                for key, mix_count in plan.mix_counts.items():
                    mix_counts[key] = mix_counts.get(key, 0) + mix_count
                executor.defer(issuer, program, self, start_pc, end_pc)
        stats.instructions_issued += issued_total
        stats.issue_events += events
        scheduler.install_order(order)
        scheduler.set_earliest(best)
        return []

    # ------------------------------------------------------------------ #
    # Functional helpers per instruction class
    # ------------------------------------------------------------------ #
    def _write_register(self, wavefront: Wavefront, index: int, values: np.ndarray) -> None:
        """Masked register write with a fast path for fully active wavefronts.

        Every value produced by the issue loop is an already-masked int64
        lane vector, so both paths take the premasked register-file writes;
        with every lane active the masked merge degenerates to a plain row
        assignment.
        """
        if wavefront.num_active == wavefront.wavefront_size:
            wavefront.registers.set_row(index, values)
        else:
            wavefront.registers.merge_row(index, values, wavefront.active_mask)

    def _execute_special(self, wavefront: Wavefront, op) -> None:
        opcode = op.opcode
        lanes = wavefront.wavefront_size
        dim = op.imm
        if dim:
            wavefront.check_dim(dim, opcode.mnemonic)
        if opcode is Opcode.LID:
            values = wavefront.local_id_dims[dim]
        elif opcode is Opcode.WGID:
            values = np.full(lanes, wavefront.workgroup_id_dims[dim], dtype=np.int64)
        elif opcode is Opcode.WGSIZE:
            values = np.full(lanes, wavefront.workgroup_shape[dim], dtype=np.int64)
        elif opcode is Opcode.GID:
            values = wavefront.global_id_dims[dim]
        elif opcode is Opcode.GSIZE:
            values = np.full(lanes, wavefront.global_shape[dim], dtype=np.int64)
        elif opcode is Opcode.NWG:
            values = np.full(lanes, wavefront.groups_shape[dim], dtype=np.int64)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled special opcode {opcode.mnemonic}")
        self._write_register(wavefront, op.rd, values)

    def _lane_addresses(self, wavefront: Wavefront, rs: int, imm: int) -> np.ndarray:
        base = wavefront.registers._values[rs]
        if imm == 0:
            # Register values are stored masked, so the 32-bit wrap of the
            # pointer arithmetic only matters once an offset is added.
            return base
        return (base + imm) & 0xFFFFFFFF

    def _execute_load(self, wavefront: Wavefront, op: tuple, access_time: float) -> float:
        addresses = self._lane_addresses(wavefront, op[P_RS], op[P_IMM])
        num_active = wavefront.num_active
        if num_active == wavefront.wavefront_size:
            # Fully active wavefront (the common case): no masked gather or
            # zero-fill scatter, the loaded vector is the register value.
            result = self.global_memory.load_words(addresses)
            completion = self._memory_timing(addresses, access_time, is_write=False)
            if op[P_RD]:
                wavefront.registers._values[op[P_RD]] = result
            return completion
        mask = wavefront.active_mask
        result = np.zeros(wavefront.wavefront_size, dtype=np.int64)
        completion = access_time + self.cache.hit_latency_cycles
        if num_active:
            active_addresses = addresses[mask]
            result[mask] = self.global_memory.load_words(active_addresses)
            completion = self._memory_timing(active_addresses, access_time, is_write=False)
        wavefront.registers.merge_row(op[P_RD], result, mask)
        return completion

    def _execute_store(self, wavefront: Wavefront, op: tuple, access_time: float) -> float:
        addresses = self._lane_addresses(wavefront, op[P_RS], op[P_IMM])
        num_active = wavefront.num_active
        if num_active:
            values = wavefront.registers._values[op[P_RT]]
            if num_active != wavefront.wavefront_size:
                mask = wavefront.active_mask
                addresses = addresses[mask]
                values = values[mask]
            self.global_memory.store_words(addresses, values)
            # Posted store: charge the cache and the AXI ports but do not
            # track a completion time for the wavefront (see module
            # docstring).
            self._memory_timing(addresses, access_time, is_write=True, track_completion=False)
        return access_time + self.timing.store_latency

    def _memory_timing(
        self,
        addresses: np.ndarray,
        access_time: float,
        is_write: bool,
        track_completion: bool = True,
    ) -> float:
        """Charge the cache and AXI ports for one coalesced wavefront access.

        The central cache serves at most ``CacheConfig.ports`` distinct lines
        per cycle, so an access touching more lines is serialized into
        ``ports``-wide waves issued one cycle apart; line ``k`` of the access
        starts at ``access_time + k // ports``.  Dirty evictions and line
        fills claim AXI port time at their wave's start time.
        """
        cache = self.cache
        lines = cache.coalesce_lines(addresses)
        hit_list, wb_list, num_misses = cache.access_sorted_lines(lines, is_write)
        ports = self._cache_ports
        count = lines.size
        hit_latency = cache.hit_latency_cycles
        completion = access_time + hit_latency
        if num_misses == 0:
            # All lines hit: the access finishes with the last hit wave.
            if track_completion and count > ports:
                completion = access_time + (count - 1) // ports + hit_latency
            return completion
        # Mixed or all-miss access: walk the positions once as plain Python
        # ints (the per-element numpy scalar extraction of the original loop
        # cost more than the port model itself).
        completion, last_hit = self.memory_controller.miss_burst(
            access_time, ports, hit_list, wb_list, completion
        )
        if track_completion and count > ports and last_hit >= 0:
            hit_done = access_time + last_hit // ports + hit_latency
            if hit_done > completion:
                completion = hit_done
        return completion

    def _execute_local(self, wavefront: Wavefront, op: tuple, kind: int) -> None:
        addresses = self._lane_addresses(wavefront, op[P_RS], op[P_IMM])
        mask = wavefront.active_mask
        if self._use_lram_windows:
            # Each workgroup addresses its private LRAM window: accesses wrap
            # inside the window and land at the workgroup's slot base.
            base = self._wg_lram_base[wavefront.workgroup_id]
            word_indices = base + (addresses >> 2) % self._slot_words
        else:
            word_indices = (addresses >> 2) % self._lram_words
        if kind == K_LOCAL_LOAD:
            result = np.zeros(wavefront.wavefront_size, dtype=np.int64)
            if wavefront.any_active:
                result[mask] = self.local_memory.load_words(word_indices[mask])
            wavefront.registers.merge_row(op[P_RD], result, mask)
        else:
            if wavefront.any_active:
                values = wavefront.registers._values[op[P_RT]][mask]
                self.local_memory.store_words(word_indices[mask], values)

    def _execute_branch(self, wavefront: Wavefront, op: tuple, fallthrough: int) -> int:
        rows = wavefront.registers._values
        a = wavefront.uniform_lane_value(rows[op[P_RS]])
        b = wavefront.uniform_lane_value(rows[op[P_RT]])
        signed_a = a - (1 << 32) if a & 0x80000000 else a
        signed_b = b - (1 << 32) if b & 0x80000000 else b
        code = op[P_FN]
        if code == B_EQ:
            taken = signed_a == signed_b
        elif code == B_NE:
            taken = signed_a != signed_b
        elif code == B_LT:
            taken = signed_a < signed_b
        else:  # B_GE
            taken = signed_a >= signed_b
        return op[P_IMM] if taken else fallthrough

    def _execute_barrier(self, wavefront: Wavefront, arrival: float) -> tuple:
        """Handle a workgroup barrier; returns (release_time, parked)."""
        expected = wavefront.workgroup_size // wavefront.wavefront_size
        waiters = self._barrier_waiters.setdefault(wavefront.workgroup_id, [])
        waiters.append(wavefront)
        if len(waiters) < expected:
            wavefront.ready_time = _INFINITY
            return _INFINITY, True
        release = arrival + self.timing.barrier_latency
        for waiter in waiters:
            waiter.ready_time = release
        del self._barrier_waiters[wavefront.workgroup_id]
        return release, False
