"""Compute Unit: a SIMD machine of 8 Processing Elements.

The CU is both the functional and the timing heart of the simulator.  Each
call to :meth:`ComputeUnit.step` issues one instruction of one resident
wavefront:

* the instruction executes functionally for the active lanes (vectorized in
  :mod:`repro.simt.pe`),
* vector instructions occupy the shared PE array for
  ``wavefront_size / pes_per_cu`` cycles (8 cycles for the default 64-lane
  wavefront on 8 PEs),
* loads and stores go through the shared data cache; misses and dirty
  write-backs are turned into AXI transactions by the global memory
  controller, whose port contention is what limits multi-CU scaling,
* the issuing wavefront becomes ready again after the instruction's latency,
  so other resident wavefronts can hide that latency.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.assembler import Program
from repro.arch.isa import Instruction, OpClass, Opcode
from repro.errors import SimulationError
from repro.simt import pe
from repro.simt.axi import GlobalMemoryController
from repro.simt.cache import DataCache
from repro.simt.memory import GlobalMemory, LocalMemory, RuntimeMemory
from repro.simt.scheduler import WavefrontScheduler
from repro.simt.timing import TimingModel
from repro.simt.trace import ComputeUnitStats
from repro.simt.wavefront import Wavefront


class ComputeUnit:
    """One Compute Unit of the G-GPU."""

    def __init__(
        self,
        cu_id: int,
        config: GGPUConfig,
        cache: DataCache,
        memory_controller: GlobalMemoryController,
        global_memory: GlobalMemory,
        timing: Optional[TimingModel] = None,
    ) -> None:
        self.cu_id = cu_id
        self.config = config
        self.cache = cache
        self.memory_controller = memory_controller
        self.global_memory = global_memory
        self.timing = timing or TimingModel()
        self.local_memory = LocalMemory(config.lram_words_per_cu)
        self.scheduler = WavefrontScheduler()
        self.array_free_time = 0.0
        self.stats = ComputeUnitStats(cu_id, wavefront_size=config.wavefront_size)
        self._program: Optional[Program] = None
        self._rtm: Optional[RuntimeMemory] = None
        self._barrier_waiters: Dict[int, List[Wavefront]] = {}

    # ------------------------------------------------------------------ #
    # Launch management
    # ------------------------------------------------------------------ #
    def bind(self, program: Program, rtm: RuntimeMemory) -> None:
        """Attach the kernel program and runtime memory for a new launch."""
        self._program = program
        self._rtm = rtm
        self.array_free_time = 0.0
        self.scheduler = WavefrontScheduler()
        self.stats = ComputeUnitStats(self.cu_id, wavefront_size=self.config.wavefront_size)
        self._barrier_waiters = {}
        self.local_memory = LocalMemory(self.config.lram_words_per_cu)

    def admit(self, wavefronts: List[Wavefront]) -> None:
        """Accept newly dispatched wavefronts."""
        if self._program is None:
            raise SimulationError("compute unit has no program bound")
        if len(self.scheduler) + len(wavefronts) > self.config.max_wavefronts_per_cu:
            raise SimulationError(
                f"CU {self.cu_id} cannot host {len(wavefronts)} more wavefronts"
            )
        self.scheduler.add_all(wavefronts)

    @property
    def resident_wavefronts(self) -> int:
        """Number of wavefronts currently resident (finished ones excluded)."""
        return sum(1 for wavefront in self.scheduler.resident if not wavefront.done)

    @property
    def busy(self) -> bool:
        """Whether any resident wavefront still has work."""
        return self.resident_wavefronts > 0

    def next_event_time(self) -> float:
        """Time at which this CU can issue its next instruction."""
        return self.scheduler.earliest_ready()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def step(self) -> List[Wavefront]:
        """Issue one instruction; return the wavefronts retired by it."""
        if self._program is None or self._rtm is None:
            raise SimulationError("compute unit has no program bound")
        now = self.next_event_time()
        if now == float("inf"):
            raise SimulationError(f"CU {self.cu_id} stepped with no ready wavefront")
        wavefront = self.scheduler.select(now)
        if wavefront is None:
            raise SimulationError(f"CU {self.cu_id} found no schedulable wavefront at {now}")
        retired = self._execute_one(wavefront, now)
        result = []
        for finished in retired:
            self.scheduler.remove(finished)
            self.stats.wavefronts_executed += 1
            result.append(finished)
        return result

    def _execute_one(self, wavefront: Wavefront, now: float) -> List[Wavefront]:
        program = self._program
        if wavefront.pc >= len(program):
            raise SimulationError(
                f"wavefront {wavefront.wavefront_id} ran past the end of {program.name}"
            )
        instruction = program[wavefront.pc]
        opclass = instruction.opcode.opclass

        # --- timing: issue slot and PE-array occupancy ------------------- #
        if self.timing.uses_pe_array(opclass):
            issue_start = max(now, wavefront.ready_time, self.array_free_time)
            occupancy = self.config.lanes_rounds_per_wavefront
            self.array_free_time = issue_start + occupancy
        else:
            issue_start = max(now, wavefront.ready_time)
            occupancy = 1
        completion = issue_start + occupancy + self.timing.latency_for(opclass)

        # --- statistics -------------------------------------------------- #
        self.stats.instructions_issued += 1
        self.stats.active_lane_issues += wavefront.num_active
        self.stats.busy_cycles += occupancy
        self.stats.mix.record(opclass)
        wavefront.instructions_issued += 1
        wavefront.active_lane_issues += wavefront.num_active

        # --- functional execution ----------------------------------------- #
        next_pc = wavefront.pc + 1
        retired: List[Wavefront] = []

        if opclass in (OpClass.ALU, OpClass.MUL, OpClass.DIV):
            self._execute_arithmetic(wavefront, instruction)
        elif opclass is OpClass.SPECIAL:
            self._execute_special(wavefront, instruction)
        elif opclass is OpClass.PARAM:
            value = self._rtm.read_arg(instruction.imm)
            wavefront.registers.write(
                int(instruction.rd),
                np.full(wavefront.wavefront_size, value, dtype=np.int64),
                wavefront.active_mask,
            )
        elif opclass is OpClass.LOAD:
            completion = self._execute_load(wavefront, instruction, issue_start + occupancy)
        elif opclass is OpClass.STORE:
            completion = self._execute_store(wavefront, instruction, issue_start + occupancy)
        elif opclass is OpClass.LOCAL:
            self._execute_local(wavefront, instruction)
        elif opclass is OpClass.MASK:
            self._execute_mask(wavefront, instruction)
        elif opclass is OpClass.BRANCH:
            next_pc = self._execute_branch(wavefront, instruction, next_pc)
        elif opclass is OpClass.SYNC:
            completion, parked = self._execute_barrier(wavefront, issue_start + occupancy)
            if parked:
                wavefront.pc = next_pc
                return retired
        elif opclass is OpClass.RET:
            wavefront.retire(completion)
            retired.append(wavefront)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled opcode class {opclass}")

        wavefront.pc = next_pc
        wavefront.ready_time = completion
        return retired

    # ------------------------------------------------------------------ #
    # Functional helpers per instruction class
    # ------------------------------------------------------------------ #
    def _execute_arithmetic(self, wavefront: Wavefront, instruction: Instruction) -> None:
        opcode = instruction.opcode
        a = wavefront.registers.read(int(instruction.rs)) if instruction.rs is not None else None
        if pe.is_binary_alu(opcode):
            b = wavefront.registers.read(int(instruction.rt))
            result = pe.execute_binary(opcode, a, b)
        else:
            lanes = wavefront.wavefront_size
            result = pe.execute_immediate(opcode, a, instruction.imm or 0, lanes)
        wavefront.registers.write(int(instruction.rd), result, wavefront.active_mask)

    def _execute_special(self, wavefront: Wavefront, instruction: Instruction) -> None:
        opcode = instruction.opcode
        lanes = wavefront.wavefront_size
        if opcode is Opcode.LID:
            values = wavefront.local_ids
        elif opcode is Opcode.WGID:
            values = np.full(lanes, wavefront.workgroup_id, dtype=np.int64)
        elif opcode is Opcode.WGSIZE:
            values = np.full(lanes, wavefront.workgroup_size, dtype=np.int64)
        elif opcode is Opcode.GID:
            values = wavefront.global_ids
        elif opcode is Opcode.GSIZE:
            values = np.full(lanes, wavefront.global_size, dtype=np.int64)
        elif opcode is Opcode.NWG:
            values = np.full(lanes, wavefront.num_workgroups, dtype=np.int64)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled special opcode {opcode.mnemonic}")
        wavefront.registers.write(int(instruction.rd), values, wavefront.active_mask)

    def _lane_addresses(self, wavefront: Wavefront, instruction: Instruction) -> np.ndarray:
        base = wavefront.registers.read(int(instruction.rs))
        return (base + int(instruction.imm or 0)) & 0xFFFFFFFF

    def _execute_load(
        self, wavefront: Wavefront, instruction: Instruction, access_time: float
    ) -> float:
        addresses = self._lane_addresses(wavefront, instruction)
        mask = wavefront.active_mask
        result = np.zeros(wavefront.wavefront_size, dtype=np.int64)
        completion = access_time + self.cache.hit_latency_cycles
        if mask.any():
            active_addresses = addresses[mask]
            result[mask] = self.global_memory.load_words(active_addresses)
            completion = self._memory_timing(active_addresses, access_time, is_write=False)
        wavefront.registers.write(int(instruction.rd), result, mask)
        return completion

    def _execute_store(
        self, wavefront: Wavefront, instruction: Instruction, access_time: float
    ) -> float:
        addresses = self._lane_addresses(wavefront, instruction)
        mask = wavefront.active_mask
        if mask.any():
            active_addresses = addresses[mask]
            values = wavefront.registers.read(int(instruction.rt))[mask]
            self.global_memory.store_words(active_addresses, values)
            self._memory_timing(active_addresses, access_time, is_write=True)
        return access_time + self.timing.store_latency

    def _memory_timing(
        self, addresses: np.ndarray, access_time: float, is_write: bool
    ) -> float:
        """Charge the cache and AXI ports for one coalesced wavefront access."""
        completion = access_time + self.cache.hit_latency_cycles
        for access in self.cache.access_wavefront(addresses, is_write):
            if access.write_back:
                self.memory_controller.write_back(access_time)
            if not access.hit:
                fill_done = self.memory_controller.line_fill(access_time)
                completion = max(completion, fill_done)
        return completion

    def _execute_local(self, wavefront: Wavefront, instruction: Instruction) -> None:
        addresses = self._lane_addresses(wavefront, instruction)
        mask = wavefront.active_mask
        word_indices = (addresses >> 2) % self.config.lram_words_per_cu
        if instruction.opcode is Opcode.LLW:
            result = np.zeros(wavefront.wavefront_size, dtype=np.int64)
            if mask.any():
                result[mask] = self.local_memory.load_words(word_indices[mask])
            wavefront.registers.write(int(instruction.rd), result, mask)
        else:
            if mask.any():
                values = wavefront.registers.read(int(instruction.rt))[mask]
                self.local_memory.store_words(word_indices[mask], values)

    def _execute_mask(self, wavefront: Wavefront, instruction: Instruction) -> None:
        opcode = instruction.opcode
        if opcode is Opcode.PUSHM:
            wavefront.push_mask()
        elif opcode is Opcode.CMASK:
            condition = wavefront.registers.read(int(instruction.rs))
            wavefront.constrain_mask(condition)
        elif opcode is Opcode.INVM:
            wavefront.invert_mask()
        elif opcode is Opcode.POPM:
            wavefront.pop_mask()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unhandled mask opcode {opcode.mnemonic}")

    def _execute_branch(
        self, wavefront: Wavefront, instruction: Instruction, fallthrough: int
    ) -> int:
        opcode = instruction.opcode
        target = int(instruction.imm)
        if opcode is Opcode.JMP:
            return target
        if opcode is Opcode.BEMPTY:
            return target if not wavefront.any_active else fallthrough
        a = wavefront.uniform_lane_value(wavefront.registers.read(int(instruction.rs)))
        b = wavefront.uniform_lane_value(wavefront.registers.read(int(instruction.rt)))
        signed_a = a - (1 << 32) if a & 0x80000000 else a
        signed_b = b - (1 << 32) if b & 0x80000000 else b
        taken = {
            Opcode.BEQ: signed_a == signed_b,
            Opcode.BNE: signed_a != signed_b,
            Opcode.BLT: signed_a < signed_b,
            Opcode.BGE: signed_a >= signed_b,
        }[opcode]
        return target if taken else fallthrough

    def _execute_barrier(self, wavefront: Wavefront, arrival: float) -> tuple:
        """Handle a workgroup barrier; returns (release_time, parked)."""
        expected = wavefront.workgroup_size // wavefront.wavefront_size
        waiters = self._barrier_waiters.setdefault(wavefront.workgroup_id, [])
        waiters.append(wavefront)
        if len(waiters) < expected:
            wavefront.ready_time = float("inf")
            return float("inf"), True
        release = arrival + self.timing.barrier_latency
        for waiter in waiters:
            waiter.ready_time = release
        del self._barrier_waiters[wavefront.workgroup_id]
        return release, False
