"""Wavefront state: program counter, execution mask, and divergence stack.

A wavefront groups ``wavefront_size`` work-items that execute in lockstep.
Full thread divergence is supported through an execution-mask stack driven by
the ``PUSHM``/``CMASK``/``INVM``/``POPM`` instructions: lanes whose condition
fails are masked off but keep their architectural state, and the wavefront
keeps issuing (and paying for) full PE-array slots, which is exactly why
divergent kernels lose efficiency on the real hardware.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simt.registers import WavefrontRegisterFile


class Wavefront:
    """Execution state of one wavefront of a workgroup."""

    def __init__(
        self,
        wavefront_id: int,
        workgroup_id: int,
        index_in_workgroup: int,
        wavefront_size: int,
        num_registers: int,
        workgroup_size: int,
        global_size: int,
        num_workgroups: int,
        global_shape: Optional[Tuple[int, ...]] = None,
        workgroup_shape: Optional[Tuple[int, ...]] = None,
        groups_shape: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.wavefront_id = wavefront_id
        self.workgroup_id = workgroup_id
        self.index_in_workgroup = index_in_workgroup
        self.wavefront_size = wavefront_size
        self.workgroup_size = workgroup_size
        self.global_size = global_size
        self.num_workgroups = num_workgroups

        self.pc = 0
        self.done = False
        self.registers = WavefrontRegisterFile(num_registers, wavefront_size)
        self.active_mask = np.ones(wavefront_size, dtype=bool)
        self._mask_stack: List[np.ndarray] = []

        first_lid = index_in_workgroup * wavefront_size
        self.local_ids = np.arange(first_lid, first_lid + wavefront_size, dtype=np.int64)
        if global_shape is not None and len(global_shape) == 2:
            # Rank-2 launch: OpenCL row-major enumeration, dimension 0 fastest.
            # The flat local id walks dimension 0 first within the workgroup,
            # and the flat workgroup id walks the workgroup grid the same way.
            gs0, _gs1 = global_shape
            ws0, ws1 = workgroup_shape
            nwg0 = groups_shape[0]
            wg0 = workgroup_id % nwg0
            wg1 = workgroup_id // nwg0
            lid0 = self.local_ids % ws0
            lid1 = self.local_ids // ws0
            gid0 = wg0 * ws0 + lid0
            gid1 = wg1 * ws1 + lid1
            # Row-major flattened global index over the full grid.  Note this
            # differs from ``wgid * workgroup_size + lid``: a 2-D workgroup's
            # cells are not contiguous in the flattened grid.
            self.global_ids = gid1 * gs0 + gid0
            self.local_id_dims = (lid0, lid1)
            self.global_id_dims = (gid0, gid1)
            self.workgroup_id_dims = (wg0, wg1)
            self.global_shape = tuple(global_shape)
            self.workgroup_shape = tuple(workgroup_shape)
            self.groups_shape = tuple(groups_shape)
        else:
            self.global_ids = self.local_ids + workgroup_id * workgroup_size
            self.local_id_dims = (self.local_ids,)
            self.global_id_dims = (self.global_ids,)
            self.workgroup_id_dims = (workgroup_id,)
            self.global_shape = (global_size,)
            self.workgroup_shape = (workgroup_size,)
            self.groups_shape = (num_workgroups,)
        # Lanes beyond the global size (possible only if the NDRange is not a
        # multiple of the wavefront size) start permanently inactive.
        self.active_mask &= self.global_ids < global_size
        # The active-lane count is consulted on every issued instruction, so
        # it is cached and kept current by the mask-stack operations instead
        # of being re-reduced over the lanes per issue.
        self._active_count = int(self.active_mask.sum())

        # Scheduling state (owned by the compute unit's scheduler).
        self.ready_time = 0.0

        # Per-launch statistics.
        self.instructions_issued = 0
        self.active_lane_issues = 0
        self.completion_time = 0.0

    # ------------------------------------------------------------------ #
    # Launch geometry
    # ------------------------------------------------------------------ #
    @property
    def rank(self) -> int:
        """Rank of the launch geometry this wavefront belongs to."""
        return len(self.global_shape)

    def check_dim(self, dim: int, mnemonic: str) -> None:
        """Reject a work-item-identification query outside the launch rank."""
        if not 0 <= dim < len(self.global_shape):
            raise SimulationError(
                f"{mnemonic} queries dimension {dim} of a rank-{len(self.global_shape)} "
                f"launch (global shape {self.global_shape})"
            )

    # ------------------------------------------------------------------ #
    # Mask stack
    # ------------------------------------------------------------------ #
    @property
    def mask_depth(self) -> int:
        """Current depth of the divergence stack."""
        return len(self._mask_stack)

    @property
    def any_active(self) -> bool:
        """Whether at least one lane is currently active."""
        return self._active_count > 0

    @property
    def num_active(self) -> int:
        """Number of currently active lanes."""
        return self._active_count

    def push_mask(self) -> None:
        """Save the current execution mask (PUSHM)."""
        self._mask_stack.append(self.active_mask.copy())

    def constrain_mask(self, condition: np.ndarray) -> None:
        """AND the execution mask with a per-lane condition (CMASK)."""
        condition = np.asarray(condition)
        if condition.shape != self.active_mask.shape:
            raise SimulationError("condition vector has the wrong number of lanes")
        self.active_mask &= condition != 0
        self._active_count = int(self.active_mask.sum())

    def invert_mask(self) -> None:
        """Switch to the complementary lanes of the enclosing region (INVM)."""
        if not self._mask_stack:
            raise SimulationError("INVM executed with an empty mask stack")
        self.active_mask = self._mask_stack[-1] & ~self.active_mask
        self._active_count = int(self.active_mask.sum())

    def pop_mask(self) -> None:
        """Restore the saved execution mask (POPM)."""
        if not self._mask_stack:
            raise SimulationError("POPM executed with an empty mask stack")
        self.active_mask = self._mask_stack.pop()
        self._active_count = int(self.active_mask.sum())

    # ------------------------------------------------------------------ #
    # Uniform values
    # ------------------------------------------------------------------ #
    def uniform_lane_value(self, values: np.ndarray, strict: bool = True) -> int:
        """Value of the first active lane, checking wavefront uniformity.

        Uniform branches (BEQ/BNE/BLT/BGE) require their operands to be equal
        across active lanes; with ``strict`` the simulator verifies this and
        raises, which catches kernels that should have used the mask
        instructions instead.
        """
        if not self.any_active:
            raise SimulationError("no active lane to read a uniform value from")
        active_values = np.asarray(values)
        if self._active_count != active_values.size:
            active_values = active_values[self.active_mask]
        if strict and (active_values != active_values[0]).any():
            raise SimulationError(
                f"wavefront {self.wavefront_id}: non-uniform value used in uniform control flow"
            )
        return int(active_values[0])

    def retire(self, time: float) -> None:
        """Mark the wavefront finished at the given time."""
        self.done = True
        self.completion_time = time
