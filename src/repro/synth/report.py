"""Table-I-style synthesis reporting.

The paper's Table I lists, for each of the 12 generated versions: number of
CUs and frequency, total area, memory area, #FF, #Comb., #Memory, leakage,
dynamic power, and total power.  :func:`format_table1` renders exactly those
columns from a list of :class:`~repro.synth.logic.SynthesisResult` objects so
the benchmark harness can print the regenerated table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.synth.logic import SynthesisResult


@dataclass(frozen=True)
class SynthesisReportRow:
    """One row of the regenerated Table I."""

    label: str
    total_area_mm2: float
    memory_area_mm2: float
    num_ff: int
    num_comb: int
    num_memory: int
    leakage_mw: float
    dynamic_w: float
    total_w: float

    @classmethod
    def from_result(cls, result: SynthesisResult) -> "SynthesisReportRow":
        """Build a row from a synthesis result."""
        label = f"{result.num_cus}@{result.frequency_mhz:.0f}MHz"
        return cls(
            label=label,
            total_area_mm2=result.total_area_mm2,
            memory_area_mm2=result.memory_area_mm2,
            num_ff=result.num_ff,
            num_comb=result.num_comb,
            num_memory=result.num_macros,
            leakage_mw=result.leakage_mw,
            dynamic_w=result.dynamic_w,
            total_w=result.total_power_w,
        )

    def as_tuple(self) -> tuple:
        """Columns in the paper's order (used by tests and CSV export)."""
        return (
            self.label,
            self.total_area_mm2,
            self.memory_area_mm2,
            self.num_ff,
            self.num_comb,
            self.num_memory,
            self.leakage_mw,
            self.dynamic_w,
            self.total_w,
        )


_HEADER = (
    "#CU & Freq.",
    "Total Area (mm2)",
    "Memory Area (mm2)",
    "#FF",
    "#Comb.",
    "#Memory",
    "Leakage (mW)",
    "Dynamic (W)",
    "Total (W)",
)


def format_table1(results: Iterable[SynthesisResult]) -> str:
    """Render the regenerated Table I as fixed-width text."""
    rows: List[SynthesisReportRow] = [SynthesisReportRow.from_result(result) for result in results]
    widths = [12, 17, 18, 9, 9, 9, 13, 12, 10]
    header = " | ".join(title.ljust(width) for title, width in zip(_HEADER, widths, strict=True))
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = (
            row.label.ljust(widths[0]),
            f"{row.total_area_mm2:.2f}".ljust(widths[1]),
            f"{row.memory_area_mm2:.2f}".ljust(widths[2]),
            f"{row.num_ff}".ljust(widths[3]),
            f"{row.num_comb}".ljust(widths[4]),
            f"{row.num_memory}".ljust(widths[5]),
            f"{row.leakage_mw:.2f}".ljust(widths[6]),
            f"{row.dynamic_w:.2f}".ljust(widths[7]),
            f"{row.total_w:.3f}".ljust(widths[8]),
        )
        lines.append(" | ".join(cells))
    return "\n".join(lines)
