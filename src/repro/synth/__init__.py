"""Logic synthesis model (the Cadence Genus stage of the paper's flow).

Given a netlist and a technology, this package rolls instance counts up into
the quantities Table I reports for every G-GPU version: total area, memory
area, flip-flop count, combinational gate count, macro count, leakage power,
and dynamic power at the target frequency.  It also provides the
per-partition breakdown the physical stage floorplans from.
"""

from repro.synth.logic import (
    LogicSynthesis,
    PartitionArea,
    SynthesisResult,
)
from repro.synth.report import SynthesisReportRow, format_table1

__all__ = [
    "LogicSynthesis",
    "PartitionArea",
    "SynthesisResult",
    "SynthesisReportRow",
    "format_table1",
]
