"""Area, power, and instance-count roll-up (logic synthesis model).

The numbers are computed bottom-up from the netlist:

* flip-flops and gate equivalents come from the logic blocks, plus the
  pipeline registers and division muxes added by the optimizer,
* macro count and memory area come from the memory groups and the SRAM
  compiler's area model,
* leakage is the sum of per-instance leakage,
* dynamic power scales linearly with the clock frequency, with a configurable
  average activity for the memories (they are not accessed every cycle).

This mirrors what the paper extracts from Cadence Genus after logic synthesis
(Table I), and deliberately ignores placement effects -- those are the
physical stage's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SynthesisError
from repro.rtl.netlist import Netlist, Partition
from repro.rtl.timing import TimingReport, analyze_timing
from repro.tech.technology import Technology
from repro.units import um2_to_mm2


@dataclass(frozen=True)
class PartitionArea:
    """Area breakdown of one physical partition."""

    partition: Partition
    logic_area_um2: float
    memory_area_um2: float
    num_ff: int
    num_gates: int
    num_macros: int

    @property
    def total_area_um2(self) -> float:
        return self.logic_area_um2 + self.memory_area_um2

    @property
    def total_area_mm2(self) -> float:
        return um2_to_mm2(self.total_area_um2)


@dataclass
class SynthesisResult:
    """Everything Table I reports for one synthesized G-GPU version."""

    design: str
    num_cus: int
    frequency_mhz: float
    num_ff: int
    num_comb: int
    num_macros: int
    memory_area_mm2: float
    logic_area_mm2: float
    leakage_mw: float
    dynamic_w: float
    partitions: Dict[Partition, PartitionArea] = field(default_factory=dict)
    timing: Optional[TimingReport] = None

    @property
    def total_area_mm2(self) -> float:
        """Total cell + macro area (the paper's "Total Area" column)."""
        return self.memory_area_mm2 + self.logic_area_mm2

    @property
    def total_power_w(self) -> float:
        """Leakage plus dynamic power."""
        return self.dynamic_w + self.leakage_mw / 1.0e3

    @property
    def timing_met(self) -> bool:
        """Whether the design met the target frequency at synthesis."""
        return self.timing is None or self.timing.met

    def area_per_cu_mm2(self) -> float:
        """Average area contribution of one CU (used in scalability analyses)."""
        if self.num_cus == 0:
            return 0.0
        cu_area = self.partitions.get(Partition.CU)
        if cu_area is None:
            return self.total_area_mm2 / self.num_cus
        return um2_to_mm2(cu_area.total_area_um2) / self.num_cus


class LogicSynthesis:
    """Synthesis engine: rolls a netlist up into a :class:`SynthesisResult`."""

    def __init__(self, tech: Technology, memory_activity: float = 0.7) -> None:
        if not 0.0 < memory_activity <= 1.0:
            raise SynthesisError(f"memory activity must be in (0, 1], got {memory_activity}")
        self.tech = tech
        self.memory_activity = memory_activity

    # ------------------------------------------------------------------ #
    # Partition-level roll-up
    # ------------------------------------------------------------------ #
    def partition_area(self, netlist: Netlist, partition: Partition) -> PartitionArea:
        """Compute the area and instance counts of one partition."""
        num_ff = netlist.total_ff(partition)
        num_gates = netlist.total_gates(partition)
        logic_area = self.tech.stdcells.logic_area(num_ff, num_gates)
        memory_area = 0.0
        num_macros = 0
        for group in netlist.memory_group_list(partition):
            memory_area += group.num_macros * self.tech.sram.area_um2(group.macro)
            num_macros += group.num_macros
        return PartitionArea(
            partition=partition,
            logic_area_um2=logic_area,
            memory_area_um2=memory_area,
            num_ff=num_ff,
            num_gates=num_gates,
            num_macros=num_macros,
        )

    # ------------------------------------------------------------------ #
    # Power
    # ------------------------------------------------------------------ #
    def leakage_mw(self, netlist: Netlist) -> float:
        """Total leakage power of the design."""
        leakage = self.tech.stdcells.logic_leakage_mw(netlist.total_ff(), netlist.total_gates())
        for group in netlist.memory_groups.values():
            leakage += group.num_macros * self.tech.sram.leakage_mw(group.macro)
        return leakage

    def dynamic_w(self, netlist: Netlist, frequency_mhz: float) -> float:
        """Total dynamic power at the target frequency."""
        dynamic_mw = self.tech.stdcells.logic_dynamic_mw(
            netlist.total_ff(), netlist.total_gates(), frequency_mhz
        )
        for group in netlist.memory_groups.values():
            dynamic_mw += group.num_macros * self.tech.sram.dynamic_mw(
                group.macro, frequency_mhz, self.memory_activity
            )
        return dynamic_mw / 1.0e3

    # ------------------------------------------------------------------ #
    # Full synthesis
    # ------------------------------------------------------------------ #
    def run(self, netlist: Netlist, frequency_mhz: float) -> SynthesisResult:
        """Synthesize ``netlist`` at ``frequency_mhz`` and report Table-I metrics."""
        if frequency_mhz <= 0:
            raise SynthesisError(f"target frequency must be positive, got {frequency_mhz}")
        partitions = {
            partition: self.partition_area(netlist, partition) for partition in Partition
        }
        memory_area_um2 = sum(area.memory_area_um2 for area in partitions.values())
        logic_area_um2 = sum(area.logic_area_um2 for area in partitions.values())
        timing = analyze_timing(netlist, self.tech, frequency_mhz)
        return SynthesisResult(
            design=netlist.name,
            num_cus=netlist.num_cus,
            frequency_mhz=frequency_mhz,
            num_ff=netlist.total_ff(),
            num_comb=netlist.total_gates(),
            num_macros=netlist.total_macros(),
            memory_area_mm2=um2_to_mm2(memory_area_um2),
            logic_area_mm2=um2_to_mm2(logic_area_um2),
            leakage_mw=self.leakage_mw(netlist),
            dynamic_w=self.dynamic_w(netlist, frequency_mhz),
            partitions=partitions,
            timing=timing,
        )
