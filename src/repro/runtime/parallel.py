"""Deterministic process fan-out for the paper's sweeps.

Every sweep in the repository -- the Table III kernel x target measurement
grid, the design-space exploration over CU counts and frequencies, and the
push-button ``run_many`` flow -- is an ordered map of one pure function over
an explicit task list: the tasks share no mutable state (each builds its own
simulator or netlist) and all randomness is derived from per-task seeds.
:func:`parallel_map` exploits exactly that shape:

* the result list is always in task order, whatever order the workers finish
  in, so a sweep's output is bit-identical at any job count;
* ``jobs=1`` (the default) runs the plain list comprehension in-process --
  no pool, no pickling, no behavioural difference from the historical serial
  loops it replaced;
* ``jobs>1`` fans the tasks out over a process pool (processes, not threads:
  the simulators are pure Python and hold the GIL).

The fan-out is hardened against an imperfect pool:

* a **dead worker** (OOM-killed, segfaulted, ``os._exit``) no longer
  surfaces as an opaque ``BrokenProcessPool`` traceback: the task whose
  future broke is identified and retried serially, once, in the parent
  process.  If the retry succeeds the sweep continues; if the task itself is
  the problem, the retry raises the *real* exception with the task index
  attached.
* an optional **per-task timeout** (``task_timeout`` seconds) turns a hung
  worker into a :class:`~repro.errors.ParallelExecutionError` naming the
  task, instead of blocking the sweep forever.  The surviving worker
  processes are terminated so the parent never waits on them at shutdown.

``on_result`` is called in task order as each result materializes — the hook
the resumable-sweep journals (:mod:`repro.runtime.checkpoint`) use to
persist finished cells before the sweep completes, so a killed sweep only
recomputes what the journal has not seen.

The default job count comes from the ``REPRO_JOBS`` environment variable, so
``REPRO_JOBS=4 pytest benchmarks`` parallelizes every wired sweep without
touching call sites.

Functions handed to :func:`parallel_map` with ``jobs > 1`` must be picklable
(module-level functions, bound methods of picklable objects, or
``functools.partial`` of either); the task items and results travel through
pickle as well.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ConfigurationError, ParallelExecutionError

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Job count from the ``REPRO_JOBS`` environment variable (default 1)."""
    raw = os.environ.get(JOBS_ENV_VAR, "1")
    try:
        jobs = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{JOBS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from exc
    if jobs < 1:
        raise ConfigurationError(f"{JOBS_ENV_VAR} must be a positive integer, got {jobs}")
    return jobs


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Kill a pool's worker processes so shutdown never blocks on a hung task."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:  # pragma: no cover - already gone
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: Optional[int] = None,
    task_timeout: Optional[float] = None,
    on_result: Optional[Callable[[int, _ResultT], None]] = None,
) -> List[_ResultT]:
    """Apply ``fn`` to every item, returning the results in item order.

    ``jobs`` fixes the worker count; ``None`` reads :func:`default_jobs`
    (the ``REPRO_JOBS`` environment variable).  One job -- or one item --
    short-circuits to an in-process loop.

    ``task_timeout`` bounds each task's wall-clock seconds when fanned out
    (it is not enforced on the serial path, where a hung task would hang the
    caller either way); a breach raises
    :class:`~repro.errors.ParallelExecutionError` naming the task.  A task
    whose worker process dies is retried serially once before its failure is
    surfaced.  ``on_result(index, result)`` is invoked in task order as
    results arrive.
    """
    tasks = list(items)
    if jobs is None:
        jobs = default_jobs()
    elif jobs < 1:
        raise ConfigurationError(f"job count must be a positive integer, got {jobs}")
    if task_timeout is not None and task_timeout <= 0:
        raise ConfigurationError(
            f"task_timeout must be positive, got {task_timeout}"
        )
    if jobs == 1 or len(tasks) <= 1:
        results: List[_ResultT] = []
        for index, task in enumerate(tasks):
            result = fn(task)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    workers = min(jobs, len(tasks))
    results = []
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        # submit() + indexed result collection (rather than Executor.map)
        # keeps the task <-> future association, so a broken pool or a
        # timeout can name the task instead of poisoning the whole sweep.
        futures = [pool.submit(fn, task) for task in tasks]
        for index, future in enumerate(futures):
            try:
                result = future.result(timeout=task_timeout)
            except BrokenProcessPool:
                # The worker running (or queued for) this task died.  The
                # task list is explicit and fn is pure, so the cheapest
                # honest recovery is one serial retry in the parent; a task
                # that fails again raises its real exception.
                try:
                    result = fn(tasks[index])
                except Exception as exc:
                    raise ParallelExecutionError(
                        f"task {index} ({tasks[index]!r}) killed its worker "
                        f"process and failed its serial retry: {exc}",
                        task_index=index,
                    ) from exc
            except FutureTimeoutError:
                _terminate_workers(pool)
                raise ParallelExecutionError(
                    f"task {index} ({tasks[index]!r}) exceeded the per-task "
                    f"timeout of {task_timeout}s",
                    task_index=index,
                ) from None
            if on_result is not None:
                on_result(index, result)
            results.append(result)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return results
