"""Deterministic process fan-out for the paper's sweeps.

Every sweep in the repository -- the Table III kernel x target measurement
grid, the design-space exploration over CU counts and frequencies, and the
push-button ``run_many`` flow -- is an ordered map of one pure function over
an explicit task list: the tasks share no mutable state (each builds its own
simulator or netlist) and all randomness is derived from per-task seeds.
:func:`parallel_map` exploits exactly that shape:

* the result list is always in task order, whatever order the workers finish
  in, so a sweep's output is bit-identical at any job count;
* ``jobs=1`` (the default) runs the plain list comprehension in-process --
  no pool, no pickling, no behavioural difference from the historical serial
  loops it replaced;
* ``jobs>1`` fans the tasks out over a process pool (processes, not threads:
  the simulators are pure Python and hold the GIL).

The default job count comes from the ``REPRO_JOBS`` environment variable, so
``REPRO_JOBS=4 pytest benchmarks`` parallelizes every wired sweep without
touching call sites.

Functions handed to :func:`parallel_map` with ``jobs > 1`` must be picklable
(module-level functions, bound methods of picklable objects, or
``functools.partial`` of either); the task items and results travel through
pickle as well.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

from repro.errors import ConfigurationError

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")

JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Job count from the ``REPRO_JOBS`` environment variable (default 1)."""
    raw = os.environ.get(JOBS_ENV_VAR, "1")
    try:
        jobs = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{JOBS_ENV_VAR} must be a positive integer, got {raw!r}"
        ) from exc
    if jobs < 1:
        raise ConfigurationError(f"{JOBS_ENV_VAR} must be a positive integer, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: Optional[int] = None,
) -> List[_ResultT]:
    """Apply ``fn`` to every item, returning the results in item order.

    ``jobs`` fixes the worker count; ``None`` reads :func:`default_jobs`
    (the ``REPRO_JOBS`` environment variable).  One job -- or one item --
    short-circuits to an in-process loop.
    """
    tasks = list(items)
    if jobs is None:
        jobs = default_jobs()
    elif jobs < 1:
        raise ConfigurationError(f"job count must be a positive integer, got {jobs}")
    if jobs == 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        # Executor.map yields results in submission order regardless of the
        # workers' completion order, which is what makes the fan-out
        # invisible in the output.
        return list(pool.map(fn, tasks))
