"""Execution runtime shared by the measurement and planning sweeps.

The paper's protocol is sweep-shaped everywhere: Table III measures the
kernel suite on five targets, GPUPlanner explores a CU-count x frequency
grid, and the push-button flow implements a list of designs.
:mod:`repro.runtime.parallel` provides the deterministic fan-out executor
those sweeps share, and :mod:`repro.runtime.queue` provides the OpenCL-style
batched command queue that amortizes simulator construction and program
decode across many launches (one queue per process composes with the
fan-out for multi-queue sweeps).  :mod:`repro.runtime.multidevice` scales
the queue to N simulated G-GPUs behind one host: in-order and out-of-order
(event-dependency) scheduling, host↔device transfer charging, and per-device
buffer residency tracking.
"""

from repro.runtime.multidevice import (
    DeviceBuffer,
    Event,
    MultiDeviceQueue,
    OutOfOrderQueue,
)
from repro.runtime.parallel import default_jobs, parallel_map
from repro.runtime.queue import (
    BatchItem,
    BatchResult,
    CommandQueue,
    QueueBatch,
    QueueStats,
    run_batch,
    run_batches,
)

__all__ = [
    "BatchItem",
    "BatchResult",
    "CommandQueue",
    "DeviceBuffer",
    "Event",
    "MultiDeviceQueue",
    "OutOfOrderQueue",
    "QueueBatch",
    "QueueStats",
    "default_jobs",
    "parallel_map",
    "run_batch",
    "run_batches",
]
