"""Execution runtime shared by the measurement and planning sweeps.

The paper's protocol is sweep-shaped everywhere: Table III measures the
kernel suite on five targets, GPUPlanner explores a CU-count x frequency
grid, and the push-button flow implements a list of designs.
:mod:`repro.runtime.parallel` provides the deterministic fan-out executor
those sweeps share, and :mod:`repro.runtime.queue` provides the OpenCL-style
batched command queue that amortizes simulator construction and program
decode across many launches (one queue per process composes with the
fan-out for multi-queue sweeps).  :mod:`repro.runtime.multidevice` scales
the queue to N simulated G-GPUs behind one host: in-order and out-of-order
(event-dependency) scheduling, host↔device transfer charging, and per-device
buffer residency tracking.

Robustness (PR 7): :mod:`repro.runtime.faults` injects deterministic,
seedable device and transfer faults at the schedule layer and the queues
recover from them (retry/requeue with backoff, buffer evacuation, structured
fail-fast); :mod:`repro.runtime.checkpoint` provides atomic artifact writes
and the resumable-sweep journal that lets a killed sweep recompute only its
missing cells.
"""

from repro.runtime.checkpoint import (
    SweepJournal,
    atomic_write_json,
    atomic_write_text,
    cell_key,
    open_journal,
)
from repro.runtime.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRecord,
    FaultSpec,
)
from repro.runtime.multidevice import (
    SCHEDULERS,
    DeviceBuffer,
    Event,
    MultiDeviceQueue,
    OutOfOrderQueue,
)
from repro.runtime.parallel import default_jobs, parallel_map
from repro.runtime.queue import (
    BatchItem,
    BatchResult,
    CommandQueue,
    QueueBatch,
    QueueStats,
    run_batch,
    run_batches,
)

__all__ = [
    "BatchItem",
    "BatchResult",
    "CommandQueue",
    "DeviceBuffer",
    "Event",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "MultiDeviceQueue",
    "OutOfOrderQueue",
    "SCHEDULERS",
    "QueueBatch",
    "QueueStats",
    "SweepJournal",
    "atomic_write_json",
    "atomic_write_text",
    "cell_key",
    "default_jobs",
    "open_journal",
    "parallel_map",
    "run_batch",
    "run_batches",
]
