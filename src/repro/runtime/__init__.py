"""Execution runtime shared by the measurement and planning sweeps.

The paper's protocol is sweep-shaped everywhere: Table III measures seven
kernels on five targets, GPUPlanner explores a CU-count x frequency grid, and
the push-button flow implements a list of designs.  :mod:`repro.runtime.parallel`
provides the deterministic fan-out executor those sweeps share.
"""

from repro.runtime.parallel import default_jobs, parallel_map

__all__ = ["default_jobs", "parallel_map"]
