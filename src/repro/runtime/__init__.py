"""Execution runtime shared by the measurement and planning sweeps.

The paper's protocol is sweep-shaped everywhere: Table III measures the
kernel suite on five targets, GPUPlanner explores a CU-count x frequency
grid, and the push-button flow implements a list of designs.
:mod:`repro.runtime.parallel` provides the deterministic fan-out executor
those sweeps share, and :mod:`repro.runtime.queue` provides the OpenCL-style
batched command queue that amortizes simulator construction and program
decode across many launches (one queue per process composes with the
fan-out for multi-queue sweeps).
"""

from repro.runtime.parallel import default_jobs, parallel_map
from repro.runtime.queue import (
    BatchItem,
    BatchResult,
    CommandQueue,
    QueueBatch,
    QueueStats,
    run_batch,
    run_batches,
)

__all__ = [
    "BatchItem",
    "BatchResult",
    "CommandQueue",
    "QueueBatch",
    "QueueStats",
    "default_jobs",
    "parallel_map",
    "run_batch",
    "run_batches",
]
