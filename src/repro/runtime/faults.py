"""Deterministic fault injection for the multi-device runtime.

The multi-device queues of :mod:`repro.runtime.multidevice` assume a perfect
platform: every simulated G-GPU executes every command it is handed, every
DMA transfer lands intact, and nothing ever times out.  Real accelerator
clusters are not like that — devices drop off the bus, DMA engines stall,
links flip bits — and a runtime that claims to scale must show what happens
when they do.  This module provides the *fault model* of that story:

* :class:`FaultSpec` — one injected fault: a permanent device failure, a
  transient launch failure, a transfer stall, or a detected transfer
  corruption, triggered at a chosen per-device command index or simulated
  cycle.
* :class:`FaultPlan` — an immutable, seedable collection of fault specs plus
  the recovery budget (``max_retries``, ``backoff_cycles``).
  :meth:`FaultPlan.random` derives an arbitrary-but-reproducible plan from an
  integer seed; the same seed always produces the same plan, so a "chaos"
  run is exactly as repeatable as a fault-free one.
* :class:`FaultInjector` — the runtime side: consulted by the queue at the
  *schedule* layer every time a command is dispatched to a device or a
  transfer is charged to a DMA engine.  Decisions are pure functions of the
  plan and per-device attempt counters — no wall-clock, no randomness at
  consultation time.

The injection point is deliberately the schedule layer, never the simulator:
a faulted launch attempt is a command the device *dropped* (the simulator is
not invoked for it), and a corrupted transfer is re-sent, so the simulated
kernels themselves always execute exactly once with exactly the same inputs
as a fault-free run.  That is what keeps the PR 5 schedule-vs-simulation
invariant intact under chaos: with at least one surviving device and enough
retry budget, kernel results are bit-exact versus the fault-free run — only
the schedule and the makespan may change.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

# The four injectable fault kinds.
DEVICE_FAIL = "device-fail"          # permanent fail-stop of one device
DEVICE_TRANSIENT = "device-transient"  # one launch attempt dropped
TRANSFER_STALL = "transfer-stall"    # one DMA transfer delayed
TRANSFER_CORRUPT = "transfer-corrupt"  # one DMA transfer detected-corrupt, re-sent

FAULT_KINDS: Tuple[str, ...] = (
    DEVICE_FAIL,
    DEVICE_TRANSIENT,
    TRANSFER_STALL,
    TRANSFER_CORRUPT,
)
_LAUNCH_KINDS = frozenset({DEVICE_FAIL, DEVICE_TRANSIENT})
_TRANSFER_KINDS = frozenset({TRANSFER_STALL, TRANSFER_CORRUPT})

# Deterministic default costs, in simulated cycles.
DEFAULT_DETECT_CYCLES = 1_000.0  # noticing a dropped command (watchdog timeout)
DEFAULT_STALL_CYCLES = 2_000.0   # extra DMA latency of a stalled transfer


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault.

    ``device`` names the target device.  The trigger is either
    ``at_command`` — the 0-based per-device *attempt index* of the matching
    kind (launch attempts for launch faults, charged transfers for transfer
    faults) — or ``at_cycle`` — the first matching attempt whose projected
    simulated start is at or past that cycle.  Exactly one must be given;
    each spec fires at most once.

    ``detect_cycles`` is the simulated time the runtime loses before it
    notices a dropped launch (a watchdog timeout, charged to the failing
    device's compute timeline); ``stall_cycles`` is the extra DMA latency of
    a stalled transfer.  Both have deterministic defaults.
    """

    kind: str
    device: int
    at_command: Optional[int] = None
    at_cycle: Optional[float] = None
    detect_cycles: float = DEFAULT_DETECT_CYCLES
    stall_cycles: float = DEFAULT_STALL_CYCLES

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}: pick from {FAULT_KINDS}"
            )
        if self.device < 0:
            raise ConfigurationError(f"fault device must be >= 0, got {self.device}")
        if (self.at_command is None) == (self.at_cycle is None):
            raise ConfigurationError(
                "a fault spec needs exactly one trigger: at_command or at_cycle"
            )
        if self.at_command is not None and self.at_command < 0:
            raise ConfigurationError(
                f"at_command must be >= 0, got {self.at_command}"
            )
        if self.at_cycle is not None and self.at_cycle < 0:
            raise ConfigurationError(f"at_cycle must be >= 0, got {self.at_cycle}")
        if self.detect_cycles < 0:
            raise ConfigurationError(
                f"detect_cycles must be >= 0, got {self.detect_cycles}"
            )
        if self.stall_cycles < 0:
            raise ConfigurationError(
                f"stall_cycles must be >= 0, got {self.stall_cycles}"
            )

    @property
    def is_launch_fault(self) -> bool:
        return self.kind in _LAUNCH_KINDS

    @property
    def is_transfer_fault(self) -> bool:
        return self.kind in _TRANSFER_KINDS

    def triggers(self, attempt_index: int, projected_cycle: float) -> bool:
        """Whether this spec fires for the given attempt of its kind."""
        if self.at_command is not None:
            return attempt_index == self.at_command
        return projected_cycle >= self.at_cycle


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of injected faults plus the recovery budget.

    ``max_retries`` bounds how often one command may be re-attempted after a
    fault before it fails permanently; ``backoff_cycles`` is the base of the
    exponential simulated-time backoff between attempts (attempt ``k`` after
    a fault waits ``backoff_cycles * 2**(k-1)`` cycles).  An empty plan is
    valid and must leave every schedule bit-identical to no plan at all —
    ``tests/test_runtime_faults.py`` pins that.
    """

    specs: Tuple[FaultSpec, ...] = ()
    max_retries: int = 3
    backoff_cycles: float = 500.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_cycles < 0:
            raise ConfigurationError(
                f"backoff_cycles must be >= 0, got {self.backoff_cycles}"
            )
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def permanent_devices(self) -> Set[int]:
        """Devices the plan eventually kills permanently."""
        return {spec.device for spec in self.specs if spec.kind == DEVICE_FAIL}

    def retry_delay(self, attempt: int) -> float:
        """Simulated-time backoff before retry ``attempt`` (1-based)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_cycles * float(2 ** (attempt - 1))

    @classmethod
    def random(
        cls,
        seed: int,
        num_devices: int,
        num_faults: int = 4,
        max_retries: int = 3,
        backoff_cycles: float = 500.0,
        max_command_index: int = 8,
        allow_permanent: bool = True,
    ) -> "FaultPlan":
        """A reproducible plan drawn from ``seed``.

        The draw is constrained so recovery can always succeed: at least one
        device never receives a permanent failure, and no single command
        index on one device accumulates more transient faults than the retry
        budget.  Everything else — kinds, devices, trigger indices, stall
        magnitudes — is uniform from a private :class:`random.Random`.
        """
        if num_devices < 1:
            raise ConfigurationError(f"need at least one device, got {num_devices}")
        if num_faults < 0:
            raise ConfigurationError(f"num_faults must be >= 0, got {num_faults}")
        rng = random.Random(seed)
        survivor = rng.randrange(num_devices)
        specs: List[FaultSpec] = []
        transient_hits: Dict[Tuple[int, int], int] = {}
        dead: Set[int] = set()
        for _ in range(num_faults):
            kinds = list(FAULT_KINDS)
            if not allow_permanent or num_devices == 1:
                kinds.remove(DEVICE_FAIL)
            kind = rng.choice(kinds)
            device = rng.randrange(num_devices)
            if kind == DEVICE_FAIL and (device == survivor or device in dead):
                kind = DEVICE_TRANSIENT
            index = rng.randrange(max_command_index)
            if kind == DEVICE_TRANSIENT:
                key = (device, index)
                if transient_hits.get(key, 0) + 1 >= max_retries:
                    continue  # keep the command recoverable within budget
                transient_hits[key] = transient_hits.get(key, 0) + 1
            if kind == DEVICE_FAIL:
                dead.add(device)
            specs.append(
                FaultSpec(
                    kind=kind,
                    device=device,
                    at_command=index,
                    stall_cycles=float(rng.randrange(500, 5_000)),
                )
            )
        return cls(
            specs=tuple(specs),
            max_retries=max_retries,
            backoff_cycles=backoff_cycles,
            seed=seed,
        )


@dataclass
class FaultRecord:
    """One fault the injector actually fired (for stats and debugging)."""

    spec: FaultSpec
    device: int
    attempt_index: int
    cycle: float
    label: str


class FaultInjector:
    """Runtime fault oracle consulted by the multi-device scheduler.

    The injector owns the mutable side of a :class:`FaultPlan`: per-device
    attempt counters, which specs already fired, and which devices are dead.
    Its answers are pure functions of that state, so a schedule built against
    it is as deterministic as a fault-free one.
    """

    def __init__(self, plan: FaultPlan, num_devices: int) -> None:
        for spec in plan.specs:
            if spec.device >= num_devices:
                raise ConfigurationError(
                    f"fault plan targets device {spec.device} but the queue "
                    f"has only {num_devices} devices"
                )
        self.plan = plan
        self.num_devices = num_devices
        self._launch_attempts = [0] * num_devices
        self._transfer_attempts = [0] * num_devices
        self._fired: Set[int] = set()  # indices into plan.specs
        self._dead: Set[int] = set()
        self.fired: List[FaultRecord] = []

    # ------------------------------------------------------------------ #
    # Device liveness
    # ------------------------------------------------------------------ #
    @property
    def dead_devices(self) -> Set[int]:
        return set(self._dead)

    def is_dead(self, device: int) -> bool:
        return device in self._dead

    def alive_devices(self) -> List[int]:
        return [d for d in range(self.num_devices) if d not in self._dead]

    def surviving(self, devices: Iterable[int]) -> List[int]:
        """The alive subset of ``devices``, in the order given.

        The one filter every topology-aware consumer shares: the stealing
        scheduler's thief pool, HEFT/LPT placement candidates, and P2P
        source selection all exclude retired devices through it, so a dead
        device leaves the link fabric everywhere at once — it can neither
        claim work nor serve as a copy source, while its matrix rows stay in
        the (immutable) :class:`~repro.arch.config.Topology`.
        """
        return [device for device in devices if device not in self._dead]

    def mark_dead(self, device: int) -> None:
        self._dead.add(device)

    # ------------------------------------------------------------------ #
    # Consultation points (schedule layer only)
    # ------------------------------------------------------------------ #
    def _next_fault(
        self, device: int, attempt_index: int, cycle: float, transfer: bool
    ) -> Optional[FaultSpec]:
        for index, spec in enumerate(self.plan.specs):
            if index in self._fired or spec.device != device:
                continue
            if transfer != spec.is_transfer_fault:
                continue
            if spec.triggers(attempt_index, cycle):
                self._fired.add(index)
                return spec
        return None

    def launch_fault(
        self, device: int, projected_cycle: float, label: str
    ) -> Optional[FaultSpec]:
        """Consult (and consume) the fault, if any, for one launch attempt.

        Every call counts one dispatch attempt on ``device``; at most one
        spec fires per attempt.  Returns the spec or ``None``.
        """
        attempt = self._launch_attempts[device]
        self._launch_attempts[device] += 1
        spec = self._next_fault(device, attempt, projected_cycle, transfer=False)
        if spec is not None:
            self.fired.append(
                FaultRecord(
                    spec=spec,
                    device=device,
                    attempt_index=attempt,
                    cycle=projected_cycle,
                    label=label,
                )
            )
        return spec

    def transfer_fault(
        self, device: int, projected_cycle: float, label: str
    ) -> Optional[FaultSpec]:
        """Consult (and consume) the fault, if any, for one charged transfer."""
        attempt = self._transfer_attempts[device]
        self._transfer_attempts[device] += 1
        spec = self._next_fault(device, attempt, projected_cycle, transfer=True)
        if spec is not None:
            self.fired.append(
                FaultRecord(
                    spec=spec,
                    device=device,
                    attempt_index=attempt,
                    cycle=projected_cycle,
                    label=label,
                )
            )
        return spec
