"""Crash-safe artifact writes and resumable sweep journals.

Two building blocks toward the ROADMAP's sweep-results service:

* :func:`atomic_write_text` / :func:`atomic_write_json` — write-temp-then-
  ``os.replace`` file writes.  ``os.replace`` is atomic on POSIX and
  Windows, so a reader (or a re-run after a crash) sees either the old
  complete file or the new complete file, never a truncated hybrid.  Every
  artifact writer in the repository (``BENCH_*.json``, the CSV/MD report
  bundle, the smoke-sweep table, the determinism digests) routes through
  these helpers.
* :class:`SweepJournal` — a persistent record of completed sweep cells,
  keyed by a determinism digest of each cell's full configuration
  (:func:`cell_key`).  A sweep that is killed mid-run — including
  ``SIGKILL``, which no ``finally:`` survives — resumes by loading the
  journal and computing only the missing cells.  The journal file itself is
  rewritten atomically on every record, so at any kill point it holds a
  complete, loadable set of finished cells.

A journal is only valid for the exact sweep it was started for: the caller
passes a ``meta`` mapping describing the sweep configuration, and a journal
whose stored meta differs (or whose file is unreadable or corrupt) is
discarded and restarted rather than trusted.  Cell keys hash the *semantic*
inputs of a cell (kernel, sizes, seed, device/CU counts, transfer mode…), so
a resumed cell is bit-identical to a recomputed one by the determinism
invariants the CI enforces.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.errors import ConfigurationError

PathLike = Union[str, Path]

JOURNAL_FORMAT = "repro-sweep-journal-v1"


def atomic_write_text(path: PathLike, text: str, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file is created in the destination directory so the final
    rename never crosses a filesystem boundary (cross-device renames are not
    atomic).  On any failure the temporary file is removed; the destination
    is either untouched or fully replaced.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(descriptor, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: PathLike, data: Any, indent: int = 2) -> None:
    """Serialize ``data`` as canonical JSON and write it atomically."""
    atomic_write_text(
        path, json.dumps(data, indent=indent, sort_keys=True) + "\n"
    )


def cell_key(**fields: Any) -> str:
    """Determinism digest of one sweep cell's configuration.

    The digest is the SHA-256 of the canonical JSON of the keyword fields,
    so it is stable across processes, dict orderings, and Python versions —
    and it changes whenever any semantic input of the cell changes.  Values
    must be JSON-serializable.
    """
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SweepJournal:
    """Persistent completed-cell store for one resumable sweep.

    ``meta`` identifies the sweep configuration; an existing journal file is
    only trusted when its stored format marker and meta match exactly.
    ``record`` appends one finished cell and rewrites the file atomically,
    so a crash at any instant leaves a loadable journal.  ``hits`` and
    ``misses`` count, for the current run, how many cells were served from
    the journal versus computed — the resume check in CI asserts a resumed
    sweep computes only the missing cells.
    """

    def __init__(self, path: PathLike, meta: Optional[Mapping[str, Any]] = None) -> None:
        self.path = Path(path)
        self.meta: Dict[str, Any] = dict(meta or {})
        self.cells: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.resumed = False
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return  # unreadable or torn: start fresh rather than trust it
        if not isinstance(data, dict) or data.get("format") != JOURNAL_FORMAT:
            return
        if data.get("meta") != self.meta:
            return  # journal from a different sweep configuration
        cells = data.get("cells")
        if isinstance(cells, dict):
            self.cells = dict(cells)
            self.resumed = bool(self.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, key: str) -> bool:
        return key in self.cells

    def get(self, key: str) -> Optional[Any]:
        """The recorded cell for ``key``, counting a hit, or ``None``."""
        if key in self.cells:
            self.hits += 1
            return self.cells[key]
        self.misses += 1
        return None

    def peek(self, key: str) -> Optional[Any]:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self.cells.get(key)

    def record(self, key: str, value: Any) -> None:
        """Store one finished cell and persist the journal atomically.

        ``value`` must be JSON-serializable; recording a key twice with
        different contents is a programming error (the key is supposed to be
        a digest of everything that determines the value).
        """
        if key in self.cells and self.cells[key] != value:
            raise ConfigurationError(
                f"journal cell {key} already recorded with different contents"
            )
        self.cells[key] = value
        self.flush()

    def flush(self) -> None:
        """Atomically rewrite the journal file with the current cells."""
        atomic_write_json(
            self.path,
            {"format": JOURNAL_FORMAT, "meta": self.meta, "cells": self.cells},
        )


def open_journal(
    journal: Union[None, PathLike, SweepJournal],
    meta: Mapping[str, Any],
) -> Optional[SweepJournal]:
    """Normalize a sweep's ``journal=`` argument.

    ``None`` disables journaling; a path opens (or creates) a journal with
    the given meta; an existing :class:`SweepJournal` is validated against
    the meta and passed through.
    """
    if journal is None:
        return None
    if isinstance(journal, SweepJournal):
        if journal.meta != dict(meta):
            raise ConfigurationError(
                f"journal at {journal.path} was opened for meta {journal.meta}, "
                f"but this sweep has meta {dict(meta)}"
            )
        return journal
    return SweepJournal(journal, meta=meta)
