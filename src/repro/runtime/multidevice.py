"""Multi-device command queues with host↔device transfer modeling.

The single-device :class:`~repro.runtime.queue.CommandQueue` (PR 3) amortizes
host-side setup over many launches but still executes them back-to-back on
one simulated G-GPU.  This module scales the same OpenCL execution model to
**N independent G-GPU instances behind one queue**:

* :class:`MultiDeviceQueue` — an in-order queue over ``num_devices``
  :class:`~repro.simt.gpu.GGPUSimulator` instances.  Launches still serialize
  (each one implicitly waits for the previous), but buffers live in a
  host-managed residency domain and every host↔device copy is charged by the
  transfer model.
* :class:`OutOfOrderQueue` — the OpenCL out-of-order variant: ``enqueue``
  returns an :class:`Event` and accepts ``wait_for=(events...)``; launches
  whose dependencies are met overlap across devices.  The scheduler is
  deterministic (earliest projected start wins, ties break toward the lower
  device index), so repeated runs produce the same event-graph schedule and
  cycle statistics.
* :class:`DeviceBuffer` — one logical buffer with a host image and per-device
  copies.  Residency tracking re-transfers a buffer to a device only when the
  device's copy is stale; a buffer written by a kernel is *dirty* on that
  device and is read back through the transfer model before any other device
  (or the host) may observe it.

Timing is layered strictly on top of the simulator: each device keeps two
engine timelines — compute (kernel launches) and DMA (host↔device copies),
overlapping each other as on real accelerators but each serial with itself.
Transfers charge :meth:`~repro.arch.config.TransferConfig.cycles` on the DMA
engine of the device touched, a copy of a kernel-written buffer cannot start
before the producing launch finished, and a launch's compute span is exactly
the launch's simulated cycle count.  Because every ``launch`` still starts from a cold cache and
memory controller, and buffer addresses are allocated identically on every
device (the pools march in lock-step), kernel results *and* per-launch cycle
counts are bit-identical to the same launches on a single in-order device —
``tests/test_runtime_queue.py`` pins that equivalence for diamond DAGs and
independent chains, and the CI determinism job re-checks the whole schedule
across repeated runs and job counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.config import GGPUConfig, TransferConfig
from repro.arch.kernel import Kernel, NDRange
from repro.errors import KernelError
from repro.runtime.queue import QueueStats
from repro.simt.gpu import GGPUSimulator, LaunchResult
from repro.simt.memory import WORD_BYTES

ArgValue = Union[int, np.integer, "DeviceBuffer"]


class DeviceBuffer:
    """One logical buffer: a host image plus tracked per-device copies.

    ``valid_on`` holds the device indices whose copy matches the current
    logical contents; ``dirty_on`` names the device holding the *only*
    up-to-date copy after a kernel wrote it there (the host image is stale
    until the queue reads it back).  The queue allocates the buffer eagerly
    on every device so the base address is identical across the pool — which
    keeps cache-set behaviour, and therefore per-launch cycle counts,
    independent of the device a launch lands on.
    """

    def __init__(self, handle: int, address: int, num_words: int) -> None:
        self.handle = handle
        self.address = address
        self.num_words = num_words
        self.host = np.zeros(num_words, dtype=np.int64)
        self.valid_on: set = set()
        self.dirty_on: Optional[int] = None
        # Simulated time at which the buffer's current authoritative contents
        # became available (0.0 for host-provided data).
        self.ready_cycle: float = 0.0

    @property
    def num_bytes(self) -> int:
        return self.num_words * WORD_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceBuffer(handle={self.handle}, addr={self.address:#x}, "
            f"words={self.num_words}, valid_on={sorted(self.valid_on)}, "
            f"dirty_on={self.dirty_on})"
        )


@dataclass
class Event:
    """Completion event of one enqueued launch (OpenCL ``cl_event`` flavour).

    Returned by ``enqueue``; scheduling fields are filled when the queue
    flushes.  ``transfer_cycles`` counts only the host→device input writes
    charged to *this event's device*; read-backs of dirty inputs from other
    devices (and ``enqueue_read`` drains) are charged to the source device's
    DMA engine and appear only in ``QueueStats.device_transfer_cycles``, so
    the per-device stats totals are ≥ the per-device sums over events.
    ``critical_path_cycles`` is the longest dependency chain
    ending at this event, measured in simulated *kernel* cycles — a lower
    bound on the makespan at any device count (compute along a chain must
    serialize; transfers can lengthen the schedule but never shorten that
    bound).
    """

    sequence: int
    label: str
    kernel_name: str
    device: Optional[int] = None
    start_cycle: float = 0.0
    end_cycle: float = 0.0
    compute_cycles: float = 0.0
    transfer_cycles: float = 0.0
    critical_path_cycles: float = 0.0
    result: Optional[LaunchResult] = None

    @property
    def done(self) -> bool:
        return self.result is not None


@dataclass
class _Command:
    """One enqueued launch waiting for the next flush."""

    event: Event
    kernel: Kernel
    ndrange: NDRange
    args: Dict[str, ArgValue]
    waits: Tuple[Event, ...]
    writes: Tuple[str, ...]


class MultiDeviceQueue:
    """In-order command queue over N independent simulated G-GPUs.

    In-order means OpenCL in-order: every launch implicitly depends on the
    previous one, so compute never overlaps (the device pool only matters for
    buffer residency).  :class:`OutOfOrderQueue` lifts that restriction.

    Pass either ``config``/``num_devices`` (the queue builds the pool) or
    ``devices`` (a pre-built pool, each simulator
    :meth:`~repro.simt.gpu.GGPUSimulator.reset` back to its
    post-construction state — the sweep harness reuses one pool across
    cells this way).
    """

    in_order = True

    def __init__(
        self,
        config: Optional[GGPUConfig] = None,
        num_devices: int = 1,
        memory_bytes: int = 64 * 1024 * 1024,
        transfer: Optional[TransferConfig] = None,
        devices: Optional[Sequence[GGPUSimulator]] = None,
    ) -> None:
        if devices is not None:
            if config is not None:
                raise KernelError("pass either a device pool or a config, not both")
            pool = list(devices)
            if not pool:
                raise KernelError("a multi-device queue needs at least one device")
            if any(simulator.config != pool[0].config for simulator in pool):
                # A mixed pool would silently void the bit-identical guarantee:
                # a launch's cycle count would depend on device assignment.
                raise KernelError("all devices of a queue must share one GGPUConfig")
            for simulator in pool:
                simulator.reset()
            self.devices = pool
            self.config = pool[0].config
        else:
            if num_devices < 1:
                raise KernelError(f"need at least one device, got {num_devices}")
            self.config = config or GGPUConfig()
            self.devices = [
                GGPUSimulator(self.config, memory_bytes=memory_bytes)
                for _ in range(num_devices)
            ]
        self.transfer = transfer if transfer is not None else self.config.transfer
        self.stats = QueueStats(
            device_compute_cycles={index: 0.0 for index in range(len(self.devices))},
            device_transfer_cycles={index: 0.0 for index in range(len(self.devices))},
        )
        # Two timelines per device: the compute engine (kernel launches) and
        # the DMA engine (host↔device copies).  They overlap, as on real
        # accelerators; each is serial with itself.
        self._compute_available = [0.0] * len(self.devices)
        self._dma_available = [0.0] * len(self.devices)
        self._buffers: List[DeviceBuffer] = []
        self._events: List[Event] = []
        self._pending: List[_Command] = []
        self._results: List[LaunchResult] = []
        self._schedule: List[Event] = []
        self._last_event: Optional[Event] = None

    # ------------------------------------------------------------------ #
    # Buffers
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def schedule(self) -> List[Event]:
        """The executed launches, in execution order, with their timings."""
        return list(self._schedule)

    def allocate_buffer(self, num_words: int) -> DeviceBuffer:
        """Allocate one logical buffer (zero-filled) on every device.

        The per-device allocators march in lock-step, so the same base
        address comes back from each; a mismatch means the pool was tampered
        with behind the queue's back.
        """
        addresses = [device.allocate_buffer(num_words) for device in self.devices]
        if len(set(addresses)) != 1:
            raise KernelError(
                f"device allocators diverged: buffer addresses {addresses}"
            )
        buffer = DeviceBuffer(len(self._buffers), addresses[0], num_words)
        # A fresh simulator's memory is zero-filled, so every device copy of
        # a zero-filled logical buffer is already valid.
        buffer.valid_on = set(range(len(self.devices)))
        self._buffers.append(buffer)
        return buffer

    def create_buffer(self, values: Sequence[int]) -> DeviceBuffer:
        """Allocate a logical buffer and set its host image to ``values``."""
        values = np.asarray(list(values), dtype=np.int64) & 0xFFFFFFFF
        buffer = self.allocate_buffer(int(values.size))
        self.enqueue_write(buffer, values)
        return buffer

    def enqueue_write(self, buffer: DeviceBuffer, values: Sequence[int]) -> None:
        """Replace the buffer's logical contents with host data.

        Pending launches are flushed first (they must observe the old
        contents), then every device copy is invalidated; the actual copy to
        a device is charged lazily when a launch needs the buffer there.
        """
        self._check_buffer(buffer)
        data = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
        if data.size != buffer.num_words:
            raise KernelError(
                f"buffer {buffer.handle} holds {buffer.num_words} words, "
                f"got {data.size} values"
            )
        self.flush()
        buffer.host = data.copy()
        buffer.valid_on = set()
        buffer.dirty_on = None
        buffer.ready_cycle = 0.0  # host data is available immediately

    def enqueue_read(self, buffer: DeviceBuffer) -> np.ndarray:
        """Read the buffer's current logical contents back to the host.

        Finishes pending work first; if a device holds the only up-to-date
        copy, the device→host transfer is charged on that device's timeline.
        """
        self._check_buffer(buffer)
        self.flush()
        self._read_back(buffer)
        return buffer.host.astype(np.uint32)

    # ------------------------------------------------------------------ #
    # Enqueue / execute
    # ------------------------------------------------------------------ #
    def enqueue(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Dict[str, ArgValue],
        label: Optional[str] = None,
        wait_for: Sequence[Event] = (),
        writes: Optional[Sequence[str]] = None,
    ) -> Event:
        """Append one launch; returns its completion :class:`Event`.

        ``args`` maps buffer-kind kernel arguments to :class:`DeviceBuffer`
        handles and scalar arguments to integers.  ``writes`` names the
        buffer arguments the kernel writes (defaults to *all* buffer
        arguments — conservative, but never wrong); read-only inputs listed
        out of it stay resident on every device that has them.  ``wait_for``
        lists events this launch must run after; an in-order queue adds an
        implicit dependency on the previously enqueued launch.
        """
        buffer_names = [arg.name for arg in kernel.args if arg.kind == "buffer"]
        resolved: Dict[str, ArgValue] = {}
        for name, value in args.items():
            if isinstance(value, DeviceBuffer):
                if name not in buffer_names:
                    raise KernelError(
                        f"argument {name!r} of kernel {kernel.name!r} is not a buffer"
                    )
                self._check_buffer(value)
                resolved[name] = value
            else:
                resolved[name] = int(value)
        for name in buffer_names:
            if name in args and not isinstance(args[name], DeviceBuffer):
                raise KernelError(
                    f"buffer argument {name!r} of kernel {kernel.name!r} needs a "
                    f"DeviceBuffer handle on a multi-device queue, got {args[name]!r}"
                )
        if writes is None:
            write_names = tuple(name for name in buffer_names if name in args)
        else:
            write_names = tuple(writes)
            for name in write_names:
                if name not in buffer_names or name not in args:
                    raise KernelError(
                        f"writes lists {name!r}, which is not a buffer argument "
                        f"of kernel {kernel.name!r}"
                    )
        waits = []
        for event in wait_for:
            if (
                not isinstance(event, Event)
                or event.sequence >= len(self._events)
                or self._events[event.sequence] is not event
            ):
                raise KernelError("wait_for events must come from this queue")
            waits.append(event)
        if self.in_order and self._last_event is not None:
            waits.append(self._last_event)

        event = Event(
            sequence=len(self._events),
            label=label or f"{kernel.name}#{len(self._events)}",
            kernel_name=kernel.name,
        )
        self._events.append(event)
        self._pending.append(
            _Command(
                event=event,
                kernel=kernel,
                ndrange=ndrange,
                args=resolved,
                waits=tuple(waits),
                writes=write_names,
            )
        )
        self._last_event = event
        return event

    @property
    def pending(self) -> int:
        """Number of launches waiting for :meth:`flush`."""
        return len(self._pending)

    def flush(self) -> List[LaunchResult]:
        """Schedule and execute every pending launch; returns their results.

        Commands are processed in enqueue order (a valid topological order of
        the event graph, since an event can only be waited on after it was
        created); each one is assigned the device with the earliest projected
        start.  On an empty queue this is a cheap no-op.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        executed = [self._execute(command) for command in pending]
        self._results.extend(executed)
        return executed

    def finish(self) -> List[LaunchResult]:
        """Flush and return the results of *all* launches this queue has run.

        On an empty queue (nothing pending, nothing run) this is a cheap
        no-op that returns an empty list.
        """
        self.flush()
        return list(self._results)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_buffer(self, buffer: DeviceBuffer) -> None:
        if (
            not isinstance(buffer, DeviceBuffer)
            or buffer.handle >= len(self._buffers)
            or self._buffers[buffer.handle] is not buffer
        ):
            raise KernelError("buffer does not belong to this queue")

    def _command_buffers(self, command: _Command) -> List[Tuple[str, DeviceBuffer]]:
        """The command's buffer arguments in kernel-signature order."""
        return [
            (arg.name, command.args[arg.name])
            for arg in command.kernel.args
            if arg.kind == "buffer" and isinstance(command.args.get(arg.name), DeviceBuffer)
        ]

    def _projected_start(self, command: _Command, device: int, ready: float) -> float:
        """Earliest compute start of ``command`` on ``device`` (no mutation).

        Mirrors :meth:`_materialize` closely enough to pick a device; it is a
        deterministic heuristic, not a timing commitment.
        """
        arrival = ready
        dma = self._dma_available[device]
        for _, buffer in self._command_buffers(command):
            if device in buffer.valid_on or buffer.dirty_on == device:
                arrival = max(arrival, buffer.ready_cycle)
                continue
            host_ready = buffer.ready_cycle
            if buffer.dirty_on is not None:
                source = buffer.dirty_on
                host_ready = max(
                    self._dma_available[source], buffer.ready_cycle
                ) + self.transfer.cycles(buffer.num_bytes)
            dma = max(dma, host_ready) + self.transfer.cycles(buffer.num_bytes)
            arrival = max(arrival, dma)
        return max(self._compute_available[device], arrival)

    def _read_back(self, buffer: DeviceBuffer) -> Tuple[float, float]:
        """Refresh the host image from the dirty device, charging the copy.

        Returns ``(host_ready_cycle, cycles_charged)``.  The copy runs on the
        source device's DMA engine, overlapping that device's compute; it can
        start no earlier than the producing launch finished
        (``buffer.ready_cycle``).
        """
        source = buffer.dirty_on
        if source is None:
            # The host image is authoritative whenever no device copy is
            # dirty: there is nothing to read back (and nothing to count —
            # ``transfers_skipped`` measures launch-side residency hits only).
            return buffer.ready_cycle, 0.0
        cycles = self.transfer.cycles(buffer.num_bytes)
        buffer.host = (
            self.devices[source]
            .read_buffer(buffer.address, buffer.num_words)
            .astype(np.int64)
        )
        start = max(self._dma_available[source], buffer.ready_cycle)
        end = start + cycles
        self._dma_available[source] = end
        self.stats.record_transfer(source, buffer.num_bytes, cycles, to_device=False)
        self.stats.makespan = max(self.stats.makespan, end)
        buffer.dirty_on = None
        buffer.valid_on = {source}
        buffer.ready_cycle = end
        return end, cycles

    def _materialize(self, command: _Command, device: int, ready: float) -> Tuple[float, float]:
        """Make every buffer argument resident on ``device``.

        Returns ``(compute_start, transfer_cycles_charged)`` — the latter
        covers only the host→device writes on *this* device's DMA engine.
        A buffer dirty on another device is first read back there (charged to
        the source device's DMA engine and visible in the per-device stats,
        not in this event's total), then written host→device.  The launch
        computes once its engine is free, its event dependencies are met, and
        every input has arrived.
        """
        arrival = ready
        charged = 0.0
        for _, buffer in self._command_buffers(command):
            if device in buffer.valid_on or buffer.dirty_on == device:
                self.stats.transfers_skipped += 1
                arrival = max(arrival, buffer.ready_cycle)
                continue
            if buffer.dirty_on is not None:
                host_ready, _ = self._read_back(buffer)
            else:
                host_ready = buffer.ready_cycle
            cycles = self.transfer.cycles(buffer.num_bytes)
            self.devices[device].write_buffer(buffer.address, buffer.host)
            start = max(self._dma_available[device], host_ready)
            end = start + cycles
            self._dma_available[device] = end
            charged += cycles
            self.stats.record_transfer(device, buffer.num_bytes, cycles, to_device=True)
            self.stats.makespan = max(self.stats.makespan, end)
            buffer.valid_on.add(device)
            arrival = max(arrival, end)
        return max(self._compute_available[device], arrival), charged

    def _execute(self, command: _Command) -> LaunchResult:
        ready = max((event.end_cycle for event in command.waits), default=0.0)
        device = min(
            range(len(self.devices)),
            key=lambda index: (self._projected_start(command, index, ready), index),
        )
        start, transfer_cycles = self._materialize(command, device, ready)

        launch_args = {
            name: value.address if isinstance(value, DeviceBuffer) else value
            for name, value in command.args.items()
        }
        result = self.devices[device].launch(command.kernel, command.ndrange, launch_args)
        end = start + result.cycles
        self._compute_available[device] = end

        for name in command.writes:
            buffer = command.args[name]
            buffer.dirty_on = device
            buffer.valid_on = {device}
            buffer.ready_cycle = end

        event = command.event
        event.device = device
        event.start_cycle = start
        event.end_cycle = end
        event.compute_cycles = result.cycles
        event.transfer_cycles = transfer_cycles
        event.critical_path_cycles = (
            max((dep.critical_path_cycles for dep in command.waits), default=0.0)
            + result.cycles
        )
        event.result = result

        self.stats.record(result, device=device)
        self.stats.makespan = max(self.stats.makespan, end)
        self.stats.critical_path_cycles = max(
            self.stats.critical_path_cycles, event.critical_path_cycles
        )
        self._schedule.append(event)
        return result


class OutOfOrderQueue(MultiDeviceQueue):
    """Out-of-order multi-device queue with OpenCL-style event dependencies.

    Launches are ordered only by their ``wait_for`` events; independent
    launches overlap across the device pool.  As with a real out-of-order
    queue, two launches touching the same buffer without an event between
    them have no defined order — declare the dependency (or rely on the
    in-order :class:`MultiDeviceQueue`).
    """

    in_order = False
