"""Multi-device command queues with host↔device and device↔device transfers.

The single-device :class:`~repro.runtime.queue.CommandQueue` (PR 3) amortizes
host-side setup over many launches but still executes them back-to-back on
one simulated G-GPU.  This module scales the same OpenCL execution model to
**N independent G-GPU instances behind one queue**:

* :class:`MultiDeviceQueue` — an in-order queue over ``num_devices``
  :class:`~repro.simt.gpu.GGPUSimulator` instances.  Launches still serialize
  (each one implicitly waits for the previous), but buffers live in a
  host-managed residency domain and every host↔device copy is charged by the
  transfer model.
* :class:`OutOfOrderQueue` — the OpenCL out-of-order variant: ``enqueue``
  returns an :class:`Event` and accepts ``wait_for=(events...)``; launches
  whose dependencies are met overlap across devices.  The scheduler is
  deterministic (earliest projected start wins, ties break toward the lower
  device index), so repeated runs produce the same event-graph schedule and
  cycle statistics.  An optional LPT flush order
  (``OutOfOrderQueue(lpt=True)``) drains ready launches
  longest-projected-time first instead of enqueue order.
* :class:`DeviceBuffer` — one logical buffer with a host image and per-device
  copies.  Residency tracking re-transfers a buffer to a device only when the
  device's copy is stale; a buffer written by a kernel is *dirty* (the host
  image is stale) and is moved through the transfer model before any other
  device or the host may observe it.

Transfer commands are first class (PR 5): ``enqueue_write`` and
``enqueue_read`` append scheduled commands to the same event graph as kernel
launches instead of forcing a full queue flush, so building a DAG never
drains it and input prefetch overlaps earlier compute.  ``enqueue_write``
returns an :class:`Event`; with a ``device=`` hint it *prefetches* the data
onto that device's DMA timeline at write time so the consuming launch finds
the buffer resident.  Cross-device hand-offs of dirty buffers bounce through
the host (device→host read-back plus host→device write, two
:meth:`~repro.arch.config.TransferConfig.cycles` hops) unless the transfer
model enables **peer-to-peer** (``TransferConfig.p2p_enabled``), in which
case the copy goes directly device→device in one
:meth:`~repro.arch.config.TransferConfig.p2p_cycles` hop, occupying both DMA
engines and leaving the host image stale.

Timing is layered strictly on top of the simulator: each device keeps two
engine timelines — compute (kernel launches) and DMA (host↔device and P2P
copies), overlapping each other as on real accelerators but each serial with
itself.  Transfers charge the configured cycle model on the DMA engine of
the device touched (the destination device for P2P), a copy of a
kernel-written buffer cannot start before the producing launch finished, and
a launch's compute span is exactly the launch's simulated cycle count.
Because every ``launch`` still starts from a cold cache and memory
controller, and buffer addresses are allocated identically on every device
(the pools march in lock-step), kernel results *and* per-launch cycle counts
are bit-identical to the same launches on a single in-order device —
``tests/test_runtime_queue.py`` pins that equivalence for diamond DAGs and
independent chains, and the CI determinism job re-checks the whole schedule
across repeated runs and job counts.  With the default transfer model (P2P
disabled) and no hints, schedules are bit-identical to the PR 4 runtime.

**Fault tolerance (PR 7).**  A queue built with a seeded
:class:`~repro.runtime.faults.FaultPlan` consults a deterministic
:class:`~repro.runtime.faults.FaultInjector` at the *schedule* layer — never
inside the simulators — every time a command is dispatched or a transfer is
charged.  A faulted launch attempt is a command the device dropped: the
simulator is not invoked, the runtime loses the fault's ``detect_cycles`` on
the failing device's compute timeline, and the command is re-enqueued (after
an exponential simulated-time backoff) on the surviving devices, up to the
plan's retry budget.  A permanent ``device-fail`` retires the device: the
failure model is fail-stop with host-readable memory, so buffers whose only
valid copy lives on the dying device are evacuated host-ward through the
normal read-back path (each salvage copy charged on the schedule) before the
device is excluded from placement forever.  Transfer faults stall or re-send
individual DMA copies.  A command whose retry budget is exhausted — or that
depends on one — fails fast with a structured
:class:`~repro.errors.DeviceFailureError` carrying the failed event-graph
slice.  With no fault plan every schedule is bit-identical to a queue built
without one; with any plan and at least one surviving device, kernel results
are bit-exact versus the fault-free run — only the schedule and makespan may
change (``tests/test_runtime_faults.py`` fuzzes exactly that contract).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.config import GGPUConfig, Topology, TransferConfig
from repro.arch.kernel import Kernel, NDRange
from repro.errors import DeviceFailureError, KernelError
from repro.runtime.faults import (
    DEVICE_FAIL,
    TRANSFER_STALL,
    FaultInjector,
    FaultPlan,
)
from repro.runtime.queue import QueueStats
from repro.simt.gpu import GGPUSimulator, LaunchResult
from repro.simt.memory import WORD_BYTES

ArgValue = Union[int, np.integer, "DeviceBuffer"]

#: Flush-order schedulers of :class:`OutOfOrderQueue`.  ``fifo`` drains in
#: enqueue order, ``lpt`` longest-projected-time first, ``heft`` by HEFT
#: upward rank over the event graph (per-link communication costs included),
#: ``stealing`` lets the idlest device deterministically claim the
#: topology-nearest ready command.
SCHEDULERS = ("fifo", "lpt", "heft", "stealing")

#: Deterministic compute-time proxy used by the HEFT ranks and the stealing
#: scheduler's virtual device clocks: estimated cycles per NDRange work-item.
#: It only weighs schedule decisions — simulation timing never uses it — so
#: any positive constant is *correct*; this one is in the ballpark of the
#: library kernels' measured cycles-per-item, which keeps compute and
#: per-link communication estimates on one scale.
SCHEDULE_CYCLES_PER_ITEM = 8.0


class DeviceBuffer:
    """One logical buffer: a host image plus tracked per-device copies.

    ``valid_on`` holds the device indices whose copy matches the current
    logical contents; ``host_valid`` tells whether the host image does too.
    After a kernel writes the buffer, only the producing device is valid and
    the host image is stale until the queue reads it back — or, with P2P
    enabled, until a direct device→device copy spreads the contents (the
    host image then stays stale while several devices are valid).  The queue
    allocates the buffer eagerly on every device so the base address is
    identical across the pool — which keeps cache-set behaviour, and
    therefore per-launch cycle counts, independent of the device a launch
    lands on.
    """

    def __init__(self, handle: int, address: int, num_words: int) -> None:
        self.handle = handle
        self.address = address
        self.num_words = num_words
        self.host = np.zeros(num_words, dtype=np.int64)
        self.valid_on: set = set()
        self.host_valid: bool = True
        # Simulated time at which the buffer's current authoritative contents
        # became available (0.0 for host-provided data).
        self.ready_cycle: float = 0.0
        # Per-device arrival times of copies made by the *new* transfer paths
        # (P2P and prefetch).  The lazy host→device path deliberately does not
        # populate it: the PR 4 timing model lets a residency hit observe the
        # buffer at ``ready_cycle``, and the schedule pins depend on that.
        self.device_ready: Dict[int, float] = {}
        # Hazard tracking for first-class transfer commands: the event that
        # last (re)defined the contents, and the events that read them since.
        self.last_writer: Optional["Event"] = None
        self.readers: List["Event"] = []

    @property
    def num_bytes(self) -> int:
        return self.num_words * WORD_BYTES

    @property
    def dirty_on(self) -> Optional[int]:
        """Lowest device holding up-to-date contents the host lacks."""
        if self.host_valid or not self.valid_on:
            return None
        return min(self.valid_on)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceBuffer(handle={self.handle}, addr={self.address:#x}, "
            f"words={self.num_words}, valid_on={sorted(self.valid_on)}, "
            f"host_valid={self.host_valid})"
        )


@dataclass
class Event:
    """Completion event of one enqueued command (OpenCL ``cl_event`` flavour).

    Returned by ``enqueue``/``enqueue_write``; scheduling fields are filled
    when the queue flushes.  ``kind`` is ``"launch"`` for kernel launches and
    ``"write"``/``"read"`` for first-class transfer commands.

    ``transfer_cycles`` counts the copies charged to *this event's device*:
    host→device input writes (including prefetch writes) and inbound P2P
    hops.  ``readback_cycles`` counts the device→host read-backs this event
    triggered, charged to the *source* device's DMA engine.  Together they
    reconcile exactly with the per-device stats:
    ``sum(transfer_cycles + readback_cycles over all events) ==
    sum(QueueStats.device_transfer_cycles.values())``.

    ``critical_path_cycles`` is the longest dependency chain ending at this
    event, measured in simulated *kernel* cycles — a lower bound on the
    makespan at any device count (compute along a chain must serialize;
    transfers can lengthen the schedule but never shorten that bound).

    Under fault injection an event may *fail permanently*: ``failed`` is set,
    ``error`` holds the structured :class:`~repro.errors.DeviceFailureError`
    (cascaded failures chain the root cause as ``error.__cause__``), and
    ``attempts`` counts the dispatch attempts the command consumed.
    """

    sequence: int
    label: str
    kernel_name: str
    device: Optional[int] = None
    start_cycle: float = 0.0
    end_cycle: float = 0.0
    compute_cycles: float = 0.0
    transfer_cycles: float = 0.0
    readback_cycles: float = 0.0
    critical_path_cycles: float = 0.0
    result: Optional[LaunchResult] = None
    kind: str = "launch"
    finished: bool = False
    failed: bool = False
    attempts: int = 0
    error: Optional[DeviceFailureError] = None
    _queue: Optional["MultiDeviceQueue"] = field(
        default=None, repr=False, compare=False
    )

    @property
    def done(self) -> bool:
        return self.finished or self.result is not None

    @property
    def settled(self) -> bool:
        """Whether the event will never run again (completed or failed)."""
        return self.done or self.failed

    def wait(self) -> None:
        """Drive the owning queue until this event settles; raise on failure.

        Waiting on an event whose producing command failed permanently
        raises its :class:`~repro.errors.DeviceFailureError` immediately —
        with the original root failure chained as ``__cause__`` for
        cascaded dependents — instead of hanging or surfacing a generic
        :class:`~repro.errors.KernelError` from a later read.
        """
        if self.failed:
            raise self.error
        if not self.done and self._queue is not None:
            self._queue.flush()
        if self.failed:
            raise self.error


@dataclass
class _Command:
    """One enqueued command (launch or transfer) waiting for the next flush."""

    event: Event
    waits: Tuple[Event, ...]
    kernel: Optional[Kernel] = None
    ndrange: Optional[NDRange] = None
    args: Dict[str, ArgValue] = field(default_factory=dict)
    writes: Tuple[str, ...] = ()
    buffer: Optional[DeviceBuffer] = None
    data: Optional[np.ndarray] = None
    device: Optional[int] = None  # affinity hint (launch) / prefetch target (write)

    @property
    def kind(self) -> str:
        return self.event.kind


class MultiDeviceQueue:
    """In-order command queue over N independent simulated G-GPUs.

    In-order means OpenCL in-order: every command implicitly depends on the
    previous one, so compute never overlaps (the device pool only matters for
    buffer residency).  :class:`OutOfOrderQueue` lifts that restriction.

    Pass either ``config``/``num_devices`` (the queue builds the pool) or
    ``devices`` (a pre-built pool, each simulator
    :meth:`~repro.simt.gpu.GGPUSimulator.reset` back to its
    post-construction state — the sweep harness reuses one pool across
    cells this way).

    ``faults`` optionally arms a :class:`~repro.runtime.faults.FaultPlan`:
    the queue then recovers from injected device and transfer faults at the
    schedule layer (see the module docstring).  ``faults=None`` and an
    empty plan are bit-identical.
    """

    in_order = True

    def __init__(
        self,
        config: Optional[GGPUConfig] = None,
        num_devices: int = 1,
        memory_bytes: int = 64 * 1024 * 1024,
        transfer: Optional[TransferConfig] = None,
        devices: Optional[Sequence[GGPUSimulator]] = None,
        faults: Optional[FaultPlan] = None,
        topology: Optional[Topology] = None,
    ) -> None:
        if devices is not None:
            if config is not None:
                raise KernelError("pass either a device pool or a config, not both")
            pool = list(devices)
            if not pool:
                raise KernelError("a multi-device queue needs at least one device")
            if any(simulator.config != pool[0].config for simulator in pool):
                # A mixed pool would silently void the bit-identical guarantee:
                # a launch's cycle count would depend on device assignment.
                raise KernelError("all devices of a queue must share one GGPUConfig")
            for simulator in pool:
                simulator.reset()
            self.devices = pool
            self.config = pool[0].config
        else:
            if num_devices < 1:
                raise KernelError(f"need at least one device, got {num_devices}")
            self.config = config or GGPUConfig()
            self.devices = [
                GGPUSimulator(self.config, memory_bytes=memory_bytes)
                for _ in range(num_devices)
            ]
        if topology is not None and topology.num_devices != len(self.devices):
            raise KernelError(
                f"topology describes {topology.num_devices} devices, "
                f"but the queue has {len(self.devices)}"
            )
        self.topology = topology
        if transfer is not None:
            self.transfer = transfer
        elif topology is not None and topology.host is not None:
            self.transfer = topology.host
        else:
            self.transfer = self.config.transfer
        self.faults = faults
        self._injector = (
            FaultInjector(faults, len(self.devices)) if faults is not None else None
        )
        self._failures: List[DeviceFailureError] = []
        self.scheduler = "fifo"
        self.prefetch_depth = 0
        self._steal_rng = random.Random(0)
        self._comm_cache: Dict[int, float] = {}
        self.stats = QueueStats(
            device_compute_cycles={index: 0.0 for index in range(len(self.devices))},
            device_transfer_cycles={index: 0.0 for index in range(len(self.devices))},
        )
        # Two timelines per device: the compute engine (kernel launches) and
        # the DMA engine (host↔device and P2P copies).  They overlap, as on
        # real accelerators; each is serial with itself.
        self._compute_available = [0.0] * len(self.devices)
        self._dma_available = [0.0] * len(self.devices)
        self._buffers: List[DeviceBuffer] = []
        self._events: List[Event] = []
        self._pending: List[_Command] = []
        self._results: List[LaunchResult] = []
        self._schedule: List[Event] = []
        self._last_event: Optional[Event] = None

    # ------------------------------------------------------------------ #
    # Buffers
    # ------------------------------------------------------------------ #
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def schedule(self) -> List[Event]:
        """The executed *launches*, in execution order, with their timings."""
        return list(self._schedule)

    @property
    def events(self) -> List[Event]:
        """Every event this queue created (launches and transfer commands)."""
        return list(self._events)

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The armed fault injector, or ``None`` when no plan is configured."""
        return self._injector

    @property
    def alive_devices(self) -> List[int]:
        """Device indices still accepting work (all of them without faults).

        Every topology-aware consumer (thief pool, placement candidates)
        filters through :meth:`~repro.runtime.faults.FaultInjector.surviving`
        so a retired device leaves the link fabric everywhere at once.
        """
        if self._injector is None:
            return list(range(len(self.devices)))
        return self._injector.surviving(range(len(self.devices)))

    @property
    def failures(self) -> List[DeviceFailureError]:
        """Every root permanent failure this queue has recorded, in order."""
        return list(self._failures)

    @property
    def lpt(self) -> bool:
        """Whether the LPT flush order is active (``scheduler == "lpt"``)."""
        return self.scheduler == "lpt"

    # ------------------------------------------------------------------ #
    # Link costs (topology-aware when a Topology is attached)
    # ------------------------------------------------------------------ #
    @property
    def _p2p_direct(self) -> bool:
        """Whether a direct device↔device link exists (any pair).

        A :class:`~repro.arch.config.Topology` always provides a direct
        fabric; without one the single ``TransferConfig`` P2P knob decides.
        """
        return self.topology is not None or self.transfer.p2p_enabled

    def _p2p_link_cycles(self, src: int, dst: int, num_bytes: int) -> float:
        """Cycle cost of one direct ``src``→``dst`` copy on this fabric."""
        if self.topology is not None:
            return self.topology.p2p_cycles(src, dst, num_bytes)
        return self.transfer.p2p_cycles(num_bytes)

    def _nearest_source(self, buffer: DeviceBuffer, device: int) -> int:
        """The valid device cheapest to copy ``buffer`` to ``device`` from.

        Ties break toward the lower index, so the flat/default fabric (every
        pair priced identically) picks ``min(valid_on)`` — bit-identical to
        the pre-topology runtime.
        """
        return min(
            buffer.valid_on,
            key=lambda source: (
                self._p2p_link_cycles(source, device, buffer.num_bytes),
                source,
            ),
        )

    def _comm_estimate(self, num_bytes: int) -> float:
        """Mean device↔device cost of ``num_bytes`` — the HEFT edge weight.

        HEFT weighs a dependency edge before knowing the placement of either
        endpoint, so it uses the mean over all ordered device pairs (the
        classic rank formulation); without a topology every pair costs the
        same and the mean collapses to ``TransferConfig.p2p_cycles``.
        """
        cached = self._comm_cache.get(num_bytes)
        if cached is not None:
            return cached
        count = len(self.devices)
        if self.topology is not None and count > 1:
            total = sum(
                self.topology.p2p_cycles(src, dst, num_bytes)
                for src in range(count)
                for dst in range(count)
                if src != dst
            )
            value = total / float(count * (count - 1))
        else:
            value = self.transfer.p2p_cycles(num_bytes)
        self._comm_cache[num_bytes] = value
        return value

    def allocate_buffer(self, num_words: int) -> DeviceBuffer:
        """Allocate one logical buffer (zero-filled) on every device.

        The per-device allocators march in lock-step, so the same base
        address comes back from each; a mismatch means the pool was tampered
        with behind the queue's back.
        """
        addresses = [device.allocate_buffer(num_words) for device in self.devices]
        if len(set(addresses)) != 1:
            raise KernelError(
                f"device allocators diverged: buffer addresses {addresses}"
            )
        buffer = DeviceBuffer(len(self._buffers), addresses[0], num_words)
        # A fresh simulator's memory is zero-filled, so every device copy of
        # a zero-filled logical buffer is already valid.
        buffer.valid_on = set(range(len(self.devices)))
        self._buffers.append(buffer)
        return buffer

    def create_buffer(
        self, values: Sequence[int], device: Optional[int] = None
    ) -> DeviceBuffer:
        """Allocate a logical buffer and set its host image to ``values``.

        ``device`` optionally prefetches the contents onto that device (see
        :meth:`enqueue_write`).  Creation is a pure enqueue: it never drains
        launches already waiting in the queue.
        """
        if not isinstance(values, np.ndarray):
            # Materialize generators/ranges once; ndarrays pass through
            # without the (slow, for large arrays) list round-trip.
            values = np.asarray(list(values), dtype=np.int64)
        buffer = self.allocate_buffer(int(values.size))
        self.enqueue_write(buffer, values, device=device)
        return buffer

    def enqueue_write(
        self,
        buffer: DeviceBuffer,
        values: Sequence[int],
        device: Optional[int] = None,
    ) -> Event:
        """Schedule a replacement of the buffer's logical contents.

        A first-class command in the event graph: it waits for the commands
        that defined or read the old contents (so pending launches still
        observe what they were enqueued against) but no longer flushes the
        queue.  With ``device=`` the new contents are also *prefetched*
        host→device on that device's DMA timeline as part of the command, so
        a launch hinted to the same device finds the buffer resident.
        Returns the write's completion :class:`Event`.
        """
        self._check_buffer(buffer)
        data = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
        if data.size != buffer.num_words:
            raise KernelError(
                f"buffer {buffer.handle} holds {buffer.num_words} words, "
                f"got {data.size} values"
            )
        self._check_device_hint(device)
        waits = self._hazard_waits(
            [buffer.last_writer] + list(buffer.readers)
        )
        event = Event(
            sequence=len(self._events),
            label=f"write:{buffer.handle}#{len(self._events)}",
            kernel_name="enqueue_write",
            kind="write",
            _queue=self,
        )
        self._events.append(event)
        self._pending.append(
            _Command(event=event, waits=waits, buffer=buffer, data=data, device=device)
        )
        self._last_event = event
        buffer.last_writer = event
        buffer.readers = []
        return event

    def enqueue_read(self, buffer: DeviceBuffer) -> np.ndarray:
        """Read the buffer's current logical contents back to the host.

        Scheduled as a first-class command that waits on the buffer's last
        writer; because the host needs the bytes *now*, the queue then
        flushes.  If a device holds the only up-to-date copy, the
        device→host read-back is charged on that device's DMA timeline and
        recorded on the read event's ``readback_cycles``.

        If the buffer's contents were produced by a command that failed
        permanently, the read fails fast with a
        :class:`~repro.errors.DeviceFailureError` chaining the original
        failure — before scheduling anything.
        """
        self._check_buffer(buffer)
        writer = buffer.last_writer
        if writer is not None and writer.failed:
            raise self._dependent_failure(
                f"read of buffer {buffer.handle}", writer
            )
        waits = self._hazard_waits([buffer.last_writer])
        event = Event(
            sequence=len(self._events),
            label=f"read:{buffer.handle}#{len(self._events)}",
            kernel_name="enqueue_read",
            kind="read",
            _queue=self,
        )
        self._events.append(event)
        self._pending.append(_Command(event=event, waits=waits, buffer=buffer))
        self._last_event = event
        buffer.readers.append(event)
        self.flush()
        if event.failed:
            raise event.error
        return buffer.host.astype(np.uint32)

    # ------------------------------------------------------------------ #
    # Enqueue / execute
    # ------------------------------------------------------------------ #
    def enqueue(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Dict[str, ArgValue],
        label: Optional[str] = None,
        wait_for: Sequence[Event] = (),
        writes: Optional[Sequence[str]] = None,
        device: Optional[int] = None,
    ) -> Event:
        """Append one launch; returns its completion :class:`Event`.

        ``args`` maps buffer-kind kernel arguments to :class:`DeviceBuffer`
        handles and scalar arguments to integers; the *full* kernel signature
        is validated here, so a missing or unknown argument fails at enqueue
        time instead of deep inside the simulator.  ``writes`` names the
        buffer arguments the kernel writes (defaults to *all* buffer
        arguments — conservative, but never wrong); read-only inputs listed
        out of it stay resident on every device that has them.  ``wait_for``
        lists events this launch must run after (the buffer's pending
        ``enqueue_write`` events are added automatically); an in-order queue
        adds an implicit dependency on the previously enqueued command.
        ``device`` is a scheduling affinity hint: the launch is placed on
        that device instead of the earliest-projected-start one.
        """
        known_names = {arg.name for arg in kernel.args}
        unknown = sorted(set(args) - known_names)
        if unknown:
            raise KernelError(
                f"kernel {kernel.name!r} has no argument(s) {unknown}"
            )
        missing = [arg.name for arg in kernel.args if arg.name not in args]
        if missing:
            raise KernelError(
                f"kernel {kernel.name!r} is missing argument(s) {missing} "
                f"at enqueue time"
            )
        buffer_names = [arg.name for arg in kernel.args if arg.kind == "buffer"]
        resolved: Dict[str, ArgValue] = {}
        for arg in kernel.args:
            value = args[arg.name]
            if arg.kind == "buffer":
                if not isinstance(value, DeviceBuffer):
                    raise KernelError(
                        f"buffer argument {arg.name!r} of kernel {kernel.name!r} "
                        f"needs a DeviceBuffer handle on a multi-device queue, "
                        f"got {value!r}"
                    )
                self._check_buffer(value)
                resolved[arg.name] = value
            else:
                if isinstance(value, DeviceBuffer):
                    raise KernelError(
                        f"argument {arg.name!r} of kernel {kernel.name!r} is a "
                        f"scalar, got a DeviceBuffer"
                    )
                resolved[arg.name] = int(value)
        if writes is None:
            write_names = tuple(buffer_names)
        else:
            write_names = tuple(writes)
            for name in write_names:
                if name not in buffer_names:
                    raise KernelError(
                        f"writes lists {name!r}, which is not a buffer argument "
                        f"of kernel {kernel.name!r}"
                    )
        self._check_device_hint(device)
        waits = []
        for event in wait_for:
            if (
                not isinstance(event, Event)
                or event.sequence >= len(self._events)
                or self._events[event.sequence] is not event
            ):
                raise KernelError("wait_for events must come from this queue")
            waits.append(event)
        # Pending transfer commands replaced the old flush barrier: a launch
        # must observe the contents its buffers were last (re)defined with.
        for name in buffer_names:
            writer = resolved[name].last_writer
            if writer is not None:
                waits.append(writer)

        event = Event(
            sequence=len(self._events),
            label=label or f"{kernel.name}#{len(self._events)}",
            kernel_name=kernel.name,
            _queue=self,
        )
        self._events.append(event)
        self._pending.append(
            _Command(
                event=event,
                waits=self._hazard_waits(waits),
                kernel=kernel,
                ndrange=ndrange,
                args=resolved,
                writes=write_names,
                device=device,
            )
        )
        self._last_event = event
        for name in buffer_names:
            buffer = resolved[name]
            if name in write_names:
                buffer.last_writer = event
                buffer.readers = []
            else:
                buffer.readers.append(event)
        return event

    @property
    def pending(self) -> int:
        """Number of commands (launches and transfers) waiting for :meth:`flush`."""
        return len(self._pending)

    def flush(self) -> List[LaunchResult]:
        """Schedule and execute every pending command; returns launch results.

        Commands are processed in enqueue order (a valid topological order of
        the event graph, since an event can only be waited on after it was
        created) — or, with ``lpt=True``, longest-projected-time first among
        the ready commands; each launch lands on its hinted device or the
        one with the earliest projected start.  On an empty queue this is a
        cheap no-op.

        Under fault injection a command may fail permanently (retry budget
        exhausted, or every device dead); its dependents fail fast, every
        *independent* command still executes, and the first root
        :class:`~repro.errors.DeviceFailureError` of this flush is raised
        once the whole schedule has been driven — the queue state stays
        consistent, so callers that catch it can keep enqueueing.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        executed: List[LaunchResult] = []
        failures_before = len(self._failures)
        for command in self._flush_order(pending):
            if command.kind == "launch":
                result = self._execute(command)
                if result is not None:
                    executed.append(result)
            elif command.kind == "write":
                self._execute_write(command)
            else:
                self._execute_read(command)
        self._results.extend(executed)
        new_failures = self._failures[failures_before:]
        if new_failures:
            raise new_failures[0]
        return executed

    def finish(self) -> List[LaunchResult]:
        """Flush and return the results of *all* launches this queue has run.

        On an empty queue (nothing pending, nothing run) this is a cheap
        no-op that returns an empty list.
        """
        self.flush()
        return list(self._results)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _check_buffer(self, buffer: DeviceBuffer) -> None:
        if (
            not isinstance(buffer, DeviceBuffer)
            or buffer.handle >= len(self._buffers)
            or self._buffers[buffer.handle] is not buffer
        ):
            raise KernelError("buffer does not belong to this queue")

    def _check_device_hint(self, device: Optional[int]) -> None:
        """Enqueue-time validation of a ``device=`` hint (range only).

        Liveness is deliberately *not* checked here: a device may die
        between enqueue and flush, so hints honor-then-degrade at execution
        time through :meth:`_live_hint` — the one shared rule for launch
        affinity and prefetch-write targets alike.
        """
        if device is not None and not 0 <= device < len(self.devices):
            raise KernelError(
                f"device hint {device} out of range for a "
                f"{len(self.devices)}-device queue"
            )

    def _live_hint(self, device: Optional[int]) -> Optional[int]:
        """The hint if it still points at a live device, else ``None``.

        Used at execution time by launch dispatch *and* the prefetch path of
        :meth:`_execute_write`: a hint at a retired device degrades to
        scheduler placement (launches) or to a host-only write (prefetches)
        instead of erroring or re-populating a dead device's residency.
        """
        self._check_device_hint(device)
        if device is None:
            return None
        if self._injector is not None and self._injector.is_dead(device):
            return None
        return device

    def _hazard_waits(self, candidates: Sequence[Optional[Event]]) -> Tuple[Event, ...]:
        """Dependency list: in-order chain + deduplicated hazard edges."""
        waits: List[Event] = [e for e in candidates if e is not None]
        if self.in_order and self._last_event is not None:
            waits.append(self._last_event)
        seen: set = set()
        unique: List[Event] = []
        for event in waits:
            if event.sequence not in seen:
                seen.add(event.sequence)
                unique.append(event)
        return tuple(unique)

    def _flush_order(self, pending: List[_Command]) -> List[_Command]:
        """Execution order for one flush, per the active ``scheduler``.

        ``fifo`` keeps enqueue order (a valid topological order of the event
        graph, since an event can only be waited on after it was created);
        ``lpt`` drains longest-projected-time first, ``heft`` by descending
        HEFT upward rank, and ``stealing`` lets the idlest device claim the
        nearest ready command (see the dedicated methods).  Every order is
        deterministic and respects every event edge; as with any
        out-of-order execution, two launches touching one buffer without an
        event between them have no defined order.  A positive
        ``prefetch_depth`` then retargets placement-determined input writes
        as prefetches (double buffering on the DMA timelines).
        """
        if self.scheduler == "lpt":
            order = self._lpt_order(pending)
        elif self.scheduler == "heft":
            order = self._heft_order(pending)
        elif self.scheduler == "stealing":
            order = self._stealing_order(pending)
        else:
            order = pending
        if self.prefetch_depth > 0:
            self._apply_prefetch_depth(order)
        return order

    def _ready_order(
        self,
        pending: List[_Command],
        pick: Callable[[List[_Command]], _Command],
    ) -> List[_Command]:
        """Drain ``pending`` respecting event edges; ``pick`` breaks the tie.

        Repeatedly collects the commands whose dependencies are met.  Ready
        transfer commands always go first (lowest sequence) — they are host
        bookkeeping and DMA setup that should never wait behind compute;
        among ready launches, ``pick`` chooses (LPT weight, HEFT rank, or a
        stealing claim).
        """
        remaining = list(pending)
        placed: set = set()
        order: List[_Command] = []
        while remaining:
            ready = [
                command
                for command in remaining
                if all(w.settled or w.sequence in placed for w in command.waits)
            ]
            if not ready:  # pragma: no cover - the event graph is acyclic
                raise KernelError("event graph deadlock: no ready command")
            transfers = [command for command in ready if command.kind != "launch"]
            if transfers:
                choice = min(transfers, key=lambda c: c.event.sequence)
            else:
                choice = pick(ready)
            remaining.remove(choice)
            placed.add(choice.event.sequence)
            order.append(choice)
        return order

    def _lpt_order(self, pending: List[_Command]) -> List[_Command]:
        """LPT: largest NDRange first among the ready launches.

        The flat work-item total (``total_items``, rank-independent) is the
        deterministic proxy for projected compute time; ties break toward the
        earlier sequence.
        """
        return self._ready_order(
            pending,
            lambda ready: max(
                ready, key=lambda c: (c.ndrange.total_items, -c.event.sequence)
            ),
        )

    def _command_inputs(self, command: _Command) -> List[DeviceBuffer]:
        """Buffers the command consumes (all buffer args of a launch)."""
        if command.kind == "launch":
            return [buffer for _, buffer in self._command_buffers(command)]
        if command.kind == "read":
            return [command.buffer]
        return []

    def _command_outputs(self, command: _Command) -> List[DeviceBuffer]:
        """Buffers the command (re)defines."""
        if command.kind == "launch":
            return [
                command.args[name]
                for name in command.writes
                if isinstance(command.args.get(name), DeviceBuffer)
            ]
        if command.kind == "write":
            return [command.buffer]
        return []

    def _compute_estimate(self, command: _Command) -> float:
        """Deterministic projected compute cycles of one command."""
        if command.kind == "launch":
            return command.ndrange.total_items * SCHEDULE_CYCLES_PER_ITEM
        return 0.0

    def _heft_order(self, pending: List[_Command]) -> List[_Command]:
        """HEFT: descending upward rank over the pending event graph.

        The upward rank of a command is its projected compute time plus the
        most expensive downstream path — per-edge communication (the bytes
        the successor consumes, priced at the mean per-link cost of the
        attached topology) plus the successor's own rank.  Draining by
        descending rank runs the critical chain eagerly instead of letting
        big-but-leafy launches monopolize the pool the way pure LPT does.
        Ties break toward the earlier sequence, so the order is fully
        deterministic.
        """
        by_sequence = {command.event.sequence: command for command in pending}
        successors: Dict[int, List[_Command]] = {
            sequence: [] for sequence in by_sequence
        }
        for command in pending:
            for wait in command.waits:
                if wait.sequence in by_sequence:
                    successors[wait.sequence].append(command)
        rank: Dict[int, float] = {}
        # Enqueue order is topological, so reversed sequence order visits
        # every successor before its producers.
        for command in sorted(pending, key=lambda c: -c.event.sequence):
            outputs = {id(buffer) for buffer in self._command_outputs(command)}
            downstream = 0.0
            for successor in successors[command.event.sequence]:
                comm_bytes = sum(
                    buffer.num_bytes
                    for buffer in self._command_inputs(successor)
                    if id(buffer) in outputs
                )
                downstream = max(
                    downstream,
                    self._comm_estimate(comm_bytes)
                    + rank[successor.event.sequence],
                )
            rank[command.event.sequence] = (
                self._compute_estimate(command) + downstream
            )
        return self._ready_order(
            pending,
            lambda ready: max(
                ready, key=lambda c: (rank[c.event.sequence], -c.event.sequence)
            ),
        )

    def _stealing_order(self, pending: List[_Command]) -> List[_Command]:
        """Deterministic work stealing: idle devices claim the nearest work.

        A greedy list schedule over virtual per-device clocks: each round the
        idlest *alive* device (lowest virtual clock, then lowest index) steals
        the ready launch it could *start* soonest — a launch's virtual start
        is its dependencies' virtual finish plus the cost of bringing its
        inputs over: resident inputs are free, dirty inputs pay the per-pair
        link cost from their planned location, host-valid inputs pay the host
        bridge.  Equal starts prefer the larger launch; exact ties break with
        the queue's seeded RNG.  Readiness-aware claims keep the steal
        breadth-first — a chain's next hop looks cheap but cannot start
        before its producer, so independent work wins the idle gap.  The
        claim advances the thief's virtual clock, records the launch's
        virtual finish, and updates the planned buffer locations, so data
        gravity steers later claims; placement itself stays with the
        dispatcher's projected-start rule (which sees the real DMA
        timelines), keeping the steal a flush *order*.
        Explicit user hints are honored: a pre-hinted launch contributes to
        its own device's clock, not the thief's.  Dead devices never steal
        (and a hint at a device that dies before execution degrades through
        the normal hint path), so retired devices leave the fabric
        consistently.
        """
        alive = set(self.alive_devices)
        thieves = sorted(alive) if alive else list(range(len(self.devices)))
        clock = {device: self._compute_available[device] for device in thieves}
        # Virtual finish time per claimed event sequence (dependency model).
        finish: Dict[int, float] = {}
        # Planned residency per buffer handle: (host_valid, owner devices).
        location: Dict[int, Tuple[bool, frozenset]] = {}

        def spot(buffer: DeviceBuffer) -> Tuple[bool, frozenset]:
            state = location.get(buffer.handle)
            if state is None:
                state = (buffer.host_valid, frozenset(buffer.valid_on & alive))
                location[buffer.handle] = state
            return state

        def claim_cost(command: _Command, thief: int) -> float:
            cost = 0.0
            for buffer in self._command_inputs(command):
                host_valid, owners = spot(buffer)
                if thief in owners:
                    continue
                if not host_valid and owners:
                    source = min(
                        owners,
                        key=lambda s: (
                            self._p2p_link_cycles(s, thief, buffer.num_bytes),
                            s,
                        ),
                    )
                    cost += self._p2p_link_cycles(source, thief, buffer.num_bytes)
                else:
                    cost += self.transfer.cycles(buffer.num_bytes)
            return cost

        def settle(command: _Command, device: Optional[int]) -> None:
            if command.kind == "write":
                owners = frozenset() if device is None else frozenset({device})
                location[command.buffer.handle] = (True, owners)
                return
            if command.kind == "read":
                host_valid, owners = spot(command.buffer)
                location[command.buffer.handle] = (True, owners)
                return
            for buffer in self._command_inputs(command):
                host_valid, owners = spot(buffer)
                if device is not None:
                    location[buffer.handle] = (host_valid, owners | {device})
            for buffer in self._command_outputs(command):
                owners = frozenset() if device is None else frozenset({device})
                location[buffer.handle] = (False, owners)

        def ready_at(command: _Command) -> float:
            return max(
                (finish.get(w.sequence, 0.0) for w in command.waits), default=0.0
            )

        def pick(ready: List[_Command]) -> _Command:
            thief = min(thieves, key=lambda device: (clock[device], device))
            scored = []
            for command in ready:
                target = command.device if command.device in alive else thief
                start = max(clock[target], ready_at(command)) + claim_cost(
                    command, target
                )
                scored.append(
                    (start, -command.ndrange.total_items, target, command)
                )
            best = min((start, size) for start, size, _, _ in scored)
            ties = [entry for entry in scored if (entry[0], entry[1]) == best]
            if len(ties) == 1:
                start, _, target, choice = ties[0]
            else:
                start, _, target, choice = ties[self._steal_rng.randrange(len(ties))]
            clock[target] = start + self._compute_estimate(choice)
            finish[choice.event.sequence] = clock[target]
            settle(choice, target)
            return choice

        order: List[_Command] = []
        remaining = list(pending)
        placed: set = set()
        while remaining:
            ready = [
                command
                for command in remaining
                if all(w.settled or w.sequence in placed for w in command.waits)
            ]
            if not ready:  # pragma: no cover - the event graph is acyclic
                raise KernelError("event graph deadlock: no ready command")
            transfers = [command for command in ready if command.kind != "launch"]
            if transfers:
                choice = min(transfers, key=lambda c: c.event.sequence)
                settle(choice, choice.device)
            else:
                choice = pick(ready)
            remaining.remove(choice)
            placed.add(choice.event.sequence)
            order.append(choice)
        return order

    def _apply_prefetch_depth(self, order: List[_Command]) -> None:
        """Retarget input writes as prefetches to their consumer's device.

        Double buffering: once the flush order and launch placements are
        known, a write whose consuming launch (within ``prefetch_depth``
        commands downstream) has a pinned device becomes a prefetch to that
        device, so the copy streams on the DMA engine while earlier compute
        runs.  Writes the user already hinted are left alone, and a consumer
        without a pinned placement gets no prefetch — exactly the behaviour
        of ``prefetch_depth=0``.
        """
        for index, command in enumerate(order):
            if command.kind != "write" or command.device is not None:
                continue
            for later in order[index + 1 : index + 1 + self.prefetch_depth]:
                if later.kind != "launch" or later.device is None:
                    continue
                if command.event in later.waits and any(
                    buffer is command.buffer
                    for buffer in self._command_inputs(later)
                ):
                    command.device = later.device
                    break

    def _command_buffers(self, command: _Command) -> List[Tuple[str, DeviceBuffer]]:
        """The command's buffer arguments in kernel-signature order."""
        return [
            (arg.name, command.args[arg.name])
            for arg in command.kernel.args
            if arg.kind == "buffer" and isinstance(command.args.get(arg.name), DeviceBuffer)
        ]

    def _projected_start(self, command: _Command, device: int, ready: float) -> float:
        """Earliest compute start of ``command`` on ``device`` (no mutation).

        Mirrors :meth:`_materialize` closely enough to pick a device; it is a
        deterministic heuristic, not a timing commitment.
        """
        arrival = ready
        dma = self._dma_available[device]
        for _, buffer in self._command_buffers(command):
            if device in buffer.valid_on:
                arrival = max(
                    arrival, buffer.ready_cycle, buffer.device_ready.get(device, 0.0)
                )
                continue
            if not buffer.host_valid:
                if self._p2p_direct:
                    source = self._nearest_source(buffer, device)
                    dma = max(
                        dma, self._dma_available[source], buffer.ready_cycle
                    ) + self._p2p_link_cycles(source, device, buffer.num_bytes)
                    arrival = max(arrival, dma)
                    continue
                source = min(buffer.valid_on)
                host_ready = max(
                    self._dma_available[source], buffer.ready_cycle
                ) + self.transfer.cycles(buffer.num_bytes)
            else:
                host_ready = buffer.ready_cycle
            dma = max(dma, host_ready) + self.transfer.cycles(buffer.num_bytes)
            arrival = max(arrival, dma)
        return max(self._compute_available[device], arrival)

    def _read_back(self, buffer: DeviceBuffer) -> Tuple[float, float]:
        """Refresh the host image from a valid device, charging the copy.

        Returns ``(host_ready_cycle, cycles_charged)``.  The copy runs on the
        source device's DMA engine, overlapping that device's compute; it can
        start no earlier than the producing launch finished
        (``buffer.ready_cycle``).
        """
        if buffer.host_valid:
            # The host image is authoritative whenever it is valid: there is
            # nothing to read back (and nothing to count —
            # ``transfers_skipped`` measures launch-side residency hits only).
            return buffer.ready_cycle, 0.0
        source = min(buffer.valid_on)
        cycles = self.transfer.cycles(buffer.num_bytes)
        buffer.host = (
            self.devices[source]
            .read_buffer(buffer.address, buffer.num_words)
            .astype(np.int64)
        )
        start = max(self._dma_available[source], buffer.ready_cycle)
        cycles = self._faulted_transfer_cycles(
            source, cycles, start, f"readback:{buffer.handle}"
        )
        end = start + cycles
        self._dma_available[source] = end
        self.stats.record_transfer(source, buffer.num_bytes, cycles, to_device=False)
        self.stats.makespan = max(self.stats.makespan, end)
        buffer.host_valid = True
        buffer.ready_cycle = end
        return end, cycles

    def _copy_host_to_device(
        self, buffer: DeviceBuffer, device: int, host_ready: float
    ) -> Tuple[float, float]:
        """Write the host image to ``device``, charging its DMA engine.

        Returns ``(arrival_cycle, cycles_charged)``; shared by the lazy
        launch-side path and the prefetch path of :meth:`_execute_write` so
        host→device accounting stays in one place.
        """
        cycles = self.transfer.cycles(buffer.num_bytes)
        self.devices[device].write_buffer(buffer.address, buffer.host)
        start = max(self._dma_available[device], host_ready)
        cycles = self._faulted_transfer_cycles(
            device, cycles, start, f"h2d:{buffer.handle}"
        )
        end = start + cycles
        self._dma_available[device] = end
        self.stats.record_transfer(device, buffer.num_bytes, cycles, to_device=True)
        self.stats.makespan = max(self.stats.makespan, end)
        buffer.valid_on.add(device)
        return end, cycles

    def _materialize(
        self, command: _Command, device: int, ready: float
    ) -> Tuple[float, float, float]:
        """Make every buffer argument resident on ``device``.

        Returns ``(compute_start, transfer_cycles, readback_cycles)`` — the
        transfer cycles cover the copies charged on *this* device's DMA
        engine (host→device writes and inbound P2P hops), the read-back
        cycles the device→host copies this launch forced on *source*
        devices' DMA engines.  With P2P disabled, a buffer dirty on another
        device is first read back there, then written host→device; with P2P
        enabled it moves directly device→device, occupying both DMA engines
        and leaving the host image stale.  The launch computes once its
        engine is free, its event dependencies are met, and every input has
        arrived.
        """
        arrival = ready
        charged = 0.0
        readback = 0.0
        for _, buffer in self._command_buffers(command):
            if device in buffer.valid_on:
                self.stats.transfers_skipped += 1
                arrival = max(
                    arrival, buffer.ready_cycle, buffer.device_ready.get(device, 0.0)
                )
                continue
            if not buffer.host_valid:
                if self._p2p_direct:
                    source = self._nearest_source(buffer, device)
                    cycles = self._p2p_link_cycles(source, device, buffer.num_bytes)
                    contents = (
                        self.devices[source]
                        .read_buffer(buffer.address, buffer.num_words)
                        .astype(np.int64)
                    )
                    self.devices[device].write_buffer(buffer.address, contents)
                    start = max(
                        self._dma_available[source],
                        self._dma_available[device],
                        buffer.ready_cycle,
                    )
                    cycles = self._faulted_transfer_cycles(
                        device, cycles, start, f"p2p:{buffer.handle}"
                    )
                    end = start + cycles
                    self._dma_available[source] = end
                    self._dma_available[device] = end
                    charged += cycles
                    self.stats.record_p2p(device, buffer.num_bytes, cycles)
                    self.stats.makespan = max(self.stats.makespan, end)
                    buffer.valid_on.add(device)
                    buffer.device_ready[device] = end
                    arrival = max(arrival, end)
                    continue
                host_ready, cycles = self._read_back(buffer)
                readback += cycles
            else:
                host_ready = buffer.ready_cycle
            end, cycles = self._copy_host_to_device(buffer, device, host_ready)
            charged += cycles
            arrival = max(arrival, end)
        return max(self._compute_available[device], arrival), charged, readback

    def _prefetched_inputs(self, command: _Command, device: int) -> int:
        """How many of the command's buffers were prefetched/P2P-copied here.

        Used as a tie-break on device selection so a prefetched copy is not
        wasted when projected starts tie.  Only the new transfer paths
        populate ``device_ready``, so default (PR 4) schedules see every
        count as zero and are unaffected.
        """
        return sum(
            1
            for _, buffer in self._command_buffers(command)
            if device in buffer.device_ready
        )

    # ------------------------------------------------------------------ #
    # Fault handling
    # ------------------------------------------------------------------ #
    def _dependent_failure(self, what: str, dependency: Event) -> DeviceFailureError:
        """A structured fail-fast error for ``what`` depending on a failure.

        The returned error chains the dependency's failure as ``__cause__``
        (walking to the root cause the original ``DeviceFailureError``)
        so callers always see the original fault, never a generic error.
        """
        root = dependency.error
        while root is not None and isinstance(root.__cause__, DeviceFailureError):
            root = root.__cause__
        error = DeviceFailureError(
            f"{what} depends on permanently failed command "
            f"{dependency.label!r}: {root}",
            event_label=dependency.label,
            device=root.device if root is not None else None,
            attempts=root.attempts if root is not None else 0,
            graph_slice=root.graph_slice if root is not None else (dependency.label,),
        )
        error.__cause__ = root
        return error

    def _fail_root(
        self, command: _Command, device: Optional[int], attempts: int, reason: str
    ) -> None:
        """Mark ``command`` permanently failed (the root of a failed slice)."""
        event = command.event
        error = DeviceFailureError(
            f"command {event.label!r} failed permanently: {reason}",
            event_label=event.label,
            device=device,
            attempts=attempts,
            graph_slice=(event.label,),
        )
        event.failed = True
        event.attempts = attempts
        event.error = error
        self._failures.append(error)
        self.stats.commands_failed += 1

    def _fail_dependent(self, command: _Command, dependency: Event) -> None:
        """Fail ``command`` fast because one of its dependencies failed."""
        event = command.event
        error = self._dependent_failure(f"command {event.label!r}", dependency)
        event.failed = True
        event.error = error
        self.stats.commands_failed += 1
        # Grow the root's recorded event-graph slice with this casualty.
        root = error.__cause__
        if isinstance(root, DeviceFailureError):
            root.graph_slice = root.graph_slice + (event.label,)
            error.graph_slice = root.graph_slice

    def _failed_dependency(self, command: _Command) -> Optional[Event]:
        return next((wait for wait in command.waits if wait.failed), None)

    def _retire_device(self, device: int, casualty: Event) -> None:
        """Permanently retire a device, evacuating its sole-copy buffers.

        The failure model is fail-stop with host-readable memory: the
        compute side is gone for good, but the device's memory stays
        reachable for one salvage pass (as over a PCIe BAR on a real
        accelerator whose SMs hung).  Every buffer whose *only* valid copy
        lives on the dying device is read back to the host through the
        normal priced path; then the device disappears from every residency
        set and from placement forever.

        ``casualty`` is the event whose faulted dispatch killed the device:
        the salvage read-backs are charged to its ``readback_cycles`` so the
        per-event totals keep reconciling with the per-device transfer stats
        under a fired plan (evacuations used to be charged to no event at
        all, breaking ``sum(events) == sum(device_transfer_cycles)``).
        """
        for buffer in self._buffers:
            if not buffer.host_valid and buffer.valid_on == {device}:
                _, cycles = self._read_back(buffer)
                casualty.readback_cycles += cycles
                self.stats.evacuated_buffers += 1
        for buffer in self._buffers:
            buffer.valid_on.discard(device)
            buffer.device_ready.pop(device, None)
        self._injector.mark_dead(device)
        self.stats.devices_lost += 1

    def _faulted_transfer_cycles(
        self, device: int, base_cycles: float, start_hint: float, label: str
    ) -> float:
        """Apply any injected transfer fault to one DMA charge.

        A stall adds the fault's ``stall_cycles`` to the copy; a detected
        corruption re-sends the copy once (both sends charged, counted as a
        transfer retry).  The returned cycles flow into the same per-event
        and per-device accounting as a clean copy, so the reconciliation
        invariant holds under faults too.  Without an armed injector this
        returns ``base_cycles`` untouched — the fault-free path charges
        bit-identical costs.
        """
        if self._injector is None or base_cycles <= 0.0:
            return base_cycles
        fault = self._injector.transfer_fault(device, start_hint, label)
        if fault is None:
            return base_cycles
        self.stats.transfer_faults += 1
        if fault.kind == TRANSFER_STALL:
            self.stats.fault_cycles += fault.stall_cycles
            return base_cycles + fault.stall_cycles
        # Detected corruption: CRC mismatch at the receiver, copy re-sent.
        self.stats.transfer_retries += 1
        self.stats.fault_cycles += base_cycles
        return base_cycles * 2.0

    def _dispatch(self, command: _Command, ready: float) -> Optional[Tuple[int, float]]:
        """Pick a device and survive injected launch faults; None on failure.

        Without faults this is exactly the PR 5 placement rule: the hinted
        device, or the earliest-projected-start one (prefetch count, then
        lower index, break ties).  With faults, dead devices are excluded, a
        hint pointing at a dead device degrades gracefully to scheduler
        placement, and each faulted dispatch attempt charges the fault's
        detection time on the failing device, backs off exponentially in
        simulated time, and re-enqueues on the survivors — up to the plan's
        retry budget, after which the command fails permanently.

        Returns ``(device, ready_cycle)`` for the successful dispatch.
        """
        injector = self._injector
        attempts = 0
        while True:
            if injector is None:
                candidates: Sequence[int] = range(len(self.devices))
            else:
                candidates = injector.alive_devices()
                if not candidates:
                    self._fail_root(
                        command,
                        device=None,
                        attempts=attempts,
                        reason="every device of the queue has failed",
                    )
                    return None
            hint = self._live_hint(command.device)
            if hint is not None:
                device = hint
            else:
                device = min(
                    candidates,
                    key=lambda index: (
                        self._projected_start(command, index, ready),
                        -self._prefetched_inputs(command, index),
                        index,
                    ),
                )
            if injector is None:
                command.event.attempts = attempts + 1
                return device, ready
            fault = injector.launch_fault(
                device, self._projected_start(command, device, ready), command.event.label
            )
            if fault is None:
                command.event.attempts = attempts + 1
                return device, ready
            # The device dropped the command: charge the watchdog detection
            # on its compute timeline, then retry after a simulated backoff.
            attempts += 1
            self.stats.launch_faults += 1
            detect_end = max(self._compute_available[device], ready) + fault.detect_cycles
            self._compute_available[device] = detect_end
            self.stats.fault_cycles += fault.detect_cycles
            self.stats.makespan = max(self.stats.makespan, detect_end)
            if fault.kind == DEVICE_FAIL:
                self._retire_device(device, command.event)
            if attempts > self.faults.max_retries:
                self._fail_root(
                    command,
                    device=device,
                    attempts=attempts,
                    reason=(
                        f"retry budget exhausted after {attempts} faulted "
                        f"dispatch attempts (max_retries={self.faults.max_retries})"
                    ),
                )
                return None
            self.stats.launch_retries += 1
            backoff = self.faults.retry_delay(attempts)
            self.stats.fault_cycles += backoff
            ready = detect_end + backoff

    def _execute(self, command: _Command) -> Optional[LaunchResult]:
        failed_dependency = self._failed_dependency(command)
        if failed_dependency is not None:
            self._fail_dependent(command, failed_dependency)
            return None
        ready = max((event.end_cycle for event in command.waits), default=0.0)
        dispatched = self._dispatch(command, ready)
        if dispatched is None:
            return None
        device, ready = dispatched
        start, transfer_cycles, readback_cycles = self._materialize(
            command, device, ready
        )

        launch_args = {
            name: value.address if isinstance(value, DeviceBuffer) else value
            for name, value in command.args.items()
        }
        result = self.devices[device].launch(command.kernel, command.ndrange, launch_args)
        end = start + result.cycles
        self._compute_available[device] = end

        for name in command.writes:
            buffer = command.args[name]
            buffer.host_valid = False
            buffer.valid_on = {device}
            buffer.device_ready = {}
            buffer.ready_cycle = end

        event = command.event
        event.device = device
        event.start_cycle = start
        event.end_cycle = end
        event.compute_cycles = result.cycles
        # Accumulate (never assign): a faulted dispatch may already have
        # charged evacuation read-backs to this event via _retire_device.
        event.transfer_cycles += transfer_cycles
        event.readback_cycles += readback_cycles
        event.critical_path_cycles = (
            max((dep.critical_path_cycles for dep in command.waits), default=0.0)
            + result.cycles
        )
        event.result = result
        event.finished = True

        self.stats.record(result, device=device)
        self.stats.makespan = max(self.stats.makespan, end)
        self.stats.critical_path_cycles = max(
            self.stats.critical_path_cycles, event.critical_path_cycles
        )
        self._schedule.append(event)
        return result

    def _execute_write(self, command: _Command) -> None:
        """Replace the host image; optionally prefetch to the hinted device.

        A write proceeds even when a dependency failed: its data comes from
        the host, not from the failed producer, so rewriting a buffer is
        exactly how a caller re-establishes known contents after a
        :class:`~repro.errors.DeviceFailureError`.
        """
        buffer = command.buffer
        event = command.event
        ready = max(
            (dep.end_cycle for dep in command.waits if not dep.failed), default=0.0
        )
        buffer.host = command.data
        buffer.valid_on = set()
        buffer.host_valid = True
        buffer.device_ready = {}
        buffer.ready_cycle = 0.0  # host data is available immediately
        event.start_cycle = ready
        event.end_cycle = ready
        device = self._live_hint(command.device)
        if device is not None:
            end, cycles = self._copy_host_to_device(buffer, device, ready)
            buffer.device_ready = {device: end}
            event.device = device
            event.start_cycle = end - cycles
            event.end_cycle = end
            event.transfer_cycles = cycles
        event.critical_path_cycles = max(
            (dep.critical_path_cycles for dep in command.waits), default=0.0
        )
        event.finished = True

    def _execute_read(self, command: _Command) -> None:
        """Refresh the host image as a scheduled command with its own event.

        A read *depends* on the contents its producer defined, so a failed
        dependency cascades: the read fails fast with the root failure
        chained, rather than surfacing stale host data as if it were fresh.
        """
        failed_dependency = self._failed_dependency(command)
        if failed_dependency is not None:
            self._fail_dependent(command, failed_dependency)
            return
        buffer = command.buffer
        event = command.event
        ready = max((dep.end_cycle for dep in command.waits), default=0.0)
        host_ready, cycles = self._read_back(buffer)
        if cycles:
            event.device = min(buffer.valid_on) if buffer.valid_on else None
            event.start_cycle = host_ready - cycles
        else:
            event.start_cycle = ready
        event.end_cycle = max(ready, host_ready)
        event.readback_cycles = cycles
        event.critical_path_cycles = max(
            (dep.critical_path_cycles for dep in command.waits), default=0.0
        )
        event.finished = True


class OutOfOrderQueue(MultiDeviceQueue):
    """Out-of-order multi-device queue with OpenCL-style event dependencies.

    Launches are ordered only by their ``wait_for`` events (plus the
    automatic edges to a buffer's pending ``enqueue_write``); independent
    launches overlap across the device pool.  As with a real out-of-order
    queue, two launches touching the same buffer without an event between
    them have no defined order — declare the dependency (or rely on the
    in-order :class:`MultiDeviceQueue`).

    ``scheduler`` picks the flush order (see
    :meth:`MultiDeviceQueue._flush_order`):

    * ``"fifo"`` (default) — enqueue order.
    * ``"lpt"`` — longest-projected-time first: big launches grab devices
      before small ones, which tightens makespans for mixed independent
      batches at 4+ devices.  ``lpt=True`` is the backward-compatible spelling.
    * ``"heft"`` — HEFT upward-rank order over the event graph with per-link
      communication costs: the critical chain runs eagerly, which beats LPT
      on layered DAGs (a deep chain next to wide independent work) at 8+
      devices.
    * ``"stealing"`` — deterministic work stealing: the idlest alive device
      claims the topology-nearest ready launch (seeded tie-breaks via
      ``steal_seed``), pinning its placement; data gravity steers later
      claims, which pays off on shuffle DAGs over non-flat topologies.

    ``topology`` attaches a per-pair :class:`~repro.arch.config.Topology`
    link-cost model (``None`` keeps the single ``TransferConfig`` pricing —
    bit-identical to the pre-topology runtime).  ``prefetch_depth`` > 0
    retargets input writes as prefetches to their consumer's pinned device
    within that lookahead window (double buffering).  All of these reshape
    the *schedule only*: kernel results and per-launch simulated cycles are
    bit-identical across every scheduler/topology choice.
    """

    in_order = False

    def __init__(
        self,
        config: Optional[GGPUConfig] = None,
        num_devices: int = 1,
        memory_bytes: int = 64 * 1024 * 1024,
        transfer: Optional[TransferConfig] = None,
        devices: Optional[Sequence[GGPUSimulator]] = None,
        lpt: bool = False,
        faults: Optional[FaultPlan] = None,
        scheduler: Optional[str] = None,
        topology: Optional[Topology] = None,
        prefetch_depth: int = 0,
        steal_seed: int = 0,
    ) -> None:
        super().__init__(
            config=config,
            num_devices=num_devices,
            memory_bytes=memory_bytes,
            transfer=transfer,
            devices=devices,
            faults=faults,
            topology=topology,
        )
        if scheduler is None:
            scheduler = "lpt" if lpt else "fifo"
        elif lpt and scheduler != "lpt":
            raise KernelError(
                f"conflicting flush orders: lpt=True but scheduler={scheduler!r}"
            )
        if scheduler not in SCHEDULERS:
            raise KernelError(
                f"unknown scheduler {scheduler!r}; choose from {', '.join(SCHEDULERS)}"
            )
        if prefetch_depth < 0:
            raise KernelError(
                f"prefetch depth must be non-negative, got {prefetch_depth}"
            )
        self.scheduler = scheduler
        self.prefetch_depth = int(prefetch_depth)
        self.steal_seed = int(steal_seed)
        self._steal_rng = random.Random(self.steal_seed)
