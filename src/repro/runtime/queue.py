"""OpenCL-style batched command queue over one :class:`GGPUSimulator`.

A real OpenCL host rarely runs one kernel against one context: it creates a
command queue, enqueues many NDRange launches (often of the same few kernels)
and reads results back when the queue finishes.  :class:`CommandQueue`
reproduces that execution model and is the cheap way to run *many* launches:

* the G-GPU instance is built once — global memory, caches, and CU state are
  reused across every launch instead of being reallocated per run;
* programs are pre-decoded once per simulator (the
  :class:`~repro.simt.gpu.GGPUSimulator` decode cache) and shared by all
  launches of the same kernel;
* buffers persist between launches, so pipelines can feed one kernel's output
  buffer to the next kernel without host round-trips.

Every launch still starts from a cold cache and memory controller (the
``launch`` protocol resets both), so the cycle counts and results of a queued
launch are bit-identical to the same launch on a fresh simulator — the queue
saves host-side setup work, never simulated cycles.  ``tests/test_runtime_queue.py``
pins that equivalence; ``benchmarks/test_bench_queue.py`` measures the
speed-up and records it in ``BENCH_PR3.json``.

For sweep-shaped work, :class:`QueueBatch` describes a whole queue's worth of
library-kernel launches by name, and :func:`run_batches` fans a list of
batches out over processes with :mod:`repro.runtime.parallel` — multi-queue
sweeps with one queue (one simulated G-GPU) per process.

For device-level parallelism — one queue scheduling launches across *N*
simulated G-GPUs with host↔device transfer charging and buffer residency —
see :mod:`repro.runtime.multidevice`; its queues share this module's
:class:`QueueStats` (which reports per-device utilization, the transfer vs
compute cycle breakdown, and the critical-path makespan).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.config import GGPUConfig
from repro.arch.kernel import Kernel, NDRange
from repro.errors import KernelError
from repro.kernels.library import get_kernel_spec
from repro.runtime.parallel import parallel_map
from repro.simt.gpu import GGPUSimulator, LaunchResult

ArgValue = Union[int, np.integer]


@dataclass(frozen=True)
class QueuedCommand:
    """One enqueued NDRange launch (not yet executed)."""

    sequence: int
    kernel: Kernel
    ndrange: NDRange
    args: Dict[str, int]
    label: str


@dataclass
class QueueStats:
    """Aggregate statistics over the launches a queue has executed.

    ``total_cycles`` is the sum of simulated *kernel* cycles; the multi-device
    fields (``transfer_cycles``, ``makespan``, the per-device breakdowns) are
    filled by :mod:`repro.runtime.multidevice` and stay zero/empty for a
    plain single-device :class:`CommandQueue`, whose in-order makespan is the
    compute total.  Every derived metric is defined for a zero-launch queue:
    nothing here ever divides by zero.
    """

    launches: int = 0
    total_cycles: float = 0.0
    cycles_by_kernel: Dict[str, float] = field(default_factory=dict)
    transfer_cycles: float = 0.0
    bytes_to_device: int = 0
    bytes_from_device: int = 0
    bytes_p2p: int = 0
    transfers_to_device: int = 0
    transfers_from_device: int = 0
    transfers_p2p: int = 0
    transfers_skipped: int = 0
    makespan: float = 0.0
    critical_path_cycles: float = 0.0
    device_compute_cycles: Dict[int, float] = field(default_factory=dict)
    device_transfer_cycles: Dict[int, float] = field(default_factory=dict)
    # Fault-tolerance accounting (PR 7) — all zero without an armed
    # FaultPlan, which the no-fault bit-exactness pins rely on.
    launch_faults: int = 0
    launch_retries: int = 0
    transfer_faults: int = 0
    transfer_retries: int = 0
    commands_failed: int = 0
    devices_lost: int = 0
    evacuated_buffers: int = 0
    fault_cycles: float = 0.0

    def record(self, result: LaunchResult, device: int = 0) -> None:
        self.launches += 1
        self.total_cycles += result.cycles
        self.cycles_by_kernel[result.kernel_name] = (
            self.cycles_by_kernel.get(result.kernel_name, 0.0) + result.cycles
        )
        self.device_compute_cycles[device] = (
            self.device_compute_cycles.get(device, 0.0) + result.cycles
        )

    def record_transfer(
        self, device: int, num_bytes: int, cycles: float, to_device: bool
    ) -> None:
        """Account one host↔device copy charged to ``device``'s timeline."""
        self.transfer_cycles += cycles
        self.device_transfer_cycles[device] = (
            self.device_transfer_cycles.get(device, 0.0) + cycles
        )
        if to_device:
            self.transfers_to_device += 1
            self.bytes_to_device += num_bytes
        else:
            self.transfers_from_device += 1
            self.bytes_from_device += num_bytes

    def record_p2p(self, device: int, num_bytes: int, cycles: float) -> None:
        """Account one direct device→device copy, charged to the destination."""
        self.transfer_cycles += cycles
        self.device_transfer_cycles[device] = (
            self.device_transfer_cycles.get(device, 0.0) + cycles
        )
        self.transfers_p2p += 1
        self.bytes_p2p += num_bytes

    @property
    def compute_cycles(self) -> float:
        """Alias of ``total_cycles`` for transfer-vs-compute breakdowns."""
        return self.total_cycles

    @property
    def average_cycles_per_launch(self) -> float:
        """Mean kernel cycles per launch; 0.0 for a zero-launch queue."""
        if self.launches == 0:
            return 0.0
        return self.total_cycles / self.launches

    @property
    def transfer_fraction(self) -> float:
        """Transfer share of all busy cycles; 0.0 when nothing ran."""
        busy = self.total_cycles + self.transfer_cycles
        if busy <= 0.0:
            return 0.0
        return self.transfer_cycles / busy

    @property
    def total_retries(self) -> int:
        """Launch plus transfer retries the fault-recovery machinery spent."""
        return self.launch_retries + self.transfer_retries

    @property
    def degraded_fraction(self) -> float:
        """Share of the makespan lost to faults (detection, backoff, stalls,
        re-sent copies); 0.0 for a fault-free or zero-makespan queue."""
        if self.makespan <= 0.0:
            return 0.0
        return min(1.0, self.fault_cycles / self.makespan)

    def device_utilization(self) -> Dict[int, float]:
        """Per-device busy (compute + transfer) fraction of the makespan.

        Compute and DMA are separate engines that may overlap, so a fully
        loaded device can nudge past 1.0 — this is an occupancy measure over
        both engines, not a fraction of one.  A zero-launch queue has a zero
        makespan; every utilization is then 0.0 rather than a division error.
        """
        devices = sorted(set(self.device_compute_cycles) | set(self.device_transfer_cycles))
        if self.makespan <= 0.0:
            return {device: 0.0 for device in devices}
        return {
            device: (
                self.device_compute_cycles.get(device, 0.0)
                + self.device_transfer_cycles.get(device, 0.0)
            )
            / self.makespan
            for device in devices
        }

    @property
    def utilization(self) -> float:
        """Mean per-device utilization; 0.0 for a zero-launch queue."""
        per_device = self.device_utilization()
        if not per_device:
            return 0.0
        return sum(per_device.values()) / len(per_device)


class CommandQueue:
    """In-order batched command queue bound to one simulated G-GPU."""

    def __init__(
        self,
        simulator: Optional[GGPUSimulator] = None,
        config: Optional[GGPUConfig] = None,
        memory_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        if simulator is not None and config is not None:
            raise KernelError("pass either a simulator or a config, not both")
        self.simulator = simulator or GGPUSimulator(config, memory_bytes=memory_bytes)
        self._pending: List[QueuedCommand] = []
        self._results: List[LaunchResult] = []
        self._next_sequence = 0
        self.stats = QueueStats()

    # ------------------------------------------------------------------ #
    # Buffer management (delegates to the simulator's host API)
    # ------------------------------------------------------------------ #
    def allocate_buffer(self, num_words: int) -> int:
        """Allocate a device buffer; returns its base byte address."""
        return self.simulator.allocate_buffer(num_words)

    def create_buffer(self, values: Sequence[int]) -> int:
        """Allocate and initialize a device buffer."""
        return self.simulator.create_buffer(values)

    def write_buffer(self, base_addr: int, values: Sequence[int]) -> None:
        """Copy host data into a device buffer."""
        self.simulator.write_buffer(base_addr, values)

    def read_buffer(self, base_addr: int, num_words: int) -> np.ndarray:
        """Read a device buffer back to the host (finishes pending work first)."""
        self.finish()
        return self.simulator.read_buffer(base_addr, num_words)

    # ------------------------------------------------------------------ #
    # Enqueue / execute
    # ------------------------------------------------------------------ #
    def enqueue(
        self,
        kernel: Kernel,
        ndrange: NDRange,
        args: Dict[str, ArgValue],
        label: Optional[str] = None,
        verify: bool = False,
    ) -> int:
        """Append one launch to the queue; returns its sequence number.

        The launch is validated and executed by :meth:`flush`/:meth:`finish`,
        in enqueue order.  With ``verify=True`` the kernel is first run
        through the ISA-level static lint and rejected (``KernelError``, at
        enqueue time) on any error-severity finding.
        """
        if verify:
            from repro.analysis.isalint import verify_kernel_or_raise

            verify_kernel_or_raise(kernel)
        command = QueuedCommand(
            sequence=self._next_sequence,
            kernel=kernel,
            ndrange=ndrange,
            args={name: int(value) for name, value in args.items()},
            label=label or f"{kernel.name}#{self._next_sequence}",
        )
        self._next_sequence += 1
        self._pending.append(command)
        return command.sequence

    @property
    def pending(self) -> int:
        """Number of launches waiting for :meth:`flush`."""
        return len(self._pending)

    def flush(self) -> List[LaunchResult]:
        """Execute every pending launch in order; returns their results."""
        if not self._pending:
            return []  # cheap no-op: nothing to run, nothing to account
        executed: List[LaunchResult] = []
        pending, self._pending = self._pending, []
        for command in pending:
            result = self.simulator.launch(command.kernel, command.ndrange, command.args)
            self.stats.record(result)
            executed.append(result)
        self._results.extend(executed)
        # An in-order single-device queue runs back-to-back: its makespan and
        # critical path are exactly the accumulated compute cycles.
        self.stats.makespan = self.stats.total_cycles
        self.stats.critical_path_cycles = self.stats.total_cycles
        return executed

    def finish(self) -> List[LaunchResult]:
        """Flush and return the results of *all* launches this queue has run.

        On an empty queue (nothing pending, nothing run) this is a cheap
        no-op that returns an empty list.
        """
        self.flush()
        return list(self._results)


# --------------------------------------------------------------------------- #
# Multi-queue sweeps over the kernel library
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BatchItem:
    """One library-kernel launch inside a :class:`QueueBatch`."""

    kernel: str
    size: int
    seed: int = 2022
    repeats: int = 1

    def __post_init__(self) -> None:
        if self.repeats < 1:
            raise KernelError(f"repeats must be at least 1, got {self.repeats}")


@dataclass(frozen=True)
class QueueBatch:
    """A queue's worth of library-kernel launches on one G-GPU configuration."""

    items: Tuple[BatchItem, ...]
    num_cus: int = 1
    memory_bytes: int = 64 * 1024 * 1024

    def __post_init__(self) -> None:
        if not self.items:
            raise KernelError("a queue batch needs at least one item")


@dataclass
class BatchResult:
    """Outcome of one executed :class:`QueueBatch` (results verified)."""

    num_cus: int
    cycles: List[float]
    kernels: List[str]

    @property
    def total_cycles(self) -> float:
        return float(sum(self.cycles))


def run_batch(batch: QueueBatch) -> BatchResult:
    """Run one batch through a fresh :class:`CommandQueue`, verifying outputs.

    Every launch goes through ``enqueue``; the queue drains once at the end
    and the output buffers are verified against each workload's reference.
    Workload buffers are (re)created per launch — the point of the shared
    queue is amortizing simulator construction and program decode, which
    dominate short launches.
    """
    queue = CommandQueue(
        config=GGPUConfig(num_cus=batch.num_cus), memory_bytes=batch.memory_bytes
    )
    checks: List[Tuple[str, str, int, np.ndarray]] = []
    kernels: List[str] = []
    for item in batch.items:
        spec = get_kernel_spec(item.kernel)
        kernel = spec.build()
        for _ in range(item.repeats):
            workload = spec.workload(item.size, item.seed)
            args: Dict[str, int] = dict(workload.scalars)
            addresses: Dict[str, int] = {}
            for name, contents in workload.buffers.items():
                address = queue.create_buffer(
                    np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
                )
                addresses[name] = address
                args[name] = address
            queue.enqueue(kernel, workload.ndrange, args, label=item.kernel)
            for name, expected in workload.expected.items():
                checks.append((item.kernel, name, addresses[name], expected))
            kernels.append(item.kernel)
    results = queue.finish()
    for kernel_name, buffer_name, address, expected in checks:
        observed = queue.read_buffer(address, len(expected)).astype(np.int64)
        expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
        if not np.array_equal(observed, expected_u32):
            raise KernelError(
                f"queued kernel {kernel_name!r} produced wrong values in {buffer_name!r}"
            )
    return BatchResult(
        num_cus=batch.num_cus,
        cycles=[result.cycles for result in results],
        kernels=kernels,
    )


def run_batches(batches: Sequence[QueueBatch], jobs: Optional[int] = None) -> List[BatchResult]:
    """Run several queue batches, fanned out with :func:`parallel_map`.

    One process per in-flight batch, one simulated G-GPU per batch; results
    come back in batch order and are bit-identical at any job count.
    """
    return parallel_map(run_batch, list(batches), jobs=jobs)
