"""Partition floorplanning.

The floorplanner sizes each partition from its synthesized cell and macro
area and the density targets the paper uses (70% for the CU and the global
memory controller, 30% for the top), arranges the CU partitions around the
memory controller on a grid, and reserves whitespace that grows with the
target frequency (the 667 MHz variants in Fig. 3 are visibly larger than
their synthesized area alone would require, because the router needs room).

The geometry feeds three consumers: the layout artifact (Figs. 3-4), the
wirelength estimator (Table II), and the wire delays of the CU-to-memory-
controller paths that limit the 8-CU version to 600 MHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PhysicalDesignError
from repro.rtl.netlist import Partition
from repro.synth.logic import SynthesisResult
from repro.units import um2_to_mm2


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle in micrometres."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise PhysicalDesignError(f"degenerate rectangle {self.width} x {self.height}")

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def manhattan_distance_to(self, other: "Rect") -> float:
        """Manhattan distance between the centers of two rectangles."""
        cx, cy = self.center
        ox, oy = other.center
        return abs(cx - ox) + abs(cy - oy)


@dataclass(frozen=True)
class PartitionPlacement:
    """One placed partition instance."""

    name: str
    kind: Partition
    rect: Rect
    density: float


@dataclass
class Floorplan:
    """A complete die floorplan."""

    design: str
    target_frequency_mhz: float
    die_width_um: float
    die_height_um: float
    placements: List[PartitionPlacement] = field(default_factory=list)

    @property
    def die_area_mm2(self) -> float:
        return um2_to_mm2(self.die_width_um * self.die_height_um)

    @property
    def cu_placements(self) -> List[PartitionPlacement]:
        """The CU partition instances, in index order."""
        return sorted(
            (placement for placement in self.placements if placement.kind is Partition.CU),
            key=lambda placement: placement.name,
        )

    def placement(self, name: str) -> PartitionPlacement:
        """Look a placed partition up by name."""
        for candidate in self.placements:
            if candidate.name == name:
                return candidate
        raise PhysicalDesignError(f"no partition named {name!r} in the floorplan")

    def memory_controller(self) -> PartitionPlacement:
        """The global-memory-controller partition."""
        for candidate in self.placements:
            if candidate.kind is Partition.MEMORY_CONTROLLER:
                return candidate
        raise PhysicalDesignError("floorplan has no memory-controller partition")

    def cu_to_memctrl_distance_um(self, cu_name: str) -> float:
        """Manhattan route length between a CU and the memory controller."""
        return self.placement(cu_name).rect.manhattan_distance_to(self.memory_controller().rect)

    def max_cu_distance_um(self) -> float:
        """Distance of the farthest CU from the memory controller."""
        distances = [
            self.cu_to_memctrl_distance_um(placement.name) for placement in self.cu_placements
        ]
        return max(distances) if distances else 0.0

    def summary(self) -> str:
        """One-line description matching the style of Figs. 3-4 captions."""
        return (
            f"{self.design}: die {self.die_width_um:.0f} x {self.die_height_um:.0f} um "
            f"({self.die_area_mm2:.2f} mm2), {len(self.cu_placements)} CU partition(s), "
            f"target {self.target_frequency_mhz:.0f} MHz"
        )


class Floorplanner:
    """Produces a :class:`Floorplan` from a synthesis result."""

    def __init__(
        self,
        cu_density: float = 0.70,
        memctrl_density: float = 0.70,
        top_density: float = 0.30,
        base_whitespace: float = 1.15,
        congestion_whitespace: float = 0.20,
        aspect_ratio: float = 1.10,
        reference_frequency_mhz: float = 500.0,
        frequency_span_mhz: float = 167.0,
    ) -> None:
        for name, value in (
            ("cu_density", cu_density),
            ("memctrl_density", memctrl_density),
            ("top_density", top_density),
        ):
            if not 0.05 <= value <= 1.0:
                raise PhysicalDesignError(f"{name} must be in [0.05, 1.0], got {value}")
        self.cu_density = cu_density
        self.memctrl_density = memctrl_density
        self.top_density = top_density
        self.base_whitespace = base_whitespace
        self.congestion_whitespace = congestion_whitespace
        self.aspect_ratio = aspect_ratio
        self.reference_frequency_mhz = reference_frequency_mhz
        self.frequency_span_mhz = frequency_span_mhz

    # ------------------------------------------------------------------ #
    # Sizing helpers
    # ------------------------------------------------------------------ #
    def whitespace_factor(self, frequency_mhz: float) -> float:
        """Extra die area reserved for routing at higher target frequencies."""
        overdrive = max(0.0, frequency_mhz - self.reference_frequency_mhz) / self.frequency_span_mhz
        return self.base_whitespace + self.congestion_whitespace * overdrive

    def partition_footprints(self, synthesis: SynthesisResult) -> Dict[Partition, float]:
        """Placed area (um^2) of one instance of each partition kind."""
        cu_area = synthesis.partitions[Partition.CU]
        memctrl_area = synthesis.partitions[Partition.MEMORY_CONTROLLER]
        top_area = synthesis.partitions[Partition.TOP]
        num_cus = max(1, synthesis.num_cus)
        return {
            Partition.CU: cu_area.total_area_um2 / num_cus / self.cu_density,
            Partition.MEMORY_CONTROLLER: memctrl_area.total_area_um2 / self.memctrl_density,
            Partition.TOP: top_area.total_area_um2 / self.top_density,
        }

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, synthesis: SynthesisResult, frequency_mhz: Optional[float] = None) -> Floorplan:
        """Floorplan the design for the given (or the synthesized) frequency."""
        frequency = frequency_mhz if frequency_mhz is not None else synthesis.frequency_mhz
        footprints = self.partition_footprints(synthesis)
        num_cus = synthesis.num_cus
        whitespace = self.whitespace_factor(frequency)

        content_area = (
            num_cus * footprints[Partition.CU]
            + footprints[Partition.MEMORY_CONTROLLER]
            + footprints[Partition.TOP]
        )
        die_area = content_area * whitespace
        die_height = math.sqrt(die_area / self.aspect_ratio)
        die_width = die_area / die_height

        floorplan = Floorplan(
            design=synthesis.design,
            target_frequency_mhz=frequency,
            die_width_um=die_width,
            die_height_um=die_height,
        )

        # The memory controller sits at the die centre; the CU partitions are
        # arranged on a ring/grid around it (cloned CU layouts, as in Fig. 4).
        mc_side = math.sqrt(footprints[Partition.MEMORY_CONTROLLER])
        mc_rect = Rect(
            x=(die_width - mc_side) / 2.0,
            y=(die_height - mc_side) / 2.0,
            width=mc_side,
            height=mc_side,
        )
        floorplan.placements.append(
            PartitionPlacement("memctrl", Partition.MEMORY_CONTROLLER, mc_rect, self.memctrl_density)
        )

        cu_area = footprints[Partition.CU]
        cu_height = math.sqrt(cu_area / 1.25)
        cu_width = cu_area / cu_height
        for index, (cx, cy) in enumerate(self._cu_slots(num_cus, die_width, die_height, mc_rect)):
            rect = Rect(
                x=min(max(cx - cu_width / 2.0, 0.0), die_width - cu_width),
                y=min(max(cy - cu_height / 2.0, 0.0), die_height - cu_height),
                width=cu_width,
                height=cu_height,
            )
            floorplan.placements.append(
                PartitionPlacement(f"cu{index}", Partition.CU, rect, self.cu_density)
            )

        # The top partition is the low-density glue that fills the remaining
        # die area; it is represented as a frame-like region anchored at the
        # die origin with the equivalent area.
        top_area = footprints[Partition.TOP]
        top_height = max(top_area / die_width, die_height * 0.05, 200.0)
        floorplan.placements.append(
            PartitionPlacement(
                "top",
                Partition.TOP,
                Rect(x=0.0, y=0.0, width=die_width, height=top_height),
                self.top_density,
            )
        )
        return floorplan

    @staticmethod
    def _cu_slots(
        num_cus: int, die_width: float, die_height: float, mc_rect: Rect
    ) -> List[Tuple[float, float]]:
        """Centre coordinates for the CU partitions around the memory controller."""
        mcx, mcy = mc_rect.center
        # Offsets are expressed as fractions of the die half-extent; the first
        # slots are the ones adjacent to the controller, later slots move to
        # the corners (which is what makes the peripheral CUs of the 8-CU
        # floorplan far from the controller).
        ring = [
            (-0.55, 0.0),
            (0.55, 0.0),
            (0.0, -0.60),
            (0.0, 0.60),
            (-0.66, -0.66),
            (0.66, -0.66),
            (-0.66, 0.66),
            (0.66, 0.66),
        ]
        slots = []
        for dx, dy in ring[:num_cus]:
            slots.append((mcx + dx * die_width / 2.0, mcy + dy * die_height / 2.0))
        return slots
