"""Physical-design exchange formats: DEF, LEF, and SVG exports of a layout.

The paper's GPUPlanner hands a tapeout-ready GDSII to the integrator.  A GDSII
writer needs the foundry's layer map, which is not something an offline
reproduction can ship, so this module exports the three views that carry the
same information at the floorplan level and that real flows exchange anyway:

* **DEF** (:func:`write_def`) -- the die area, the partition rows, and every
  placed SRAM macro as a ``COMPONENTS`` entry with its location and
  orientation.  This is the placement view of Figs. 3-4.
* **LEF** (:func:`write_lef`) -- the abstract of every distinct macro geometry
  (size, pin layer) so the DEF can be interpreted without the memory
  compiler.
* **SVG** (:func:`render_svg`) -- a human-viewable rendering of the floorplan
  with the paper's colour coding: untouched macros vs. macros of divided
  (optimized) memory groups, per partition.

All three are text formats, deterministic for a given layout, and covered by
round-trip tests that parse them back.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.errors import PhysicalDesignError
from repro.physical.layout import LayoutResult
from repro.rtl.netlist import Netlist, Partition
from repro.tech.sram import SramMacroSpec, SramPort
from repro.tech.technology import Technology

# DEF distances are expressed in database units; 1000 DBU per micrometre is
# the convention of most 65nm enablements.
DEF_UNITS_PER_UM = 1000

# Colour coding of the SVG rendering, mirroring Figs. 3-4 of the paper:
# untouched macros are grey, divided macros are coloured per partition.
SVG_COLOURS = {
    "untouched": "#b8b8b8",
    Partition.CU: "#3cb44b",  # green  (CU optimized memories)
    Partition.MEMORY_CONTROLLER: "#ffe119",  # yellow (memory-controller optimized)
    Partition.TOP: "#4363d8",  # blue   (top-level optimized)
    "outline": "#404040",
}


def _macro_name_of(group_name: str, netlist: Netlist) -> SramMacroSpec:
    return netlist.memory_groups[group_name].macro


def _def_component_name(macro_name: str) -> str:
    return re.sub(r"[^A-Za-z0-9_\[\]]", "_", macro_name)


def macro_cell_name(spec: SramMacroSpec) -> str:
    """LEF/DEF cell name of one compiled macro geometry."""
    port_tag = "DP" if spec.ports is SramPort.DUAL else "SP"
    return f"SRAM_{port_tag}_{spec.words}X{spec.bits}"


# --------------------------------------------------------------------------- #
# LEF
# --------------------------------------------------------------------------- #
def build_lef(netlist: Netlist, tech: Technology) -> str:
    """LEF abstract library of every distinct macro geometry in the design."""
    seen: Dict[str, SramMacroSpec] = {}
    for group in netlist.memory_group_list():
        seen.setdefault(macro_cell_name(group.macro), group.macro)
    lines: List[str] = [
        "VERSION 5.8 ;",
        "BUSBITCHARS \"[]\" ;",
        "DIVIDERCHAR \"/\" ;",
        f"UNITS DATABASE MICRONS {DEF_UNITS_PER_UM} ; END UNITS",
        "",
    ]
    for name, spec in sorted(seen.items()):
        width, height = tech.sram.footprint_um(spec)
        lines.extend(
            [
                f"MACRO {name}",
                "  CLASS BLOCK ;",
                "  ORIGIN 0 0 ;",
                f"  SIZE {width:.3f} BY {height:.3f} ;",
                "  SYMMETRY X Y ;",
                "  PIN CLK DIRECTION INPUT ; USE CLOCK ; END CLK",
                "  PIN Q DIRECTION OUTPUT ; USE SIGNAL ; END Q",
                f"END {name}",
                "",
            ]
        )
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


def write_lef(netlist: Netlist, tech: Technology, path: str) -> None:
    """Write the LEF abstract library to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(build_lef(netlist, tech))


# --------------------------------------------------------------------------- #
# DEF
# --------------------------------------------------------------------------- #
def build_def(layout: LayoutResult, netlist: Netlist) -> str:
    """DEF placement view of one implemented G-GPU version."""
    if not layout.macro_placements:
        raise PhysicalDesignError("the layout has no placed macros to export")
    die_w = int(round(layout.floorplan.die_width_um * DEF_UNITS_PER_UM))
    die_h = int(round(layout.floorplan.die_height_um * DEF_UNITS_PER_UM))
    lines: List[str] = [
        "VERSION 5.8 ;",
        "DIVIDERCHAR \"/\" ;",
        "BUSBITCHARS \"[]\" ;",
        f"DESIGN {re.sub(r'[^A-Za-z0-9_]', '_', layout.design)} ;",
        f"UNITS DISTANCE MICRONS {DEF_UNITS_PER_UM} ;",
        f"DIEAREA ( 0 0 ) ( {die_w} {die_h} ) ;",
        "",
        f"REGIONS {len(layout.floorplan.placements)} ;",
    ]
    for placement in layout.floorplan.placements:
        x0 = int(round(placement.rect.x * DEF_UNITS_PER_UM))
        y0 = int(round(placement.rect.y * DEF_UNITS_PER_UM))
        x1 = int(round((placement.rect.x + placement.rect.width) * DEF_UNITS_PER_UM))
        y1 = int(round((placement.rect.y + placement.rect.height) * DEF_UNITS_PER_UM))
        lines.append(
            f"  - {placement.name} ( {x0} {y0} ) ( {x1} {y1} ) + TYPE FENCE ;"
        )
    lines.extend(["END REGIONS", "", f"COMPONENTS {len(layout.macro_placements)} ;"])
    for macro in layout.macro_placements:
        spec = _macro_name_of(macro.group, netlist)
        x = int(round(macro.rect.x * DEF_UNITS_PER_UM))
        y = int(round(macro.rect.y * DEF_UNITS_PER_UM))
        lines.append(
            f"  - {_def_component_name(macro.name)} {macro_cell_name(spec)}"
            f" + PLACED ( {x} {y} ) N ;"
        )
    lines.extend(["END COMPONENTS", "", "END DESIGN"])
    return "\n".join(lines) + "\n"


def write_def(layout: LayoutResult, netlist: Netlist, path: str) -> None:
    """Write the DEF placement view to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(build_def(layout, netlist))


def parse_def_components(text: str) -> List[Tuple[str, str, int, int]]:
    """Parse ``(instance, cell, x, y)`` out of a DEF ``COMPONENTS`` section.

    Used by the round-trip tests and by anyone who wants to re-load the
    placement without a full DEF reader.
    """
    components = []
    for match in re.finditer(
        r"^\s*-\s+(\S+)\s+(\S+)\s+\+\s+PLACED\s+\(\s*(-?\d+)\s+(-?\d+)\s*\)", text, flags=re.MULTILINE
    ):
        components.append(
            (match.group(1), match.group(2), int(match.group(3)), int(match.group(4)))
        )
    return components


def parse_def_die_area_um(text: str) -> Tuple[float, float]:
    """Die width/height in micrometres from a DEF produced by :func:`build_def`."""
    match = re.search(r"DIEAREA \( 0 0 \) \( (\d+) (\d+) \) ;", text)
    if match is None:
        raise PhysicalDesignError("the DEF text has no DIEAREA statement")
    return int(match.group(1)) / DEF_UNITS_PER_UM, int(match.group(2)) / DEF_UNITS_PER_UM


# --------------------------------------------------------------------------- #
# SVG
# --------------------------------------------------------------------------- #
def render_svg(
    layout: LayoutResult,
    netlist: Optional[Netlist] = None,
    width_px: int = 800,
) -> str:
    """Render the floorplan as an SVG drawing (the Figs. 3-4 artifact).

    Partitions are drawn as outlined regions; every placed macro is filled
    grey when its memory group is untouched and with its partition's colour
    when the group was divided by the optimizer, matching the paper's legend.
    """
    if width_px < 100:
        raise PhysicalDesignError("the SVG rendering needs at least 100 pixels of width")
    floorplan = layout.floorplan
    scale = width_px / floorplan.die_width_um
    height_px = math.ceil(floorplan.die_height_um * scale)

    def x_of(value: float) -> float:
        return value * scale

    def y_of(value: float, height: float = 0.0) -> float:
        # SVG's y axis points down; layouts use y up.
        return height_px - (value + height) * scale

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width_px}" height="{height_px + 40}" '
        f'viewBox="0 0 {width_px} {height_px + 40}">',
        f'<rect x="0" y="0" width="{width_px}" height="{height_px}" fill="#f4f4f4" '
        f'stroke="{SVG_COLOURS["outline"]}" stroke-width="2"/>',
        f"<!-- {layout.design}: {floorplan.die_width_um:.0f} x {floorplan.die_height_um:.0f} um, "
        f"{layout.achieved_frequency_mhz:.0f} MHz achieved -->",
    ]
    for placement in floorplan.placements:
        parts.append(
            f'<rect x="{x_of(placement.rect.x):.1f}" '
            f'y="{y_of(placement.rect.y, placement.rect.height):.1f}" '
            f'width="{placement.rect.width * scale:.1f}" '
            f'height="{placement.rect.height * scale:.1f}" '
            f'fill="none" stroke="{SVG_COLOURS["outline"]}" stroke-width="1.5" '
            f'class="partition" data-name="{placement.name}"/>'
        )
    group_partitions: Dict[str, Partition] = {}
    if netlist is not None:
        group_partitions = {name: group.partition for name, group in netlist.memory_groups.items()}
    for macro in layout.macro_placements:
        if macro.divided:
            partition = group_partitions.get(macro.group, Partition.CU)
            colour = SVG_COLOURS[partition]
        else:
            colour = SVG_COLOURS["untouched"]
        parts.append(
            f'<rect x="{x_of(macro.rect.x):.1f}" '
            f'y="{y_of(macro.rect.y, macro.rect.height):.1f}" '
            f'width="{max(1.0, macro.rect.width * scale):.1f}" '
            f'height="{max(1.0, macro.rect.height * scale):.1f}" '
            f'fill="{colour}" stroke="#202020" stroke-width="0.3" '
            f'class="macro" data-group="{macro.group}"/>'
        )
    legend = (
        f'<text x="4" y="{height_px + 16}" font-size="12" font-family="monospace">'
        f"{layout.design}: grey = untouched memories, green/yellow/blue = divided memories "
        f"(CU / mem. ctrl. / top)</text>"
        f'<text x="4" y="{height_px + 32}" font-size="12" font-family="monospace">'
        f"die {floorplan.die_width_um:.0f} x {floorplan.die_height_um:.0f} um, "
        f"achieved {layout.achieved_frequency_mhz:.0f} MHz</text>"
    )
    parts.append(legend)
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def write_svg(
    layout: LayoutResult,
    path: str,
    netlist: Optional[Netlist] = None,
    width_px: int = 800,
) -> None:
    """Write the SVG floorplan rendering to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_svg(layout, netlist, width_px))


def export_layout_bundle(
    layout: LayoutResult,
    netlist: Netlist,
    tech: Technology,
    directory: str,
) -> Dict[str, str]:
    """Write DEF + LEF + SVG + JSON for one layout into ``directory``.

    Returns the mapping from artifact kind to file path.  This is the
    "tapeout-ready IP hand-off" of the paper's flow, at the abstraction level
    this reproduction models.
    """
    import os

    os.makedirs(directory, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_]+", "_", layout.design).strip("_") or "ggpu"
    paths = {
        "def": os.path.join(directory, f"{stem}.def"),
        "lef": os.path.join(directory, f"{stem}_macros.lef"),
        "svg": os.path.join(directory, f"{stem}_floorplan.svg"),
        "json": os.path.join(directory, f"{stem}_layout.json"),
    }
    write_def(layout, netlist, paths["def"])
    write_lef(netlist, tech, paths["lef"])
    write_svg(layout, paths["svg"], netlist)
    layout.write_json(paths["json"])
    return paths
