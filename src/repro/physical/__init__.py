"""Physical synthesis model (the Cadence Innovus stage of the paper's flow).

The paper breaks each G-GPU into three kinds of partitions -- the CU, the
global memory controller, and the top -- places the CU and memory-controller
partitions at 70% density and the top at 30%, clones the routed CU partition
for multi-CU versions, and reports die floorplans (Figs. 3-4), routed
wirelength per metal layer (Table II), and the post-route achievable
frequency (the 8-CU version only closes 600 MHz because of the long routes
between the peripheral CUs and the memory controller).

This package reproduces those stages with analytical models:

* :mod:`repro.physical.floorplan` -- partition sizing and placement,
* :mod:`repro.physical.placement` -- SRAM macro placement inside partitions,
* :mod:`repro.physical.routing` -- wirelength per metal layer and the wire
  delay annotated onto the cross-partition timing paths,
* :mod:`repro.physical.layout` -- the final layout artifact (geometry plus
  post-route timing), exportable as JSON or an ASCII sketch,
* :mod:`repro.physical.report` -- the Table-II-style wirelength report.
"""

from repro.physical.floorplan import Floorplan, Floorplanner, PartitionPlacement, Rect
from repro.physical.placement import MacroPlacement, place_macros
from repro.physical.routing import RoutingEstimate, RoutingEstimator
from repro.physical.layout import LayoutResult, PhysicalSynthesis
from repro.physical.report import format_table2

__all__ = [
    "Floorplan",
    "Floorplanner",
    "PartitionPlacement",
    "Rect",
    "MacroPlacement",
    "place_macros",
    "RoutingEstimate",
    "RoutingEstimator",
    "LayoutResult",
    "PhysicalSynthesis",
    "format_table2",
]
