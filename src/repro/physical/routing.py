"""Routing estimation: wirelength per metal layer and route delays.

Two jobs:

* **Table II** -- estimate the routed signal wirelength of a placed design and
  break it down per metal layer (M2-M7; M1/M8/M9 are power-only).  The model
  combines an intra-partition term proportional to the cell and macro counts,
  a top-level term proportional to the CU-to-memory-controller bus routes, and
  a congestion factor that grows with the target frequency (high-effort timing
  closure adds detours and buffering).
* **Post-route timing** -- annotate every cross-partition timing path with the
  buffered wire delay of its route so the post-route STA reproduces the
  paper's key finding: the 8-CU floorplan cannot close 667 MHz and tops out
  around 600 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import PhysicalDesignError
from repro.physical.floorplan import Floorplan
from repro.rtl.netlist import Netlist
from repro.synth.logic import SynthesisResult
from repro.tech.technology import Technology

# Share of the *top-level* wirelength landing on each metal layer: the long
# inter-partition buses ride the intermediate and upper signal layers.
_TOP_LEVEL_LAYER_SHARES = {"M2": 0.0, "M3": 0.05, "M4": 0.20, "M5": 0.30, "M6": 0.30, "M7": 0.15}


@dataclass
class RoutingEstimate:
    """Routed-wirelength estimate of one placed design."""

    design: str
    frequency_mhz: float
    per_layer_um: Dict[str, float] = field(default_factory=dict)
    top_level_um: float = 0.0

    @property
    def total_um(self) -> float:
        """Total signal wirelength over all signal layers."""
        return sum(self.per_layer_um.values())

    def layer(self, name: str) -> float:
        """Wirelength on one layer (zero when the layer carries no signal)."""
        return self.per_layer_um.get(name, 0.0)


class RoutingEstimator:
    """Wirelength and wire-delay estimator."""

    def __init__(
        self,
        wirelength_per_cell_um: float = 55.0,
        wirelength_per_macro_um: float = 20000.0,
        bus_wires_per_cu: int = 160,
        control_fanout_wires: int = 64,
        effort_coefficient: float = 0.25,
        reference_frequency_mhz: float = 500.0,
        frequency_span_mhz: float = 167.0,
        wire_delay_ns_per_mm: float = 0.20,
    ) -> None:
        if wirelength_per_cell_um <= 0 or wirelength_per_macro_um <= 0:
            raise PhysicalDesignError("wirelength coefficients must be positive")
        self.wirelength_per_cell_um = wirelength_per_cell_um
        self.wirelength_per_macro_um = wirelength_per_macro_um
        self.bus_wires_per_cu = bus_wires_per_cu
        self.control_fanout_wires = control_fanout_wires
        self.effort_coefficient = effort_coefficient
        self.reference_frequency_mhz = reference_frequency_mhz
        self.frequency_span_mhz = frequency_span_mhz
        self.wire_delay_ns_per_mm = wire_delay_ns_per_mm

    # ------------------------------------------------------------------ #
    # Wirelength (Table II)
    # ------------------------------------------------------------------ #
    def effort_factor(self, frequency_mhz: float) -> float:
        """Extra wirelength from high-effort timing closure above 500 MHz."""
        overdrive = max(0.0, frequency_mhz - self.reference_frequency_mhz) / self.frequency_span_mhz
        return 1.0 + self.effort_coefficient * overdrive

    def top_level_wirelength_um(self, floorplan: Floorplan) -> float:
        """Wirelength of the CU <-> memory-controller buses and control fanout."""
        total = 0.0
        for placement in floorplan.cu_placements:
            distance = floorplan.cu_to_memctrl_distance_um(placement.name)
            total += distance * self.bus_wires_per_cu
            total += distance * 0.5 * self.control_fanout_wires
        return total

    def estimate(
        self,
        netlist: Netlist,
        synthesis: SynthesisResult,
        floorplan: Floorplan,
        tech: Technology,
        frequency_mhz: float = None,
    ) -> RoutingEstimate:
        """Estimate the routed wirelength of the placed design."""
        frequency = frequency_mhz if frequency_mhz is not None else floorplan.target_frequency_mhz
        cells = synthesis.num_ff + synthesis.num_comb
        intra = (
            cells * self.wirelength_per_cell_um
            + synthesis.num_macros * self.wirelength_per_macro_um
        )
        intra *= self.effort_factor(frequency)
        top_level = self.top_level_wirelength_um(floorplan)

        per_layer: Dict[str, float] = {}
        for layer_name, share in tech.metal.signal_layer_shares().items():
            per_layer[layer_name] = intra * share
        for layer_name, share in _TOP_LEVEL_LAYER_SHARES.items():
            per_layer[layer_name] = per_layer.get(layer_name, 0.0) + top_level * share

        return RoutingEstimate(
            design=netlist.name,
            frequency_mhz=frequency,
            per_layer_um=per_layer,
            top_level_um=top_level,
        )

    # ------------------------------------------------------------------ #
    # Post-route wire delays
    # ------------------------------------------------------------------ #
    def annotate_wire_delays(
        self, netlist: Netlist, floorplan: Floorplan, tech: Technology
    ) -> Dict[str, float]:
        """Set ``wire_delay_ns`` on every cross-partition path; returns the delays.

        The path naming convention of the generator is ``top/cu<i>_request`` /
        ``top/cu<i>_response``; both directions get the delay of the buffered
        route between that CU and the memory controller.
        """
        delays: Dict[str, float] = {}
        for path in netlist.timing_paths.values():
            if not path.crosses_partitions:
                continue
            cu_name = path.name.split("/")[-1].split("_")[0]
            distance = floorplan.cu_to_memctrl_distance_um(cu_name)
            delay = tech.metal.repeated_wire_delay_ns(distance, self.wire_delay_ns_per_mm)
            path.wire_delay_ns = delay
            delays[path.name] = delay
        return delays
