"""SRAM macro placement inside the floorplanned partitions.

Figs. 3 and 4 of the paper highlight where the block memories end up in each
layout and distinguish the "untouched" macros from the ones that were divided
to raise the clock frequency (CU, memory-controller, and top-level optimized
memories are coloured differently).  This module reproduces that artifact: it
packs every macro of every memory group into its partition's rectangle using
a simple shelf packer and tags each placed macro with whether its group was
divided, so the layout export can colour it the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import PhysicalDesignError
from repro.physical.floorplan import Floorplan, Rect
from repro.rtl.netlist import Netlist, Partition
from repro.tech.technology import Technology


@dataclass(frozen=True)
class MacroPlacement:
    """One placed SRAM macro instance."""

    name: str
    group: str
    partition_instance: str
    rect: Rect
    divided: bool


def _partition_instance_for(group_name: str, partition: Partition) -> str:
    """Map a memory group to the floorplan partition instance holding it.

    CU and memory-controller groups are named ``<instance>/<role>``; using the
    first path component keeps this working both for the paper's single
    controller (``memctrl/...``) and for the replicated controllers of a
    clustered design (``memctrl0/...``, ``memctrl1/...``).
    """
    if partition in (Partition.CU, Partition.MEMORY_CONTROLLER):
        return group_name.split("/")[0]
    return "top"


class _ShelfPacker:
    """Packs rectangles into a region row by row (a classic shelf packer)."""

    def __init__(self, region: Rect, margin: float = 10.0) -> None:
        self.region = region
        self.margin = margin
        self._cursor_x = region.x + margin
        self._cursor_y = region.y + margin
        self._shelf_height = 0.0

    def place(self, width: float, height: float) -> Rect:
        if width > self.region.width - 2 * self.margin:
            # Rotate macros that are wider than the partition.
            width, height = height, width
        if self._cursor_x + width > self.region.x + self.region.width - self.margin:
            self._cursor_x = self.region.x + self.margin
            self._cursor_y += self._shelf_height + self.margin
            self._shelf_height = 0.0
        if self._cursor_y + height > self.region.y + 2.5 * max(self.region.height, height):
            # The floorplanner sized each partition from its synthesized area,
            # so macros always fit area-wise; the shelf packer is not optimal,
            # though, so allow a generous vertical overflow before failing
            # loudly (a real flow would legalize the placement instead).
            raise PhysicalDesignError(
                f"macros overflow partition at ({self._cursor_x:.0f}, {self._cursor_y:.0f})"
            )
        rect = Rect(self._cursor_x, self._cursor_y, width, height)
        self._cursor_x += width + self.margin
        self._shelf_height = max(self._shelf_height, height)
        return rect


def place_macros(netlist: Netlist, floorplan: Floorplan, tech: Technology) -> List[MacroPlacement]:
    """Place every macro of every memory group inside its partition."""
    packers: Dict[str, _ShelfPacker] = {}
    placements: List[MacroPlacement] = []
    for group in netlist.memory_group_list():
        instance = _partition_instance_for(group.name, group.partition)
        if instance not in packers:
            packers[instance] = _ShelfPacker(floorplan.placement(instance).rect)
        packer = packers[instance]
        width, height = tech.sram.footprint_um(group.macro)
        for index in range(group.num_macros):
            rect = packer.place(width, height)
            placements.append(
                MacroPlacement(
                    name=f"{group.name}[{index}]",
                    group=group.name,
                    partition_instance=instance,
                    rect=rect,
                    divided=group.mux_levels > 0,
                )
            )
    return placements
