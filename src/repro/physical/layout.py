"""Physical synthesis orchestration and the final layout artifact.

:class:`PhysicalSynthesis` chains the floorplanner, macro placer, routing
estimator, and post-route STA into the Innovus-equivalent stage of
GPUPlanner's flow.  The result is a :class:`LayoutResult`: the tapeout-ready
artifact of the paper (in this reproduction: die geometry, partition and macro
placement, per-layer wirelength, and the post-route achievable frequency),
exportable as JSON (the stand-in for GDSII) or as an ASCII floorplan sketch
(the stand-in for Figs. 3-4).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import PhysicalDesignError
from repro.physical.floorplan import Floorplan, Floorplanner
from repro.physical.placement import MacroPlacement, place_macros
from repro.physical.routing import RoutingEstimate, RoutingEstimator
from repro.rtl.netlist import Netlist
from repro.rtl.timing import TimingReport, analyze_timing, max_frequency_mhz
from repro.synth.logic import SynthesisResult
from repro.tech.technology import Technology


@dataclass
class LayoutResult:
    """Everything the physical stage produces for one G-GPU version."""

    design: str
    target_frequency_mhz: float
    achieved_frequency_mhz: float
    floorplan: Floorplan
    macro_placements: List[MacroPlacement] = field(default_factory=list)
    routing: Optional[RoutingEstimate] = None
    post_route_timing: Optional[TimingReport] = None
    wire_delays_ns: Dict[str, float] = field(default_factory=dict)

    @property
    def timing_met(self) -> bool:
        """Whether the layout runs at the requested clock frequency."""
        return self.achieved_frequency_mhz + 1e-6 >= self.target_frequency_mhz

    @property
    def num_divided_macros(self) -> int:
        """Placed macros that belong to a divided (optimized) memory group."""
        return sum(1 for macro in self.macro_placements if macro.divided)

    def summary(self) -> str:
        """One-line summary in the style of the paper's layout discussion."""
        verdict = "meets" if self.timing_met else "limited to"
        return (
            f"{self.design}: die {self.floorplan.die_width_um:.0f} x "
            f"{self.floorplan.die_height_um:.0f} um, {verdict} "
            f"{self.achieved_frequency_mhz:.0f} MHz "
            f"(target {self.target_frequency_mhz:.0f} MHz), "
            f"{len(self.macro_placements)} macros placed "
            f"({self.num_divided_macros} from divided memories)"
        )

    # ------------------------------------------------------------------ #
    # Exports
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """JSON-serializable description of the layout (the GDSII stand-in)."""
        return {
            "design": self.design,
            "target_frequency_mhz": self.target_frequency_mhz,
            "achieved_frequency_mhz": self.achieved_frequency_mhz,
            "die": {
                "width_um": self.floorplan.die_width_um,
                "height_um": self.floorplan.die_height_um,
            },
            "partitions": [
                {
                    "name": placement.name,
                    "kind": placement.kind.value,
                    "x_um": placement.rect.x,
                    "y_um": placement.rect.y,
                    "width_um": placement.rect.width,
                    "height_um": placement.rect.height,
                    "density": placement.density,
                }
                for placement in self.floorplan.placements
            ],
            "macros": [
                {
                    "name": macro.name,
                    "group": macro.group,
                    "partition": macro.partition_instance,
                    "x_um": macro.rect.x,
                    "y_um": macro.rect.y,
                    "width_um": macro.rect.width,
                    "height_um": macro.rect.height,
                    "divided": macro.divided,
                }
                for macro in self.macro_placements
            ],
            "routing_per_layer_um": dict(self.routing.per_layer_um) if self.routing else {},
            "wire_delays_ns": dict(self.wire_delays_ns),
        }

    def write_json(self, path: str) -> None:
        """Write the layout description to a JSON file."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)

    def ascii_floorplan(self, columns: int = 72, rows: int = 24) -> str:
        """Coarse ASCII rendering of the floorplan (the Figs. 3-4 stand-in)."""
        if columns < 10 or rows < 6:
            raise PhysicalDesignError("the ASCII rendering needs at least a 10x6 grid")
        grid = [["." for _ in range(columns)] for _ in range(rows)]
        scale_x = self.floorplan.die_width_um / columns
        scale_y = self.floorplan.die_height_um / rows
        symbols = {"memctrl": "M", "top": "t"}
        for placement in self.floorplan.placements:
            symbol = symbols.get(placement.name, "C")
            x0 = int(placement.rect.x / scale_x)
            y0 = int(placement.rect.y / scale_y)
            x1 = min(columns, int((placement.rect.x + placement.rect.width) / scale_x) + 1)
            y1 = min(rows, int((placement.rect.y + placement.rect.height) / scale_y) + 1)
            for row in range(y0, y1):
                for column in range(x0, x1):
                    grid[row][column] = symbol
        header = (
            f"{self.design} -- {self.floorplan.die_width_um:.0f} x "
            f"{self.floorplan.die_height_um:.0f} um, "
            f"{self.achieved_frequency_mhz:.0f} MHz achieved"
        )
        legend = "C=compute unit  M=memory controller  t=top glue  .=routing/whitespace"
        return "\n".join([header] + ["".join(row) for row in reversed(grid)] + [legend])


class PhysicalSynthesis:
    """The Innovus-equivalent stage: floorplan, place, route, post-route STA."""

    def __init__(
        self,
        tech: Technology,
        floorplanner: Optional[Floorplanner] = None,
        router: Optional[RoutingEstimator] = None,
    ) -> None:
        self.tech = tech
        self.floorplanner = floorplanner or Floorplanner()
        self.router = router or RoutingEstimator()

    def run(
        self,
        netlist: Netlist,
        synthesis: SynthesisResult,
        target_frequency_mhz: Optional[float] = None,
    ) -> LayoutResult:
        """Implement ``netlist`` physically and report the achieved frequency.

        The netlist's cross-partition paths are annotated in place with the
        wire delays of the placed design, which is exactly what makes the
        8-CU, 667 MHz target close only around 600 MHz.
        """
        target = target_frequency_mhz if target_frequency_mhz is not None else synthesis.frequency_mhz
        floorplan = self.floorplanner.plan(synthesis, target)
        macros = place_macros(netlist, floorplan, self.tech)
        routing = self.router.estimate(netlist, synthesis, floorplan, self.tech, target)
        wire_delays = self.router.annotate_wire_delays(netlist, floorplan, self.tech)
        post_route = analyze_timing(netlist, self.tech, target)
        achieved = min(max_frequency_mhz(netlist, self.tech), target)
        return LayoutResult(
            design=netlist.name,
            target_frequency_mhz=target,
            achieved_frequency_mhz=achieved,
            floorplan=floorplan,
            macro_placements=macros,
            routing=routing,
            post_route_timing=post_route,
            wire_delays_ns=wire_delays,
        )
