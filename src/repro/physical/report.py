"""Table-II-style routing report.

Table II of the paper lists, for four physically implemented versions
(1CU@500MHz, 1CU@667MHz, 8CU@500MHz, 8CU@600MHz), the routed wirelength on
each signal metal layer M2-M7.  :func:`format_table2` renders the same matrix
from this reproduction's :class:`~repro.physical.routing.RoutingEstimate`
objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.physical.routing import RoutingEstimate

SIGNAL_LAYERS: Sequence[str] = ("M2", "M3", "M4", "M5", "M6", "M7")


def table2_matrix(estimates: Iterable[RoutingEstimate]) -> Dict[str, Dict[str, float]]:
    """Per-layer wirelength keyed by layer then by design label."""
    matrix: Dict[str, Dict[str, float]] = {layer: {} for layer in SIGNAL_LAYERS}
    for estimate in estimates:
        label = f"{estimate.design}@{estimate.frequency_mhz:.0f}MHz"
        for layer in SIGNAL_LAYERS:
            matrix[layer][label] = estimate.layer(layer)
    return matrix


def format_table2(estimates: Iterable[RoutingEstimate]) -> str:
    """Render the regenerated Table II as fixed-width text (lengths in um)."""
    estimates = list(estimates)
    labels: List[str] = [
        f"{estimate.design}@{estimate.frequency_mhz:.0f}MHz" for estimate in estimates
    ]
    label_width = max([len(label) for label in labels] + [12]) + 2
    header = "Metal layer".ljust(12) + "".join(label.rjust(label_width) for label in labels)
    lines = [header, "-" * len(header)]
    for layer in SIGNAL_LAYERS:
        cells = "".join(
            f"{estimate.layer(layer):.0f}".rjust(label_width) for estimate in estimates
        )
        lines.append(layer.ljust(12) + cells)
    totals = "".join(f"{estimate.total_um:.0f}".rjust(label_width) for estimate in estimates)
    lines.append("total".ljust(12) + totals)
    return "\n".join(lines)
