"""Benchmark runner: the measurements behind Table III (and its extension).

The paper measures seven kernels on a RISC-V (at the largest input that still
fits its 32 kB memory) and on the G-GPU with 1/2/4/8 CUs (at inputs large
enough to fill the compute units).  ``run_table3`` reproduces that protocol
over the full registered suite — the paper's seven rows
(``PAPER_KERNEL_NAMES``) followed by the six extended-suite rows
(``EXTENDED_KERNEL_NAMES``); pass ``kernels=PAPER_KERNEL_NAMES`` to regenerate
exactly the published table.  ``BenchmarkSizes.scaled`` lets tests and quick
demos run the same protocol at a fraction of the paper's input sizes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.arch.config import GGPUConfig
from repro.errors import KernelError
from repro.kernels import all_kernel_names, get_kernel_spec, run_workload
from repro.riscv.programs import get_riscv_program_spec
from repro.runtime.checkpoint import PathLike, SweepJournal, cell_key, open_journal
from repro.runtime.parallel import parallel_map
from repro.simt.axi import MemoryTrafficStats
from repro.simt.cache import CacheStats
from repro.simt.gpu import GGPUSimulator
from repro.simt.trace import ComputeUnitStats, InstructionMix, KernelRunStats
from repro.riscv.cpu import CpuStats

DEFAULT_SEED = 2022


@dataclass(frozen=True)
class BenchmarkSizes:
    """Input sizes for one kernel (RISC-V and G-GPU sides)."""

    kernel: str
    riscv_size: int
    gpu_size: int

    @classmethod
    def paper(cls, kernel: str) -> "BenchmarkSizes":
        """The sizes used in the paper's Table III."""
        spec = get_kernel_spec(kernel)
        return cls(kernel, spec.paper_riscv_size, spec.paper_gpu_size)

    def scaled(self, factor: float) -> "BenchmarkSizes":
        """Scale both sizes down (rounded to the kernel's size granularity)."""
        if factor <= 0 or factor > 1:
            raise KernelError(f"scale factor must be in (0, 1], got {factor}")
        step = get_kernel_spec(self.kernel).size_granularity

        def _scale(size: int) -> int:
            scaled = max(step, int(size * factor))
            return max(step, (scaled // step) * step)

        return BenchmarkSizes(self.kernel, _scale(self.riscv_size), _scale(self.gpu_size))


@dataclass
class GpuMeasurement:
    """One G-GPU benchmark run."""

    kernel: str
    num_cus: int
    input_size: int
    cycles: float
    stats: KernelRunStats

    @property
    def kcycles(self) -> float:
        return self.cycles / 1.0e3


@dataclass
class RiscvMeasurement:
    """One RISC-V benchmark run."""

    kernel: str
    input_size: int
    cycles: float
    stats: CpuStats

    @property
    def kcycles(self) -> float:
        return self.cycles / 1.0e3


@dataclass
class Table3Row:
    """One kernel's row of Table III."""

    kernel: str
    riscv: RiscvMeasurement
    gpu: Dict[int, GpuMeasurement] = field(default_factory=dict)

    @property
    def riscv_size(self) -> int:
        return self.riscv.input_size

    @property
    def gpu_size(self) -> int:
        return next(iter(self.gpu.values())).input_size

    def gpu_kcycles(self, num_cus: int) -> float:
        return self.gpu[num_cus].kcycles


@dataclass
class Table3Data:
    """The whole regenerated Table III."""

    rows: Dict[str, Table3Row] = field(default_factory=dict)
    cu_counts: Sequence[int] = (1, 2, 4, 8)

    def row(self, kernel: str) -> Table3Row:
        try:
            return self.rows[kernel]
        except KeyError as exc:
            raise KernelError(f"Table III has no row for kernel {kernel!r}") from exc

    @property
    def kernels(self) -> List[str]:
        return list(self.rows)


def measure_gpu_kernel(
    kernel_name: str,
    num_cus: int,
    input_size: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    check: bool = True,
    vectorized: bool = True,
) -> GpuMeasurement:
    """Run one kernel on a G-GPU with ``num_cus`` CUs and measure its cycles.

    ``vectorized`` selects between the batched cross-wavefront issue engine
    (the default) and the scalar reference path; both produce identical
    results and cycle counts (see ``tests/test_simt_golden.py``).
    """
    spec = get_kernel_spec(kernel_name)
    size = input_size if input_size is not None else spec.paper_gpu_size
    workload = spec.workload(size, seed)
    simulator = GGPUSimulator(GGPUConfig(num_cus=num_cus), vectorized=vectorized)
    result, _ = run_workload(simulator, spec.build(), workload, check=check)
    return GpuMeasurement(
        kernel=kernel_name,
        num_cus=num_cus,
        input_size=size,
        cycles=result.cycles,
        stats=result.stats,
    )


def measure_riscv_program(
    kernel_name: str,
    input_size: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    check: bool = True,
) -> RiscvMeasurement:
    """Run one benchmark on the RISC-V baseline and measure its cycles."""
    spec = get_riscv_program_spec(kernel_name)
    size = input_size if input_size is not None else spec.paper_size
    case = spec.build_case(size, seed)
    stats, _ = case.run(check=check)
    return RiscvMeasurement(kernel=kernel_name, input_size=size, cycles=stats.cycles, stats=stats)


def _run_table3_task(task: tuple):
    """Worker entry for one Table III measurement (module level: picklable)."""
    kind, kernel, size, seed, check, num_cus, vectorized = task
    if kind == "riscv":
        return measure_riscv_program(kernel, size, seed, check)
    return measure_gpu_kernel(kernel, num_cus, size, seed, check, vectorized)


# --------------------------------------------------------------------------- #
# Journal (de)serialization — resumable Table III sweeps
# --------------------------------------------------------------------------- #
def _measurement_to_json(
    measurement: Union[GpuMeasurement, RiscvMeasurement],
) -> Dict[str, Any]:
    """One measurement as a JSON-friendly dict (all stats are flat dataclasses)."""
    payload = asdict(measurement)
    payload["target"] = "gpu" if isinstance(measurement, GpuMeasurement) else "riscv"
    return payload


def _measurement_from_json(
    payload: Dict[str, Any],
) -> Union[GpuMeasurement, RiscvMeasurement]:
    """Reconstruct a typed measurement from its journal payload."""
    data = dict(payload)
    target = data.pop("target")
    stats = dict(data.pop("stats"))
    if target == "riscv":
        return RiscvMeasurement(stats=CpuStats(**stats), **data)
    stats["cu_stats"] = [
        ComputeUnitStats(**{**cu, "mix": InstructionMix(**cu["mix"])})
        for cu in stats["cu_stats"]
    ]
    stats["cache"] = CacheStats(**stats["cache"])
    stats["traffic"] = MemoryTrafficStats(**stats["traffic"])
    return GpuMeasurement(stats=KernelRunStats(**stats), **data)


def run_table3(
    kernels: Optional[Sequence[str]] = None,
    cu_counts: Sequence[int] = (1, 2, 4, 8),
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    check: bool = True,
    jobs: Optional[int] = None,
    journal: Union[None, PathLike, SweepJournal] = None,
    vectorized: bool = True,
) -> Table3Data:
    """Measure every kernel on the RISC-V and on G-GPUs with ``cu_counts`` CUs.

    The kernel x target grid is embarrassingly parallel (every measurement
    builds its own simulator and derives its data from ``seed``), so the
    cells are fanned out with :func:`repro.runtime.parallel.parallel_map`;
    ``jobs=None`` honours the ``REPRO_JOBS`` environment variable.  The
    returned table is identical at any job count.

    ``journal`` (a path or an open
    :class:`~repro.runtime.checkpoint.SweepJournal`) makes the sweep
    *resumable*: each finished cell is persisted atomically — keyed by a
    determinism digest of its full configuration — the moment it completes,
    and a re-run after a crash (even ``SIGKILL``) recomputes only the cells
    the journal is missing.  The resumed table is bit-identical to an
    uninterrupted run.
    """
    names = list(kernels) if kernels is not None else all_kernel_names()
    table = Table3Data(cu_counts=tuple(cu_counts))
    tasks = []
    for name in names:
        sizes = BenchmarkSizes.paper(name)
        if scale != 1.0:
            sizes = sizes.scaled(scale)
        tasks.append(("riscv", name, sizes.riscv_size, seed, check, 0, vectorized))
        for num_cus in cu_counts:
            tasks.append(("gpu", name, sizes.gpu_size, seed, check, num_cus, vectorized))
    book = open_journal(
        journal,
        meta={
            "sweep": "table3",
            "kernels": names,
            "cu_counts": [int(count) for count in cu_counts],
            "scale": scale,
            "seed": seed,
            "check": check,
        },
    )
    measurements: List[Any] = [None] * len(tasks)
    missing = list(range(len(tasks)))
    keys: List[str] = []
    if book is not None:
        keys = [
            # ``vectorized`` is deliberately not part of the key: both issue
            # engines produce bit-identical measurements, so a journal
            # written by either mode resumes the other (and digests stay
            # comparable across engine revisions).
            cell_key(kind=kind, kernel=kernel, size=size, seed=s, check=c, num_cus=n)
            for kind, kernel, size, s, c, n, _vec in tasks
        ]
        missing = []
        for index, key in enumerate(keys):
            cached = book.get(key)
            if cached is not None:
                measurements[index] = _measurement_from_json(cached)
            else:
                missing.append(index)

    def _collect(position: int, result: Any) -> None:
        index = missing[position]
        measurements[index] = result
        if book is not None:
            book.record(keys[index], _measurement_to_json(result))

    parallel_map(
        _run_table3_task,
        [tasks[index] for index in missing],
        jobs=jobs,
        on_result=_collect,
    )
    stride = 1 + len(cu_counts)
    for position, name in enumerate(names):
        cell = position * stride
        row = Table3Row(kernel=name, riscv=measurements[cell])
        for offset, num_cus in enumerate(cu_counts, start=1):
            row.gpu[num_cus] = measurements[cell + offset]
        table.rows[name] = row
    return table
