"""Reference numbers transcribed from the paper.

These are used only for comparison (shape checks in EXPERIMENTS.md and in the
benchmark output); nothing in the library is fitted to them at runtime.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ---------------------------------------------------------------------------
# Table I: 12 versions after logic synthesis in Cadence Genus.
# label -> (total area mm2, memory area mm2, #FF, #Comb, #Memory,
#           leakage mW, dynamic W, total W)
# ---------------------------------------------------------------------------
PAPER_TABLE1: Dict[str, Tuple[float, float, int, int, int, float, float, float]] = {
    "1@500MHz": (4.19, 2.68, 119778, 127826, 51, 4.62, 1.97, 2.055),
    "2@500MHz": (7.45, 4.64, 229171, 214243, 93, 8.54, 3.63, 3.77),
    "4@500MHz": (13.84, 8.56, 437318, 387246, 177, 16.07, 6.88, 7.14),
    "8@500MHz": (26.51, 16.39, 852094, 714256, 345, 30.79, 13.33, 13.86),
    "1@590MHz": (4.66, 3.15, 120035, 128894, 68, 4.73, 2.57, 2.66),
    "2@590MHz": (8.16, 5.34, 229172, 221946, 120, 8.73, 4.63, 4.81),
    "4@590MHz": (15.03, 9.72, 436807, 397995, 224, 16.41, 8.70, 9.02),
    "8@590MHz": (28.65, 18.49, 850559, 737232, 432, 31.25, 16.81, 17.40),
    "1@667MHz": (4.77, 3.26, 120035, 130802, 71, 4.65, 2.62, 2.72),
    "2@667MHz": (8.27, 5.45, 229172, 222028, 123, 8.72, 4.69, 4.87),
    "4@667MHz": (15.15, 9.83, 436807, 398124, 227, 16.43, 8.75, 9.07),
    "8@667MHz": (28.69, 18.60, 848511, 730506, 435, 30.21, 19.10, 19.76),
}

# ---------------------------------------------------------------------------
# Table II: routed wirelength per metal layer (um).
# layer -> {version label: wirelength}
# ---------------------------------------------------------------------------
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "M2": {"1CU@500MHz": 3185110, "1CU@667MHz": 15340072, "8CU@500MHz": 20314957, "8CU@600MHz": 25637608},
    "M3": {"1CU@500MHz": 5132356, "1CU@667MHz": 21219705, "8CU@500MHz": 27928578, "8CU@600MHz": 34890963},
    "M4": {"1CU@500MHz": 2987163, "1CU@667MHz": 9866798, "8CU@500MHz": 19209669, "8CU@600MHz": 22387405},
    "M5": {"1CU@500MHz": 2713788, "1CU@667MHz": 11293663, "8CU@500MHz": 21953276, "8CU@600MHz": 26355211},
    "M6": {"1CU@500MHz": 1430594, "1CU@667MHz": 8801517, "8CU@500MHz": 14074944, "8CU@600MHz": 11111664},
    "M7": {"1CU@500MHz": 616666, "1CU@667MHz": 2915533, "8CU@500MHz": 6316321, "8CU@600MHz": 5315697},
}

# ---------------------------------------------------------------------------
# Table III: benchmark input sizes and cycle counts (k-cycles).
# kernel -> (riscv size, gpu size, riscv kcycles, {cus: gpu kcycles})
# ---------------------------------------------------------------------------
PAPER_TABLE3: Dict[str, Tuple[int, int, float, Dict[int, float]]] = {
    "mat_mul": (128, 2048, 202.0, {1: 48.0, 2: 28.0, 4: 18.0, 8: 14.0}),
    "copy": (512, 32768, 71.0, {1: 73.0, 2: 36.0, 4: 24.0, 8: 22.0}),
    "vec_mul": (1024, 65536, 78.0, {1: 100.0, 2: 49.0, 4: 31.0, 8: 26.0}),
    "fir": (128, 4096, 542.0, {1: 694.0, 2: 358.0, 4: 185.0, 8: 169.0}),
    "div_int": (512, 4096, 32.0, {1: 209.0, 2: 105.0, 4: 57.0, 8: 62.0}),
    "xcorr": (256, 4096, 542.0, {1: 5343.0, 2: 2802.0, 4: 1467.0, 8: 2079.0}),
    "parallel_sel": (128, 2048, 765.0, {1: 5979.0, 2: 3157.0, 4: 1656.0, 8: 1660.0}),
}

# ---------------------------------------------------------------------------
# Fig. 6: G-GPU / RISC-V area ratios per CU count.
# ---------------------------------------------------------------------------
PAPER_AREA_RATIOS: Dict[int, float] = {1: 6.5, 2: 11.6, 4: 21.4, 8: 41.0}

# Headline numbers quoted in the abstract / discussion.
PAPER_MAX_SPEEDUP = 223.0
PAPER_MAX_SPEEDUP_PER_AREA = 10.2
PAPER_8CU_ACHIEVED_MHZ = 600.0

# Die dimensions (um) read from Figs. 3 and 4.
PAPER_DIE_DIMENSIONS_UM: Dict[str, Tuple[float, float]] = {
    "1CU@500MHz": (2700.0, 2500.0),
    "1CU@667MHz": (3200.0, 2800.0),
    "8CU@500MHz": (7150.0, 6250.0),
    "8CU@600MHz": (8350.0, 7450.0),
}


def paper_speedup(kernel: str, num_cus: int) -> float:
    """Speed-up over RISC-V implied by Table III (the bars of Fig. 5)."""
    riscv_size, gpu_size, riscv_kcycles, gpu = PAPER_TABLE3[kernel]
    scale = gpu_size / riscv_size
    return riscv_kcycles * scale / gpu[num_cus]


def paper_speedup_per_area(kernel: str, num_cus: int) -> float:
    """Speed-up derated by the area ratio (the bars of Fig. 6)."""
    return paper_speedup(kernel, num_cus) / PAPER_AREA_RATIOS[num_cus]
