"""Regeneration of the paper's figures.

* Fig. 3 -- layouts of the 1CU@500MHz and 1CU@667MHz versions.
* Fig. 4 -- layouts of the 8CU@500MHz and 8CU@600MHz versions.
* Fig. 5 -- speed-up over the RISC-V per kernel and CU count.
* Fig. 6 -- the same speed-up derated by the G-GPU/RISC-V area ratio.

The "figures" are data objects (layouts and bar series); ``format_*`` helpers
render them as text so the benchmark harness can print the same information
the paper plots.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import KernelError
from repro.eval.benchmarks import Table3Data, run_table3
from repro.eval.comparison import (
    AreaRatios,
    SpeedupSeries,
    compute_area_ratios,
    compute_speedups,
    derate_by_area,
)
from repro.eval.tables import build_physical_versions
from repro.physical.layout import LayoutResult
from repro.tech.technology import Technology


# --------------------------------------------------------------------------- #
# Figs. 3 and 4: layouts
# --------------------------------------------------------------------------- #
def build_figure3(tech: Technology, layouts: Optional[List[LayoutResult]] = None) -> Tuple[LayoutResult, LayoutResult]:
    """The two 1-CU layouts contrasted in Fig. 3 (500 MHz vs 667 MHz)."""
    layouts = layouts if layouts is not None else build_physical_versions(tech)
    single_cu = [layout for layout in layouts if layout.floorplan.cu_placements and len(layout.floorplan.cu_placements) == 1]
    if len(single_cu) < 2:
        raise KernelError("figure 3 needs the two physically implemented 1-CU versions")
    single_cu.sort(key=lambda layout: layout.target_frequency_mhz)
    return single_cu[0], single_cu[-1]


def build_figure4(tech: Technology, layouts: Optional[List[LayoutResult]] = None) -> Tuple[LayoutResult, LayoutResult]:
    """The two 8-CU layouts contrasted in Fig. 4 (500 MHz vs the 600 MHz limit)."""
    layouts = layouts if layouts is not None else build_physical_versions(tech)
    eight_cu = [layout for layout in layouts if len(layout.floorplan.cu_placements) == 8]
    if len(eight_cu) < 2:
        raise KernelError("figure 4 needs the two physically implemented 8-CU versions")
    eight_cu.sort(key=lambda layout: layout.target_frequency_mhz)
    return eight_cu[0], eight_cu[-1]


# --------------------------------------------------------------------------- #
# Figs. 5 and 6: speed-up bar charts
# --------------------------------------------------------------------------- #
def build_figure5(table3: Optional[Table3Data] = None, scale: float = 1.0) -> SpeedupSeries:
    """Raw speed-up over the RISC-V (Fig. 5)."""
    table3 = table3 if table3 is not None else run_table3(scale=scale)
    return compute_speedups(table3)


def build_figure6(
    tech: Technology,
    table3: Optional[Table3Data] = None,
    scale: float = 1.0,
    ratios: Optional[AreaRatios] = None,
) -> SpeedupSeries:
    """Speed-up derated by the synthesized area ratio (Fig. 6)."""
    speedups = build_figure5(table3, scale)
    ratios = ratios if ratios is not None else compute_area_ratios(tech)
    return derate_by_area(speedups, ratios)


def format_speedup_chart(series: SpeedupSeries, width: int = 40) -> str:
    """Text bar chart of a speed-up series (one group of bars per kernel)."""
    best = max(series.best(), 1e-9)
    lines = [f"{series.metric} (x over RISC-V), bar scale: {best:.1f} = full width"]
    for kernel in series.kernels:
        lines.append(kernel)
        for num_cus in series.cu_counts:
            value = series.value(kernel, num_cus)
            bar = "#" * max(1, int(round(width * value / best)))
            lines.append(f"  {num_cus}CU {value:10.2f} {bar}")
    return "\n".join(lines)
