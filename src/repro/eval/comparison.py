"""Speed-up and speed-up-per-area computation (Figs. 5 and 6).

The paper's methodology: because the RISC-V could not run the G-GPU input
sizes (they crash its 32 kB memory and its compiler), it "takes a pessimistic
approach for G-GPU" and scales the RISC-V cycle count by the G-GPU/RISC-V
input-size ratio before dividing.  Fig. 6 then derates the speed-up by the
G-GPU/RISC-V *area* ratio, which is what a designer trading silicon for
throughput cares about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import KernelError
from repro.eval.benchmarks import Table3Data
from repro.planner.spec import GGPUSpec
from repro.planner.optimizer import TimingOptimizer
from repro.rtl.generator import generate_ggpu_netlist, riscv_reference_netlist
from repro.synth.logic import LogicSynthesis
from repro.tech.technology import Technology


@dataclass
class SpeedupSeries:
    """Speed-up of every kernel for every CU count (one figure's bar data)."""

    metric: str
    cu_counts: Sequence[int]
    values: Dict[str, Dict[int, float]] = field(default_factory=dict)

    def value(self, kernel: str, num_cus: int) -> float:
        try:
            return self.values[kernel][num_cus]
        except KeyError as exc:
            raise KernelError(f"no {self.metric} value for {kernel!r} at {num_cus} CU(s)") from exc

    @property
    def kernels(self) -> List[str]:
        return list(self.values)

    def best(self) -> float:
        """Largest value in the whole series (the paper's headline numbers)."""
        return max(max(per_cu.values()) for per_cu in self.values.values())

    def best_kernel(self) -> str:
        """Kernel achieving the largest value."""
        return max(self.values, key=lambda kernel: max(self.values[kernel].values()))


@dataclass(frozen=True)
class AreaRatios:
    """G-GPU/RISC-V area ratio for every CU count (the derating factor of Fig. 6)."""

    riscv_area_mm2: float
    ggpu_area_mm2: Dict[int, float]

    def ratio(self, num_cus: int) -> float:
        try:
            return self.ggpu_area_mm2[num_cus] / self.riscv_area_mm2
        except KeyError as exc:
            raise KernelError(f"no synthesized area for {num_cus} CU(s)") from exc

    def as_dict(self) -> Dict[int, float]:
        return {num_cus: self.ratio(num_cus) for num_cus in sorted(self.ggpu_area_mm2)}


def compute_speedups(table3: Table3Data) -> SpeedupSeries:
    """Fig. 5: raw speed-up over the RISC-V, input-size-ratio scaled."""
    series = SpeedupSeries(metric="speedup", cu_counts=tuple(table3.cu_counts))
    for kernel, row in table3.rows.items():
        scale = row.gpu_size / row.riscv_size
        series.values[kernel] = {
            num_cus: row.riscv.cycles * scale / row.gpu[num_cus].cycles
            for num_cus in table3.cu_counts
        }
    return series


def derate_by_area(speedups: SpeedupSeries, ratios: AreaRatios) -> SpeedupSeries:
    """Fig. 6: speed-up divided by the G-GPU/RISC-V area ratio."""
    series = SpeedupSeries(metric="speedup_per_area", cu_counts=tuple(speedups.cu_counts))
    for kernel, per_cu in speedups.values.items():
        series.values[kernel] = {
            num_cus: value / ratios.ratio(num_cus) for num_cus, value in per_cu.items()
        }
    return series


def compute_area_ratios(
    tech: Technology,
    cu_counts: Iterable[int] = (1, 2, 4, 8),
    frequency_mhz: float = 667.0,
    optimizer: Optional[TimingOptimizer] = None,
) -> AreaRatios:
    """Synthesize the G-GPU versions and the RISC-V baseline and compare areas.

    The paper compares both architectures synthesized in the same technology at
    667 MHz, the G-GPU in its largest configuration per CU count.
    """
    synthesis = LogicSynthesis(tech)
    optimizer = optimizer or TimingOptimizer(tech)
    areas: Dict[int, float] = {}
    for num_cus in cu_counts:
        spec = GGPUSpec(num_cus=num_cus, target_frequency_mhz=frequency_mhz)
        netlist = generate_ggpu_netlist(spec.architecture(), name=spec.label)
        optimizer.close_timing(netlist, frequency_mhz)
        areas[num_cus] = synthesis.run(netlist, frequency_mhz).total_area_mm2
    riscv_area = synthesis.run(riscv_reference_netlist(), frequency_mhz).total_area_mm2
    return AreaRatios(riscv_area_mm2=riscv_area, ggpu_area_mm2=areas)
