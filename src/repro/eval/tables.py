"""Regeneration of the paper's three tables.

* Table I -- the 12 versions after logic synthesis.
* Table II -- wirelength per metal layer for the 4 physically implemented
  versions (the 8-CU 667 MHz target is reported at its achieved 600 MHz).
* Table III -- benchmark input sizes and cycle counts for the RISC-V and the
  G-GPU with 1/2/4/8 CUs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.eval.benchmarks import Table3Data, run_table3
from repro.eval.multidevice import MultiDeviceTable, PipelineTable, TopologyTable
from repro.physical.layout import LayoutResult, PhysicalSynthesis
from repro.physical.routing import RoutingEstimate
from repro.planner.dse import DesignPoint, DesignSpaceExplorer
from repro.planner.optimizer import TimingOptimizer
from repro.planner.spec import GGPUSpec
from repro.planner.versions import (
    PAPER_CU_COUNTS,
    PAPER_FREQUENCIES_MHZ,
    PHYSICAL_VERSION_SPECS,
)
from repro.rtl.generator import generate_ggpu_netlist
from repro.synth.logic import LogicSynthesis, SynthesisResult
from repro.tech.technology import Technology


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
def build_table1(
    tech: Technology,
    cu_counts: Sequence[int] = PAPER_CU_COUNTS,
    frequencies_mhz: Sequence[float] = PAPER_FREQUENCIES_MHZ,
) -> List[SynthesisResult]:
    """Synthesize every (frequency, CU count) version, in Table I's row order."""
    explorer = DesignSpaceExplorer(tech)
    results: List[SynthesisResult] = []
    for frequency in frequencies_mhz:
        for num_cus in cu_counts:
            point: DesignPoint = explorer.explore_point(
                GGPUSpec(num_cus=num_cus, target_frequency_mhz=frequency)
            )
            results.append(point.synthesis)
    return results


# --------------------------------------------------------------------------- #
# Table II (and the layouts of Figs. 3-4)
# --------------------------------------------------------------------------- #
def build_physical_versions(tech: Technology) -> List[LayoutResult]:
    """Run physical synthesis for the paper's four extreme versions."""
    optimizer = TimingOptimizer(tech)
    synthesis = LogicSynthesis(tech)
    physical = PhysicalSynthesis(tech)
    layouts: List[LayoutResult] = []
    for spec in PHYSICAL_VERSION_SPECS:
        netlist = generate_ggpu_netlist(spec.architecture(), name=f"{spec.num_cus}CU")
        optimizer.close_timing(netlist, spec.target_frequency_mhz)
        synth_result = synthesis.run(netlist, spec.target_frequency_mhz)
        layouts.append(physical.run(netlist, synth_result, spec.target_frequency_mhz))
    return layouts


def build_table2(tech: Technology, layouts: Optional[List[LayoutResult]] = None) -> List[RoutingEstimate]:
    """Per-layer wirelength of the four physical versions.

    The routing estimate is labelled with the *achieved* frequency, matching
    the paper's convention of listing the fourth column as 8CU@600MHz.
    """
    layouts = layouts if layouts is not None else build_physical_versions(tech)
    estimates: List[RoutingEstimate] = []
    for layout in layouts:
        estimate = layout.routing
        estimate.frequency_mhz = layout.achieved_frequency_mhz
        estimates.append(estimate)
    return estimates


# --------------------------------------------------------------------------- #
# Table III
# --------------------------------------------------------------------------- #
def build_table3(scale: float = 1.0, cu_counts: Sequence[int] = (1, 2, 4, 8)) -> Table3Data:
    """Measure the benchmark cycle counts (``scale`` < 1 shrinks the inputs)."""
    return run_table3(cu_counts=cu_counts, scale=scale)


def format_multidevice_table(table: MultiDeviceTable) -> str:
    """Render the makespan-vs-device-count sweep as fixed-width text.

    One row per device count: makespan (k-cycles), speed-up over the smallest
    cell, compute and transfer cycle totals, transfer share of busy cycles,
    and mean device utilization.
    """
    header_cells = [
        "Devices".rjust(7),
        "Makespan k".rjust(11),
        "Speedup".rjust(8),
        "Compute k".rjust(10),
        "Transfer k".rjust(11),
        "Xfer %".rjust(7),
        "Util %".rjust(7),
    ]
    header = " ".join(header_cells)
    lines = [
        f"Independent-launch batch: {len(table.kernels)} kernels at scale {table.scale}",
        header,
        "-" * len(header),
    ]
    for count in table.device_counts:
        cell = table.cell(count)
        lines.append(
            " ".join(
                [
                    f"{count}".rjust(7),
                    f"{cell.makespan_kcycles:.1f}".rjust(11),
                    f"{table.speedup(count):.2f}x".rjust(8),
                    f"{cell.compute_cycles / 1e3:.1f}".rjust(10),
                    f"{cell.transfer_cycles / 1e3:.1f}".rjust(11),
                    f"{100 * cell.transfer_fraction:.1f}".rjust(7),
                    f"{100 * cell.mean_utilization:.1f}".rjust(7),
                ]
            )
        )
    return "\n".join(lines)


def format_pipeline_table(table: PipelineTable) -> str:
    """Render the two-stage-DAG transfer-mode sweep as fixed-width text.

    One row per (transfer mode, device count): makespan (k-cycles), the
    improvement over the host-hop baseline at the same device count, the
    transfer cycle total, and the P2P / read-back copy counts.
    """
    header_cells = [
        "Mode".ljust(13),
        "Devices".rjust(7),
        "Makespan k".rjust(11),
        "vs host".rjust(8),
        "Transfer k".rjust(11),
        "P2P".rjust(5),
        "Readback".rjust(9),
    ]
    header = " ".join(header_cells)
    lines = [
        f"Two-stage shuffle DAG: {table.lanes} lanes of {table.size} words",
        header,
        "-" * len(header),
    ]
    for mode in table.modes:
        for count in table.device_counts:
            cell = table.cell(mode, count)
            lines.append(
                " ".join(
                    [
                        mode.ljust(13),
                        f"{count}".rjust(7),
                        f"{cell.makespan_kcycles:.1f}".rjust(11),
                        f"{table.improvement(mode, count):.2f}x".rjust(8),
                        f"{cell.transfer_cycles / 1e3:.1f}".rjust(11),
                        f"{cell.transfers_p2p}".rjust(5),
                        f"{cell.transfers_from_device}".rjust(9),
                    ]
                )
            )
    return "\n".join(lines)


def format_topology_table(table: TopologyTable) -> str:
    """Render the topology × scheduler ablation as fixed-width text.

    One row per (DAG, topology, scheduler, device count): makespan
    (k-cycles), the improvement over LPT in the same (DAG, topology, device
    count) cell, the transfer cycle total, the P2P copy count, and the mean
    device utilization.
    """
    header_cells = [
        "DAG".ljust(8),
        "Topology".ljust(11),
        "Scheduler".ljust(9),
        "Devices".rjust(7),
        "Makespan k".rjust(11),
        "vs LPT".rjust(7),
        "Transfer k".rjust(11),
        "P2P".rjust(5),
        "Util %".rjust(7),
    ]
    header = " ".join(header_cells)
    lines = [
        (
            f"Topology ablation: layered {table.width}x{table.depth}@{table.size}, "
            f"shuffle {table.lanes}x{table.stages}@{table.size}"
        ),
        header,
        "-" * len(header),
    ]
    for dag in table.dags:
        for topology in table.topologies:
            for scheduler in table.schedulers:
                for count in table.device_counts:
                    cell = table.cell(dag, topology, scheduler, count)
                    lines.append(
                        " ".join(
                            [
                                dag.ljust(8),
                                topology.ljust(11),
                                scheduler.ljust(9),
                                f"{count}".rjust(7),
                                f"{cell.makespan_kcycles:.1f}".rjust(11),
                                f"{table.speedup_vs_lpt(dag, topology, scheduler, count):.2f}x".rjust(7),
                                f"{cell.transfer_cycles / 1e3:.1f}".rjust(11),
                                f"{cell.transfers_p2p}".rjust(5),
                                f"{100 * cell.mean_utilization:.1f}".rjust(7),
                            ]
                        )
                    )
    return "\n".join(lines)


def format_table3(table: Table3Data) -> str:
    """Render Table III as fixed-width text (cycle counts in k-cycles)."""
    cu_counts = list(table.cu_counts)
    header_cells = ["Kernel".ljust(14), "RISC-V size".rjust(12), "G-GPU size".rjust(12), "RISC-V".rjust(10)]
    header_cells += [f"{num_cus}CU".rjust(10) for num_cus in cu_counts]
    header = " ".join(header_cells)
    lines = [header, "-" * len(header)]
    for kernel, row in table.rows.items():
        cells = [
            kernel.ljust(14),
            f"{row.riscv_size}".rjust(12),
            f"{row.gpu_size}".rjust(12),
            f"{row.riscv.kcycles:.0f}".rjust(10),
        ]
        cells += [f"{row.gpu_kcycles(num_cus):.0f}".rjust(10) for num_cus in cu_counts]
        lines.append(" ".join(cells))
    return "\n".join(lines)
