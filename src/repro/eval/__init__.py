"""Evaluation harness: regenerates every table and figure of the paper.

* :mod:`repro.eval.benchmarks` -- runs the seven kernels on the G-GPU
  simulator (1/2/4/8 CUs) and on the RISC-V ISS (Table III).
* :mod:`repro.eval.comparison` -- turns cycle counts into the speed-up and
  speed-up-per-area metrics of Figs. 5 and 6 using the paper's methodology
  (RISC-V cycles scaled by the input-size ratio, speed-up derated by the
  G-GPU/RISC-V area ratio).
* :mod:`repro.eval.tables` -- Table I (12 synthesized versions), Table II
  (wirelength per metal layer), Table III (benchmark cycle counts).
* :mod:`repro.eval.figures` -- Figs. 3-4 (layouts) and Figs. 5-6 (speed-ups).
* :mod:`repro.eval.paper_data` -- the numbers printed in the paper, used to
  compare shapes in EXPERIMENTS.md and in the benchmark harness output.
* :mod:`repro.eval.multidevice` -- the beyond-the-paper multi-device sweeps:
  makespan vs device count for an independent-launch batch of the whole
  kernel suite, the two-stage-DAG transfer-mode ablation, and the topology ×
  scheduler ablation (:func:`repro.eval.multidevice.run_topology_table`),
  all scheduled by :class:`repro.runtime.multidevice.OutOfOrderQueue`.
"""

from repro.eval.benchmarks import (
    BenchmarkSizes,
    GpuMeasurement,
    RiscvMeasurement,
    Table3Row,
    Table3Data,
    measure_gpu_kernel,
    measure_riscv_program,
    run_table3,
)
from repro.eval.comparison import (
    AreaRatios,
    SpeedupSeries,
    compute_area_ratios,
    compute_speedups,
    derate_by_area,
)
from repro.eval.multidevice import (
    MultiDeviceCell,
    MultiDeviceTable,
    TopologyCell,
    TopologyTable,
    run_multidevice_table,
    run_topology_table,
)
from repro.eval.tables import (
    build_table1,
    build_table2,
    build_table3,
    format_multidevice_table,
    format_table3,
    format_topology_table,
)
from repro.eval.figures import (
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
    format_speedup_chart,
)

__all__ = [
    "BenchmarkSizes",
    "GpuMeasurement",
    "RiscvMeasurement",
    "Table3Row",
    "Table3Data",
    "measure_gpu_kernel",
    "measure_riscv_program",
    "run_table3",
    "AreaRatios",
    "SpeedupSeries",
    "compute_area_ratios",
    "compute_speedups",
    "derate_by_area",
    "MultiDeviceCell",
    "MultiDeviceTable",
    "TopologyCell",
    "TopologyTable",
    "run_multidevice_table",
    "run_topology_table",
    "build_table1",
    "build_table2",
    "build_table3",
    "format_multidevice_table",
    "format_table3",
    "format_topology_table",
    "build_figure3",
    "build_figure4",
    "build_figure5",
    "build_figure6",
    "format_speedup_chart",
]
