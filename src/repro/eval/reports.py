"""CSV and Markdown exporters for every regenerated table and figure.

The benchmark harness prints its tables to the terminal; this module writes
the same data as files so results can be archived, diffed between runs, or
dropped into a paper.  Every exporter takes the already-computed data object
(synthesis results, routing estimates, Table-III measurements, speed-up
series) -- nothing is recomputed here -- and :func:`write_report_bundle`
writes one directory with everything it is given.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Dict, Iterable, List, Optional, Sequence

from repro.eval.benchmarks import Table3Data
from repro.eval.comparison import SpeedupSeries
from repro.eval.energy import EnergyComparison
from repro.eval.multidevice import MultiDeviceTable, PipelineTable, TopologyTable
from repro.physical.routing import RoutingEstimate
from repro.runtime.checkpoint import atomic_write_text
from repro.synth.logic import SynthesisResult
from repro.synth.report import SynthesisReportRow

METAL_LAYERS = ("M2", "M3", "M4", "M5", "M6", "M7")


def _csv_text(header: Sequence[str], rows: Iterable[Sequence]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def _markdown_table(header: Sequence[str], rows: Iterable[Sequence]) -> str:
    lines = [
        "| " + " | ".join(str(cell) for cell in header) + " |",
        "|" + "|".join("---" for _ in header) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines) + "\n"


# --------------------------------------------------------------------------- #
# Table I
# --------------------------------------------------------------------------- #
_TABLE1_HEADER = (
    "version",
    "total_area_mm2",
    "memory_area_mm2",
    "num_ff",
    "num_comb",
    "num_memory",
    "leakage_mw",
    "dynamic_w",
    "total_w",
)


def _table1_rows(results: Iterable[SynthesisResult]) -> List[Sequence]:
    rows = []
    for result in results:
        row = SynthesisReportRow.from_result(result)
        rows.append(
            (
                row.label,
                f"{row.total_area_mm2:.2f}",
                f"{row.memory_area_mm2:.2f}",
                row.num_ff,
                row.num_comb,
                row.num_memory,
                f"{row.leakage_mw:.2f}",
                f"{row.dynamic_w:.2f}",
                f"{row.total_w:.3f}",
            )
        )
    return rows


def table1_to_csv(results: Iterable[SynthesisResult]) -> str:
    """Table I as CSV text."""
    return _csv_text(_TABLE1_HEADER, _table1_rows(results))


def table1_to_markdown(results: Iterable[SynthesisResult]) -> str:
    """Table I as a Markdown table."""
    return _markdown_table(_TABLE1_HEADER, _table1_rows(results))


# --------------------------------------------------------------------------- #
# Table II
# --------------------------------------------------------------------------- #
def _table2_rows(estimates: Sequence[RoutingEstimate]) -> List[Sequence]:
    rows = []
    for layer in METAL_LAYERS:
        row: List = [layer]
        for estimate in estimates:
            row.append(f"{estimate.layer(layer):.0f}")
        rows.append(row)
    return rows


def _table2_header(estimates: Sequence[RoutingEstimate]) -> List[str]:
    return ["metal_layer"] + [
        f"{estimate.design}@{estimate.frequency_mhz:.0f}MHz_um" for estimate in estimates
    ]


def table2_to_csv(estimates: Sequence[RoutingEstimate]) -> str:
    """Table II (wirelength per metal layer) as CSV text."""
    return _csv_text(_table2_header(estimates), _table2_rows(estimates))


def table2_to_markdown(estimates: Sequence[RoutingEstimate]) -> str:
    """Table II as a Markdown table."""
    return _markdown_table(_table2_header(estimates), _table2_rows(estimates))


# --------------------------------------------------------------------------- #
# Table III
# --------------------------------------------------------------------------- #
def _table3_header(table: Table3Data) -> List[str]:
    return (
        ["kernel", "riscv_size", "gpu_size", "riscv_kcycles"]
        + [f"gpu_{num_cus}cu_kcycles" for num_cus in table.cu_counts]
    )


def _table3_rows(table: Table3Data) -> List[Sequence]:
    rows = []
    for kernel, row in table.rows.items():
        cells: List = [kernel, row.riscv_size, row.gpu_size, f"{row.riscv.kcycles:.1f}"]
        cells.extend(f"{row.gpu_kcycles(num_cus):.1f}" for num_cus in table.cu_counts)
        rows.append(cells)
    return rows


def table3_to_csv(table: Table3Data) -> str:
    """Table III (input sizes and cycle counts) as CSV text."""
    return _csv_text(_table3_header(table), _table3_rows(table))


def table3_to_markdown(table: Table3Data) -> str:
    """Table III as a Markdown table."""
    return _markdown_table(_table3_header(table), _table3_rows(table))


# --------------------------------------------------------------------------- #
# Multi-device makespan sweep (PR 4)
# --------------------------------------------------------------------------- #
_MULTIDEVICE_HEADER = (
    "devices",
    "makespan_kcycles",
    "speedup",
    "compute_kcycles",
    "transfer_kcycles",
    "transfer_fraction",
    "mean_utilization",
)


def _multidevice_rows(table: MultiDeviceTable) -> List[Sequence]:
    rows = []
    for count in table.device_counts:
        cell = table.cell(count)
        rows.append(
            (
                count,
                f"{cell.makespan_kcycles:.1f}",
                f"{table.speedup(count):.2f}",
                f"{cell.compute_cycles / 1e3:.1f}",
                f"{cell.transfer_cycles / 1e3:.1f}",
                f"{cell.transfer_fraction:.3f}",
                f"{cell.mean_utilization:.3f}",
            )
        )
    return rows


def multidevice_to_csv(table: MultiDeviceTable) -> str:
    """The makespan-vs-device-count sweep as CSV text."""
    return _csv_text(_MULTIDEVICE_HEADER, _multidevice_rows(table))


def multidevice_to_markdown(table: MultiDeviceTable) -> str:
    """The makespan-vs-device-count sweep as a Markdown table."""
    return _markdown_table(_MULTIDEVICE_HEADER, _multidevice_rows(table))


# --------------------------------------------------------------------------- #
# Two-stage-DAG transfer-mode sweep (PR 5)
# --------------------------------------------------------------------------- #
_PIPELINE_HEADER = (
    "mode",
    "devices",
    "makespan_kcycles",
    "improvement_vs_host",
    "transfer_kcycles",
    "p2p_transfers",
    "readback_transfers",
)


def _pipeline_rows(table: PipelineTable) -> List[Sequence]:
    rows = []
    for mode in table.modes:
        for count in table.device_counts:
            cell = table.cell(mode, count)
            rows.append(
                (
                    mode,
                    count,
                    f"{cell.makespan_kcycles:.1f}",
                    f"{table.improvement(mode, count):.2f}",
                    f"{cell.transfer_cycles / 1e3:.1f}",
                    cell.transfers_p2p,
                    cell.transfers_from_device,
                )
            )
    return rows


def pipeline_to_csv(table: PipelineTable) -> str:
    """The two-stage-DAG transfer-mode sweep as CSV text."""
    return _csv_text(_PIPELINE_HEADER, _pipeline_rows(table))


def pipeline_to_markdown(table: PipelineTable) -> str:
    """The two-stage-DAG transfer-mode sweep as a Markdown table."""
    return _markdown_table(_PIPELINE_HEADER, _pipeline_rows(table))


# --------------------------------------------------------------------------- #
# Topology × scheduler ablation (PR 8)
# --------------------------------------------------------------------------- #
_TOPOLOGY_HEADER = (
    "dag",
    "topology",
    "scheduler",
    "devices",
    "makespan_kcycles",
    "speedup_vs_lpt",
    "transfer_kcycles",
    "p2p_transfers",
    "mean_utilization",
)


def _topology_rows(table: TopologyTable) -> List[Sequence]:
    rows = []
    for dag in table.dags:
        for topology in table.topologies:
            for scheduler in table.schedulers:
                for count in table.device_counts:
                    cell = table.cell(dag, topology, scheduler, count)
                    rows.append(
                        (
                            dag,
                            topology,
                            scheduler,
                            count,
                            f"{cell.makespan_kcycles:.1f}",
                            f"{table.speedup_vs_lpt(dag, topology, scheduler, count):.2f}",
                            f"{cell.transfer_cycles / 1e3:.1f}",
                            cell.transfers_p2p,
                            f"{cell.mean_utilization:.3f}",
                        )
                    )
    return rows


def topology_to_csv(table: TopologyTable) -> str:
    """The topology × scheduler ablation as CSV text."""
    return _csv_text(_TOPOLOGY_HEADER, _topology_rows(table))


def topology_to_markdown(table: TopologyTable) -> str:
    """The topology × scheduler ablation as a Markdown table."""
    return _markdown_table(_TOPOLOGY_HEADER, _topology_rows(table))


# --------------------------------------------------------------------------- #
# Figs. 5 / 6 and the energy extension
# --------------------------------------------------------------------------- #
def speedups_to_csv(series: SpeedupSeries) -> str:
    """A speed-up (or energy-gain) series as CSV text."""
    header = ["kernel"] + [f"{num_cus}cu" for num_cus in series.cu_counts]
    rows = []
    for kernel in series.kernels:
        rows.append(
            [kernel] + [f"{series.value(kernel, num_cus):.2f}" for num_cus in series.cu_counts]
        )
    return _csv_text(header, rows)


def speedups_to_markdown(series: SpeedupSeries) -> str:
    """A speed-up (or energy-gain) series as a Markdown table."""
    header = ["kernel"] + [f"{num_cus} CU" for num_cus in series.cu_counts]
    rows = []
    for kernel in series.kernels:
        rows.append(
            [kernel] + [f"{series.value(kernel, num_cus):.2f}" for num_cus in series.cu_counts]
        )
    return _markdown_table(header, rows)


def energy_to_csv(comparison: EnergyComparison) -> str:
    """The energy comparison (per-run energy and gain) as CSV text."""
    header = ["kernel", "riscv_energy_mj"]
    for num_cus in comparison.cu_counts:
        header.extend([f"gpu_{num_cus}cu_energy_mj", f"gpu_{num_cus}cu_gain"])
    rows = []
    for kernel in comparison.kernels:
        cells: List = [kernel, f"{comparison.riscv[kernel].energy_mj:.4f}"]
        for num_cus in comparison.cu_counts:
            cells.append(f"{comparison.gpu[kernel][num_cus].energy_mj:.4f}")
            cells.append(f"{comparison.gain(kernel, num_cus):.2f}")
        rows.append(cells)
    return _csv_text(header, rows)


# --------------------------------------------------------------------------- #
# Bundle writer
# --------------------------------------------------------------------------- #
def write_report_bundle(
    directory: str,
    table1: Optional[Iterable[SynthesisResult]] = None,
    table2: Optional[Sequence[RoutingEstimate]] = None,
    table3: Optional[Table3Data] = None,
    figure5: Optional[SpeedupSeries] = None,
    figure6: Optional[SpeedupSeries] = None,
    energy: Optional[EnergyComparison] = None,
    multidevice: Optional[MultiDeviceTable] = None,
    pipeline: Optional[PipelineTable] = None,
    topology: Optional[TopologyTable] = None,
) -> Dict[str, str]:
    """Write every provided table/figure as CSV (and Markdown) into ``directory``.

    Returns the mapping from artifact name to file path; artifacts whose data
    was not provided are simply skipped.
    """
    os.makedirs(directory, exist_ok=True)
    written: Dict[str, str] = {}

    def _write(name: str, text: str) -> None:
        # Atomic (temp + rename): a reader or a crashed run never sees a
        # truncated artifact, only the previous or the new complete file.
        path = os.path.join(directory, name)
        atomic_write_text(path, text)
        written[name] = path

    if table1 is not None:
        results = list(table1)
        _write("table1.csv", table1_to_csv(results))
        _write("table1.md", table1_to_markdown(results))
    if table2 is not None:
        _write("table2.csv", table2_to_csv(table2))
        _write("table2.md", table2_to_markdown(table2))
    if table3 is not None:
        _write("table3.csv", table3_to_csv(table3))
        _write("table3.md", table3_to_markdown(table3))
    if figure5 is not None:
        _write("figure5_speedup.csv", speedups_to_csv(figure5))
        _write("figure5_speedup.md", speedups_to_markdown(figure5))
    if figure6 is not None:
        _write("figure6_speedup_per_area.csv", speedups_to_csv(figure6))
        _write("figure6_speedup_per_area.md", speedups_to_markdown(figure6))
    if energy is not None:
        _write("energy_extension.csv", energy_to_csv(energy))
        _write("energy_extension.md", speedups_to_markdown(energy.gain_series()))
    if multidevice is not None:
        _write("multidevice_makespan.csv", multidevice_to_csv(multidevice))
        _write("multidevice_makespan.md", multidevice_to_markdown(multidevice))
    if pipeline is not None:
        _write("pipeline_transfer_modes.csv", pipeline_to_csv(pipeline))
        _write("pipeline_transfer_modes.md", pipeline_to_markdown(pipeline))
    if topology is not None:
        _write("topology_schedulers.csv", topology_to_csv(topology))
        _write("topology_schedulers.md", topology_to_markdown(topology))
    return written
