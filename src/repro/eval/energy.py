"""Energy and energy-efficiency evaluation (an extension of Figs. 5-6).

The paper motivates G-GPU with *energy efficiency* but reports only
performance (Fig. 5) and performance per area (Fig. 6).  This module closes
the loop with the data the library already produces: the synthesized power of
every G-GPU version and of the RISC-V baseline (Table-I model) combined with
the measured cycle counts (Table-III harness) gives energy per benchmark,
energy-delay product, and the energy-efficiency gain over the RISC-V --
"Fig. 7", the figure the paper could have plotted.

The same pessimistic input-size scaling as Fig. 5 is applied to the RISC-V
cycle counts so the comparison is at equal work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import KernelError
from repro.eval.benchmarks import Table3Data
from repro.eval.comparison import SpeedupSeries
from repro.planner.optimizer import TimingOptimizer
from repro.planner.spec import GGPUSpec
from repro.rtl.generator import generate_ggpu_netlist, riscv_reference_netlist
from repro.synth.logic import LogicSynthesis
from repro.tech.technology import Technology


@dataclass(frozen=True)
class EnergyFigures:
    """Energy metrics of one benchmark run on one target."""

    kernel: str
    target: str
    cycles: float
    frequency_mhz: float
    power_w: float

    @property
    def runtime_ms(self) -> float:
        """Wall-clock time of the run at the target's clock frequency."""
        return self.cycles / (self.frequency_mhz * 1.0e3)

    @property
    def energy_mj(self) -> float:
        """Energy of the run in millijoules."""
        return self.power_w * self.runtime_ms

    @property
    def edp_mj_ms(self) -> float:
        """Energy-delay product (mJ x ms)."""
        return self.energy_mj * self.runtime_ms


@dataclass
class EnergyComparison:
    """Energy figures of every kernel on the RISC-V and on each G-GPU version.

    ``gain`` (the headline series) is the energy-efficiency gain of the G-GPU
    over the RISC-V at equal work: RISC-V energy scaled by the input-size
    ratio divided by G-GPU energy.
    """

    frequency_mhz: float
    riscv_power_w: float
    ggpu_power_w: Dict[int, float] = field(default_factory=dict)
    riscv: Dict[str, EnergyFigures] = field(default_factory=dict)
    gpu: Dict[str, Dict[int, EnergyFigures]] = field(default_factory=dict)
    size_scale: Dict[str, float] = field(default_factory=dict)

    @property
    def kernels(self) -> List[str]:
        return list(self.gpu)

    @property
    def cu_counts(self) -> List[int]:
        return sorted(self.ggpu_power_w)

    def gain(self, kernel: str, num_cus: int) -> float:
        """Energy-efficiency gain over the RISC-V (input-size scaled)."""
        try:
            gpu = self.gpu[kernel][num_cus]
            riscv = self.riscv[kernel]
        except KeyError as exc:
            raise KernelError(f"no energy data for {kernel!r} at {num_cus} CU(s)") from exc
        scaled_riscv_energy = riscv.energy_mj * self.size_scale[kernel]
        return scaled_riscv_energy / gpu.energy_mj

    def gain_series(self) -> SpeedupSeries:
        """The gains as a bar-chart series (rendered like Figs. 5-6)."""
        series = SpeedupSeries(metric="energy_gain", cu_counts=tuple(self.cu_counts))
        for kernel in self.kernels:
            series.values[kernel] = {
                num_cus: self.gain(kernel, num_cus) for num_cus in self.cu_counts
            }
        return series

    def best(self) -> float:
        """Largest energy-efficiency gain in the comparison."""
        return max(self.gain(kernel, cus) for kernel in self.kernels for cus in self.cu_counts)


def synthesized_power_w(
    tech: Technology,
    cu_counts: Iterable[int],
    frequency_mhz: float,
    optimizer: Optional[TimingOptimizer] = None,
) -> Dict[int, float]:
    """Total power of the optimized G-GPU versions at ``frequency_mhz``."""
    synthesis = LogicSynthesis(tech)
    optimizer = optimizer or TimingOptimizer(tech)
    powers: Dict[int, float] = {}
    for num_cus in cu_counts:
        spec = GGPUSpec(num_cus=num_cus, target_frequency_mhz=frequency_mhz)
        netlist = generate_ggpu_netlist(spec.architecture(), name=spec.label)
        optimizer.close_timing(netlist, frequency_mhz)
        powers[num_cus] = synthesis.run(netlist, frequency_mhz).total_power_w
    return powers


def riscv_power_w(tech: Technology, frequency_mhz: float) -> float:
    """Total power of the synthesized RISC-V baseline at ``frequency_mhz``."""
    return LogicSynthesis(tech).run(riscv_reference_netlist(), frequency_mhz).total_power_w


def build_energy_comparison(
    table3: Table3Data,
    tech: Technology,
    frequency_mhz: float = 667.0,
    cu_counts: Optional[Sequence[int]] = None,
) -> EnergyComparison:
    """Combine Table-III cycle counts with synthesized power into energy figures."""
    counts = list(cu_counts) if cu_counts is not None else list(table3.cu_counts)
    comparison = EnergyComparison(
        frequency_mhz=frequency_mhz,
        riscv_power_w=riscv_power_w(tech, frequency_mhz),
        ggpu_power_w=synthesized_power_w(tech, counts, frequency_mhz),
    )
    for kernel, row in table3.rows.items():
        comparison.riscv[kernel] = EnergyFigures(
            kernel=kernel,
            target="riscv",
            cycles=row.riscv.cycles,
            frequency_mhz=frequency_mhz,
            power_w=comparison.riscv_power_w,
        )
        comparison.size_scale[kernel] = row.gpu_size / row.riscv_size
        comparison.gpu[kernel] = {
            num_cus: EnergyFigures(
                kernel=kernel,
                target=f"ggpu_{num_cus}cu",
                cycles=row.gpu[num_cus].cycles,
                frequency_mhz=frequency_mhz,
                power_w=comparison.ggpu_power_w[num_cus],
            )
            for num_cus in counts
        }
    return comparison


def format_energy_table(comparison: EnergyComparison) -> str:
    """Fixed-width text table of energy per run and gain over the RISC-V."""
    cu_counts = comparison.cu_counts
    header_cells = ["Kernel".ljust(14), "RISC-V (mJ)".rjust(12)]
    for num_cus in cu_counts:
        header_cells.append(f"{num_cus}CU (mJ)".rjust(12))
        header_cells.append(f"{num_cus}CU gain".rjust(10))
    header = " ".join(header_cells)
    lines = [header, "-" * len(header)]
    for kernel in comparison.kernels:
        cells = [kernel.ljust(14), f"{comparison.riscv[kernel].energy_mj:.3f}".rjust(12)]
        for num_cus in cu_counts:
            cells.append(f"{comparison.gpu[kernel][num_cus].energy_mj:.3f}".rjust(12))
            cells.append(f"{comparison.gain(kernel, num_cus):.1f}x".rjust(10))
        lines.append(" ".join(cells))
    return "\n".join(lines)
