"""Multi-device sweeps: makespan vs device count, and transfer-mode ablation.

The paper evaluates one simulated G-GPU at a time; these sweeps ask the
platform question instead.  :func:`run_multidevice_table` measures how the
wall-clock (in simulated cycles) of an *independent-launch batch* of the
whole kernel suite shrinks as the host schedules it across more G-GPU
instances; each cell runs one
:class:`~repro.runtime.multidevice.OutOfOrderQueue` over ``device_count``
devices, enqueues every kernel once (no event dependencies: the batch is
embarrassingly launch-parallel), verifies every output buffer against the
kernel's reference, and reports the queue's makespan, its transfer vs
compute cycle breakdown, and the per-device utilization.

:func:`run_pipeline_table` (PR 5) measures a *two-stage saxpy DAG* with a
cross-lane shuffle — stage 2 of lane ``l`` consumes stage-1 outputs of lanes
``l`` and ``l+1``, so at two or more devices every schedule must move dirty
buffers between devices — under three transfer modes:

* ``host`` — the PR 4 path: every cross-device hand-off bounces through the
  host (read-back + write, two hops);
* ``p2p`` — the same schedule with direct device↔device transfers enabled
  (:meth:`~repro.arch.config.TransferConfig.with_p2p`);
* ``p2p-prefetch`` — P2P plus the PR 5 scheduling knobs: ``enqueue_write``
  prefetch and per-launch ``device=`` affinity hints (lane → device
  round-robin) with the LPT flush order.

Determinism and bit-exactness are part of the protocol:

* buffer addresses are identical across device counts (the queue allocates
  eagerly on every device), so each launch's simulated cycle count is the
  same in every cell — both table builders assert it, the pipeline table
  across transfer modes too;
* with ``jobs == 1`` the cells share one device pool, recycled through
  :meth:`~repro.simt.gpu.GGPUSimulator.reset`; with ``jobs > 1`` each worker
  process builds a fresh pool.  Both paths must produce the same table
  (``tests/tools/determinism_check.py`` and the CI determinism job compare
  them).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.arch.config import GGPUConfig, Topology, TransferConfig
from repro.arch.kernel import NDRange
from repro.errors import KernelError
from repro.eval.benchmarks import DEFAULT_SEED, BenchmarkSizes
from repro.kernels import all_kernel_names, get_kernel_spec
from repro.runtime.checkpoint import PathLike, SweepJournal, cell_key, open_journal
from repro.runtime.multidevice import OutOfOrderQueue
from repro.runtime.parallel import default_jobs, parallel_map
from repro.simt.gpu import GGPUSimulator

# One device pool comfortably holds the scaled suite's buffers.
CELL_MEMORY_BYTES = 32 * 1024 * 1024


@dataclass
class MultiDeviceCell:
    """One device-count cell of the multi-device table."""

    device_count: int
    kernels: List[str]
    makespan: float
    compute_cycles: float
    transfer_cycles: float
    critical_path_cycles: float
    utilization: Dict[int, float]
    # Captured from QueueStats at snapshot time (single source of truth for
    # the derived-metric definitions).
    mean_utilization: float
    transfer_fraction: float
    launches: int
    transfers_skipped: int
    # (label, device, start, end, transfer_cycles, compute_cycles) per launch,
    # in execution order — the event-graph schedule, JSON-friendly.
    schedule: List[Tuple[str, int, float, float, float, float]] = field(default_factory=list)

    @property
    def makespan_kcycles(self) -> float:
        return self.makespan / 1.0e3


@dataclass
class MultiDeviceTable:
    """Makespan vs device count for one independent-launch kernel batch."""

    cells: Dict[int, MultiDeviceCell] = field(default_factory=dict)
    kernels: List[str] = field(default_factory=list)
    scale: float = 1.0

    @property
    def device_counts(self) -> List[int]:
        return sorted(self.cells)

    def cell(self, device_count: int) -> MultiDeviceCell:
        try:
            return self.cells[device_count]
        except KeyError as exc:
            raise KernelError(
                f"multi-device table has no cell for {device_count} devices"
            ) from exc

    def speedup(self, device_count: int) -> float:
        """Makespan improvement of ``device_count`` devices over the smallest cell."""
        baseline = self.cell(min(self.cells))
        cell = self.cell(device_count)
        if cell.makespan <= 0.0:
            return 0.0
        return baseline.makespan / cell.makespan


def _schedule_entries(
    queue: OutOfOrderQueue,
) -> List[Tuple[str, int, float, float, float, float]]:
    """The executed launches as JSON-friendly schedule tuples."""
    return [
        (
            event.label,
            int(event.device if event.device is not None else -1),
            float(event.start_cycle),
            float(event.end_cycle),
            float(event.transfer_cycles),
            float(event.compute_cycles),
        )
        for event in queue.schedule
    ]


def _run_cell_on_queue(
    queue: OutOfOrderQueue,
    kernels: Sequence[str],
    scale: float,
    seed: int,
) -> MultiDeviceCell:
    """Enqueue every kernel once (independent launches), verify, measure."""
    checks = []
    for name in kernels:
        spec = get_kernel_spec(name)
        sizes = BenchmarkSizes.paper(name)
        if scale != 1.0:
            sizes = sizes.scaled(scale)
        workload = spec.workload(sizes.gpu_size, seed)
        args: Dict[str, object] = dict(workload.scalars)
        buffers = {}
        for buffer_name, contents in workload.buffers.items():
            buffers[buffer_name] = queue.create_buffer(
                np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
            )
            args[buffer_name] = buffers[buffer_name]
        queue.enqueue(spec.build(), workload.ndrange, args, label=name)
        for buffer_name, expected in workload.expected.items():
            checks.append((name, buffer_name, buffers[buffer_name], expected))
    queue.finish()
    stats = queue.stats
    makespan = stats.makespan  # before read-back charges: the batch makespan
    cell = MultiDeviceCell(
        device_count=queue.num_devices,
        kernels=list(kernels),
        makespan=makespan,
        compute_cycles=stats.compute_cycles,
        transfer_cycles=stats.transfer_cycles,
        critical_path_cycles=stats.critical_path_cycles,
        utilization=stats.device_utilization(),
        mean_utilization=stats.utilization,
        transfer_fraction=stats.transfer_fraction,
        launches=stats.launches,
        transfers_skipped=stats.transfers_skipped,
        schedule=_schedule_entries(queue),
    )
    for kernel_name, buffer_name, buffer, expected in checks:
        observed = queue.enqueue_read(buffer).astype(np.int64)
        expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
        if not np.array_equal(observed, expected_u32):
            raise KernelError(
                f"multi-device launch of {kernel_name!r} produced wrong values "
                f"in {buffer_name!r} on {queue.num_devices} devices"
            )
    return cell


def _multidevice_cell_key(
    count: int, names: Sequence[str], scale: float, seed: int, lpt: bool
) -> str:
    """Determinism digest of one multi-device cell (config/transfer live in
    the journal meta, so the key only needs the per-cell coordinates)."""
    return cell_key(
        device_count=count, kernels=list(names), scale=scale, seed=seed, lpt=lpt
    )


def _cell_from_json(cls: type, payload: Dict[str, Any]) -> Any:
    """Rebuild a table cell from its journal payload (JSON round-trip safe).

    JSON turns the schedule tuples into lists and integer dict keys into
    strings; this restores both so a resumed cell compares equal to a
    recomputed one.
    """
    data = dict(payload)
    data["schedule"] = [tuple(entry) for entry in data["schedule"]]
    if "utilization" in data:
        data["utilization"] = {
            int(device): value for device, value in data["utilization"].items()
        }
    return cls(**data)


def _run_cell_task(task: tuple) -> MultiDeviceCell:
    """Worker entry for one cell (module level: picklable)."""
    device_count, kernels, scale, seed, config, transfer, lpt = task
    queue = OutOfOrderQueue(
        config=config,
        num_devices=device_count,
        memory_bytes=CELL_MEMORY_BYTES,
        transfer=transfer,
        lpt=lpt,
    )
    return _run_cell_on_queue(queue, kernels, scale, seed)


def run_multidevice_table(
    device_counts: Sequence[int] = (1, 2, 4),
    kernels: Optional[Sequence[str]] = None,
    scale: float = 0.25,
    seed: int = DEFAULT_SEED,
    config: Optional[GGPUConfig] = None,
    transfer: Optional[TransferConfig] = None,
    jobs: Optional[int] = None,
    lpt: bool = False,
    journal: Union[None, PathLike, SweepJournal] = None,
) -> MultiDeviceTable:
    """Measure the suite's makespan at every device count.

    ``jobs=None`` honours ``REPRO_JOBS``.  Serial runs recycle one device
    pool across cells (each queue resets the simulators it is handed);
    fanned-out runs build one pool per worker.  The resulting table is
    bit-identical either way, and every launch's simulated cycle count is
    asserted identical across cells.  ``lpt=True`` drains each queue
    longest-projected-time first, which tightens the makespan of this
    mixed-size batch at 4+ devices.

    ``journal`` makes the sweep resumable (see
    :mod:`repro.runtime.checkpoint`): finished cells are persisted
    atomically as they complete, and a re-run recomputes only the missing
    ones.  Resumed cells still go through the cross-cell bit-exactness
    assertion below.
    """
    if not device_counts:
        raise KernelError("need at least one device count")
    counts = list(device_counts)
    if len(set(counts)) != len(counts):
        raise KernelError(f"duplicate device counts: {counts}")
    names = list(kernels) if kernels is not None else all_kernel_names()
    config = config or GGPUConfig()
    effective_jobs = jobs if jobs is not None else default_jobs()
    transfer_model = transfer if transfer is not None else config.transfer
    book = open_journal(
        journal,
        meta={
            "sweep": "multidevice",
            "kernels": names,
            "scale": scale,
            "seed": seed,
            "lpt": lpt,
            "config": asdict(config),
            "transfer": asdict(transfer_model),
        },
    )

    table = MultiDeviceTable(kernels=names, scale=scale)
    missing = list(counts)
    if book is not None:
        missing = []
        for count in counts:
            cached = book.get(_multidevice_cell_key(count, names, scale, seed, lpt))
            if cached is not None:
                table.cells[count] = _cell_from_json(MultiDeviceCell, cached)
            else:
                missing.append(count)

    def _collect(position: int, cell: MultiDeviceCell) -> None:
        table.cells[cell.device_count] = cell
        if book is not None:
            key = _multidevice_cell_key(cell.device_count, names, scale, seed, lpt)
            book.record(key, asdict(cell))

    if effective_jobs == 1 or len(missing) <= 1:
        # Shared pool: build the widest cell once, reuse (reset) for the rest.
        pool = [
            GGPUSimulator(config, memory_bytes=CELL_MEMORY_BYTES)
            for _ in range(max(missing, default=0))
        ]
        for position, count in enumerate(missing):
            queue = OutOfOrderQueue(devices=pool[:count], transfer=transfer, lpt=lpt)
            _collect(position, _run_cell_on_queue(queue, names, scale, seed))
    else:
        tasks = [
            (count, tuple(names), scale, seed, config, transfer, lpt)
            for count in missing
        ]
        parallel_map(_run_cell_task, tasks, jobs=effective_jobs, on_result=_collect)

    # Bit-exactness across cells: the same launch simulates the same cycle
    # count whatever the device count (addresses are allocated in lock-step).
    reference = {
        label: compute
        for label, _, _, _, _, compute in table.cell(min(table.cells)).schedule
    }
    for cell in table.cells.values():
        for label, _, _, _, _, compute in cell.schedule:
            if reference.get(label) != compute:
                raise KernelError(
                    f"launch {label!r} simulated {compute} cycles on "
                    f"{cell.device_count} devices but {reference.get(label)} on "
                    f"{min(table.cells)}"
                )
    return table


# --------------------------------------------------------------------------- #
# Two-stage-DAG transfer-mode sweep (PR 5)
# --------------------------------------------------------------------------- #
PIPELINE_MODES: Tuple[str, ...] = ("host", "p2p", "p2p-prefetch")

# Direct device↔device link of the P2P modes: lower setup latency than the
# host bridge and a 4x-wider streaming phase (an on-package fabric next to
# the PCIe-ish host DMA defaults).
P2P_LINK_LATENCY_CYCLES = 150
P2P_LINK_BYTES_PER_CYCLE = 32.0


@dataclass
class PipelineCell:
    """One (transfer mode, device count) cell of the two-stage-DAG sweep."""

    mode: str
    device_count: int
    makespan: float
    compute_cycles: float
    transfer_cycles: float
    critical_path_cycles: float
    transfers_to_device: int
    transfers_from_device: int
    transfers_p2p: int
    transfers_skipped: int
    schedule: List[Tuple[str, int, float, float, float, float]] = field(
        default_factory=list
    )

    @property
    def makespan_kcycles(self) -> float:
        return self.makespan / 1.0e3


@dataclass
class PipelineTable:
    """Makespan of the two-stage shuffle DAG per transfer mode and device count."""

    cells: Dict[Tuple[str, int], PipelineCell] = field(default_factory=dict)
    modes: List[str] = field(default_factory=list)
    lanes: int = 0
    size: int = 0

    @property
    def device_counts(self) -> List[int]:
        return sorted({count for _, count in self.cells})

    def cell(self, mode: str, device_count: int) -> PipelineCell:
        try:
            return self.cells[(mode, device_count)]
        except KeyError as exc:
            raise KernelError(
                f"pipeline table has no cell for mode {mode!r} at "
                f"{device_count} devices"
            ) from exc

    def improvement(self, mode: str, device_count: int) -> float:
        """Makespan improvement of ``mode`` over the host-hop path at the
        same device count."""
        cell = self.cell(mode, device_count)
        if cell.makespan <= 0.0:
            return 0.0
        return self.cell("host", device_count).makespan / cell.makespan


def _run_pipeline_on_queue(
    queue: OutOfOrderQueue, lanes: int, size: int, hints: Optional[Dict[int, int]]
) -> PipelineCell:
    """Build, run, and verify the two-stage shuffle DAG on one queue.

    Stage 1 runs one ``saxpy`` per lane; stage 2 runs one ``saxpy`` per lane
    whose ``y`` input is the *next* lane's stage-1 output, so at two or more
    devices every schedule moves dirty buffers across devices.  ``hints``
    maps lanes to devices (affinity for both stages and the prefetch target
    of the lane's input writes); ``None`` leaves placement to the scheduler.
    """
    spec = get_kernel_spec("saxpy")
    saxpy = spec.build()
    ndrange = NDRange(size, 64)
    alpha, beta = 3, 5
    mask = 0xFFFFFFFF

    stage1_events, stage1_outs, stage1_hosts = [], [], []
    for lane in range(lanes):
        device = hints.get(lane) if hints is not None else None
        x_host = (np.arange(size, dtype=np.int64) + 17 * lane) & mask
        y_host = ((np.arange(size, dtype=np.int64) * 3 + lane) % 251) & mask
        x = queue.create_buffer(x_host, device=device)
        y = queue.create_buffer(y_host, device=device)
        out = queue.allocate_buffer(size)
        stage1_events.append(
            queue.enqueue(
                saxpy,
                ndrange,
                {"x": x, "y": y, "out": out, "alpha": alpha, "n": size},
                label=f"stage1[{lane}]",
                writes=("out",),
                device=device,
            )
        )
        stage1_outs.append(out)
        stage1_hosts.append((alpha * x_host + y_host) & mask)

    checks = []
    for lane in range(lanes):
        peer = (lane + 1) % lanes
        device = hints.get(lane) if hints is not None else None
        out = queue.allocate_buffer(size)
        queue.enqueue(
            saxpy,
            ndrange,
            {
                "x": stage1_outs[lane],
                "y": stage1_outs[peer],
                "out": out,
                "alpha": beta,
                "n": size,
            },
            label=f"stage2[{lane}]",
            wait_for=(stage1_events[lane], stage1_events[peer]),
            writes=("out",),
            device=device,
        )
        expected = (beta * stage1_hosts[lane] + stage1_hosts[peer]) & mask
        checks.append((lane, out, expected))
    queue.finish()

    stats = queue.stats
    makespan = stats.makespan  # before read-back charges: the DAG makespan
    cell = PipelineCell(
        mode="",  # filled by the caller
        device_count=queue.num_devices,
        makespan=makespan,
        compute_cycles=stats.compute_cycles,
        transfer_cycles=stats.transfer_cycles,
        critical_path_cycles=stats.critical_path_cycles,
        transfers_to_device=stats.transfers_to_device,
        transfers_from_device=stats.transfers_from_device,
        transfers_p2p=stats.transfers_p2p,
        transfers_skipped=stats.transfers_skipped,
        schedule=_schedule_entries(queue),
    )
    for lane, buffer, expected in checks:
        observed = queue.enqueue_read(buffer).astype(np.int64)
        if not np.array_equal(observed, expected):
            raise KernelError(
                f"two-stage DAG lane {lane} produced wrong values on "
                f"{queue.num_devices} devices"
            )
    return cell


def _pipeline_queue_options(
    mode: str,
    device_count: int,
    lanes: int,
    transfer: TransferConfig,
    p2p_latency_cycles: int,
    p2p_bytes_per_cycle: float,
) -> Tuple[TransferConfig, bool, Optional[Dict[int, int]]]:
    """(transfer model, LPT flag, lane→device hints) of one sweep mode."""
    if mode == "host":
        return transfer, False, None
    p2p = transfer.with_p2p(p2p_latency_cycles, p2p_bytes_per_cycle)
    if mode == "p2p":
        return p2p, False, None
    if mode == "p2p-prefetch":
        hints = {lane: lane % device_count for lane in range(lanes)}
        return p2p, True, hints
    raise KernelError(f"unknown pipeline mode {mode!r}: pick from {PIPELINE_MODES}")


def _run_pipeline_cell_task(task: tuple) -> PipelineCell:
    """Worker entry for one (mode, device count) cell (module level: picklable)."""
    mode, device_count, lanes, size, config, transfer, p2p_latency, p2p_bw = task
    model, lpt, hints = _pipeline_queue_options(
        mode, device_count, lanes, transfer, p2p_latency, p2p_bw
    )
    queue = OutOfOrderQueue(
        config=config,
        num_devices=device_count,
        memory_bytes=CELL_MEMORY_BYTES,
        transfer=model,
        lpt=lpt,
    )
    cell = _run_pipeline_on_queue(queue, lanes, size, hints)
    cell.mode = mode
    return cell


def run_pipeline_table(
    device_counts: Sequence[int] = (1, 2, 4),
    lanes: int = 8,
    size: int = 512,
    config: Optional[GGPUConfig] = None,
    transfer: Optional[TransferConfig] = None,
    p2p_latency_cycles: int = P2P_LINK_LATENCY_CYCLES,
    p2p_bytes_per_cycle: float = P2P_LINK_BYTES_PER_CYCLE,
    modes: Sequence[str] = PIPELINE_MODES,
    jobs: Optional[int] = None,
    journal: Union[None, PathLike, SweepJournal] = None,
) -> PipelineTable:
    """Measure the two-stage shuffle DAG under every transfer mode.

    One cell per (mode, device count); each cell verifies every lane's
    output.  ``jobs=None`` honours ``REPRO_JOBS``; serial runs recycle one
    device pool across cells, fanned-out runs build one per worker — the
    table is bit-identical either way.  Per-launch simulated cycle counts
    are asserted identical across *all* cells: the transfer mode and the
    scheduling hints move data and placement, never the simulated kernels.

    ``journal`` makes the sweep resumable (see
    :mod:`repro.runtime.checkpoint`): a killed run recomputes only the
    (mode, device count) cells the journal has not recorded.
    """
    if not device_counts:
        raise KernelError("need at least one device count")
    counts = list(device_counts)
    if len(set(counts)) != len(counts):
        raise KernelError(f"duplicate device counts: {counts}")
    if lanes < 2:
        raise KernelError(f"the shuffle DAG needs at least two lanes, got {lanes}")
    mode_list = list(modes)
    if "host" not in mode_list:
        raise KernelError("the pipeline sweep needs the 'host' baseline mode")
    config = config or GGPUConfig()
    base_transfer = transfer if transfer is not None else config.transfer
    effective_jobs = jobs if jobs is not None else default_jobs()
    book = open_journal(
        journal,
        meta={
            "sweep": "pipeline",
            "lanes": lanes,
            "size": size,
            "modes": mode_list,
            "config": asdict(config),
            "transfer": asdict(base_transfer),
            "p2p_latency_cycles": p2p_latency_cycles,
            "p2p_bytes_per_cycle": p2p_bytes_per_cycle,
        },
    )

    table = PipelineTable(modes=mode_list, lanes=lanes, size=size)
    grid = [(mode, count) for mode in mode_list for count in counts]
    missing = list(grid)
    if book is not None:
        missing = []
        for mode, count in grid:
            cached = book.get(cell_key(mode=mode, device_count=count))
            if cached is not None:
                table.cells[(mode, count)] = _cell_from_json(PipelineCell, cached)
            else:
                missing.append((mode, count))

    def _collect(position: int, cell: PipelineCell) -> None:
        table.cells[(cell.mode, cell.device_count)] = cell
        if book is not None:
            book.record(
                cell_key(mode=cell.mode, device_count=cell.device_count), asdict(cell)
            )

    tasks = [
        (
            mode,
            count,
            lanes,
            size,
            config,
            base_transfer,
            p2p_latency_cycles,
            p2p_bytes_per_cycle,
        )
        for mode, count in missing
    ]
    if effective_jobs == 1 or len(tasks) <= 1:
        # Shared pool: build the widest cell once, reuse (reset) for the rest.
        pool = [
            GGPUSimulator(config, memory_bytes=CELL_MEMORY_BYTES)
            for _ in range(max((count for _, count in missing), default=0))
        ]
        for position, (mode, count) in enumerate(missing):
            model, lpt, hints = _pipeline_queue_options(
                mode, count, lanes, base_transfer, p2p_latency_cycles, p2p_bytes_per_cycle
            )
            queue = OutOfOrderQueue(devices=pool[:count], transfer=model, lpt=lpt)
            cell = _run_pipeline_on_queue(queue, lanes, size, hints)
            cell.mode = mode
            _collect(position, cell)
    else:
        parallel_map(_run_pipeline_cell_task, tasks, jobs=effective_jobs, on_result=_collect)

    # Bit-exactness across every mode and device count: transfers and hints
    # reshape the schedule, never the simulated kernel cycles.
    first = table.cell(mode_list[0], min(counts))
    reference = {label: compute for label, _, _, _, _, compute in first.schedule}
    for cell in table.cells.values():
        for label, _, _, _, _, compute in cell.schedule:
            if reference.get(label) != compute:
                raise KernelError(
                    f"launch {label!r} simulated {compute} cycles in mode "
                    f"{cell.mode!r} at {cell.device_count} devices but "
                    f"{reference.get(label)} in the reference cell"
                )
    return table


# --------------------------------------------------------------------------- #
# Topology × scheduler ablation (PR 8)
# --------------------------------------------------------------------------- #
TOPOLOGY_PRESETS: Tuple[str, ...] = ("flat", "two-switch", "ring")
TOPOLOGY_SCHEDULERS: Tuple[str, ...] = ("lpt", "heft", "stealing")
TOPOLOGY_DAGS: Tuple[str, ...] = ("layered", "shuffle")

# The topology DAGs carry many small buffers, never the full kernel suite;
# a slim per-device memory keeps a 64-device pool affordable.
TOPOLOGY_CELL_MEMORY_BYTES = 4 * 1024 * 1024


@dataclass
class TopologyCell:
    """One (DAG, topology, scheduler, device count) cell of the ablation."""

    dag: str
    topology: str
    scheduler: str
    device_count: int
    makespan: float
    compute_cycles: float
    transfer_cycles: float
    critical_path_cycles: float
    mean_utilization: float
    transfers_to_device: int
    transfers_from_device: int
    transfers_p2p: int
    transfers_skipped: int
    schedule: List[Tuple[str, int, float, float, float, float]] = field(
        default_factory=list
    )

    @property
    def makespan_kcycles(self) -> float:
        return self.makespan / 1.0e3


@dataclass
class TopologyTable:
    """Makespan of the topology DAGs per topology, scheduler, device count."""

    cells: Dict[Tuple[str, str, str, int], TopologyCell] = field(default_factory=dict)
    dags: List[str] = field(default_factory=list)
    topologies: List[str] = field(default_factory=list)
    schedulers: List[str] = field(default_factory=list)
    width: int = 0
    depth: int = 0
    size: int = 0
    lanes: int = 0
    stages: int = 0

    @property
    def device_counts(self) -> List[int]:
        return sorted({count for _, _, _, count in self.cells})

    def cell(
        self, dag: str, topology: str, scheduler: str, device_count: int
    ) -> TopologyCell:
        try:
            return self.cells[(dag, topology, scheduler, device_count)]
        except KeyError as exc:
            raise KernelError(
                f"topology table has no cell for dag {dag!r}, topology "
                f"{topology!r}, scheduler {scheduler!r} at {device_count} devices"
            ) from exc

    def speedup_vs_lpt(
        self, dag: str, topology: str, scheduler: str, device_count: int
    ) -> float:
        """Makespan improvement of ``scheduler`` over LPT in the same
        (DAG, topology, device count) cell; 0.0 on an empty/degenerate cell."""
        cell = self.cell(dag, topology, scheduler, device_count)
        if cell.makespan <= 0.0:
            return 0.0
        return self.cell(dag, topology, "lpt", device_count).makespan / cell.makespan


def _build_layered_dag(
    queue: OutOfOrderQueue, width: int, depth: int, size: int, seed: int
) -> List[Tuple[str, Any, np.ndarray]]:
    """A layered inference-style DAG: a deep backbone next to wide heads.

    The *backbone* is a ``depth``-long chain of medium ``copy`` layers (each
    consuming the previous layer's activations); the *heads* are ``width``
    independent big ``copy`` tasks (4x the backbone size).  The shape is the
    classic LPT trap: LPT drains the big heads first, so the backbone — the
    actual critical path — starts only once every device is ``width/P`` heads
    deep, while HEFT ranks the backbone highest and overlaps it with the
    heads.  The DAG is identical at every device count, so per-launch cycles
    can be asserted bit-exact across cells.
    """
    mask = 0xFFFFFFFF
    copy = get_kernel_spec("copy").build()
    checks: List[Tuple[str, Any, np.ndarray]] = []
    backbone_host = (np.arange(size, dtype=np.int64) * 7 + seed) & mask
    previous = queue.create_buffer(backbone_host)
    for layer in range(depth):
        activation = queue.allocate_buffer(size)
        queue.enqueue(
            copy,
            NDRange(size, 64),
            {"dst": activation, "src": previous, "n": size},
            label=f"backbone[{layer}]",
            writes=("dst",),
        )
        previous = activation
    checks.append(("backbone", previous, backbone_host))
    head_size = 4 * size
    for index in range(width):
        host = (np.arange(head_size, dtype=np.int64) * 3 + 11 * index + seed) & mask
        source = queue.create_buffer(host)
        head = queue.allocate_buffer(head_size)
        queue.enqueue(
            copy,
            NDRange(head_size, 64),
            {"dst": head, "src": source, "n": head_size},
            label=f"head[{index}]",
            writes=("dst",),
        )
        checks.append((f"head[{index}]", head, host))
    return checks


def _build_shuffle_dag(
    queue: OutOfOrderQueue, lanes: int, stages: int, size: int, seed: int
) -> List[Tuple[str, Any, np.ndarray]]:
    """A multi-stage shuffle: every stage mixes each lane with a shifted peer.

    Stage ``s`` of lane ``l`` runs ``saxpy`` over the stage ``s-1`` outputs of
    lanes ``l`` and ``(l+s) % lanes`` — the shuffle distance grows with the
    stage, so data crosses progressively farther links on a non-flat
    topology.  At two or more devices every schedule moves dirty buffers
    between devices; placement-aware schedulers keep the moves on cheap
    links.
    """
    mask = 0xFFFFFFFF
    saxpy = get_kernel_spec("saxpy").build()
    ndrange = NDRange(size, 64)
    alpha = 3
    hosts = [
        ((np.arange(size, dtype=np.int64) * 5 + 13 * lane + seed) % 65521) & mask
        for lane in range(lanes)
    ]
    buffers = [queue.create_buffer(host) for host in hosts]
    events: List[Optional[Any]] = [None] * lanes
    for stage in range(1, stages + 1):
        shift = stage % lanes
        next_hosts, next_buffers, next_events = [], [], []
        for lane in range(lanes):
            peer = (lane + shift) % lanes
            out = queue.allocate_buffer(size)
            waits = tuple(
                event
                for event in {
                    id(events[lane]): events[lane],
                    id(events[peer]): events[peer],
                }.values()
                if event is not None
            )
            event = queue.enqueue(
                saxpy,
                ndrange,
                {
                    "x": buffers[lane],
                    "y": buffers[peer],
                    "out": out,
                    "alpha": alpha,
                    "n": size,
                },
                label=f"shuffle[{stage}][{lane}]",
                wait_for=waits,
                writes=("out",),
            )
            next_hosts.append((alpha * hosts[lane] + hosts[peer]) & mask)
            next_buffers.append(out)
            next_events.append(event)
        hosts, buffers, events = next_hosts, next_buffers, next_events
    return [
        (f"shuffle[{stages}][{lane}]", buffers[lane], hosts[lane])
        for lane in range(lanes)
    ]


def _run_topology_cell_on_queue(
    queue: OutOfOrderQueue,
    dag: str,
    width: int,
    depth: int,
    size: int,
    lanes: int,
    stages: int,
    seed: int,
) -> TopologyCell:
    """Build, run, and verify one DAG on one queue; snapshot the stats."""
    if dag == "layered":
        checks = _build_layered_dag(queue, width, depth, size, seed)
    elif dag == "shuffle":
        checks = _build_shuffle_dag(queue, lanes, stages, size, seed)
    else:
        raise KernelError(f"unknown topology DAG {dag!r}: pick from {TOPOLOGY_DAGS}")
    queue.finish()
    stats = queue.stats
    makespan = stats.makespan  # before read-back charges: the DAG makespan
    cell = TopologyCell(
        dag=dag,
        topology="",  # filled by the caller
        scheduler=queue.scheduler,
        device_count=queue.num_devices,
        makespan=makespan,
        compute_cycles=stats.compute_cycles,
        transfer_cycles=stats.transfer_cycles,
        critical_path_cycles=stats.critical_path_cycles,
        mean_utilization=stats.utilization,
        transfers_to_device=stats.transfers_to_device,
        transfers_from_device=stats.transfers_from_device,
        transfers_p2p=stats.transfers_p2p,
        transfers_skipped=stats.transfers_skipped,
        schedule=_schedule_entries(queue),
    )
    for label, buffer, expected in checks:
        observed = queue.enqueue_read(buffer).astype(np.int64)
        expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
        if not np.array_equal(observed, expected_u32):
            raise KernelError(
                f"topology DAG {dag!r} produced wrong values in {label!r} with "
                f"scheduler {queue.scheduler!r} on {queue.num_devices} devices"
            )
    return cell


def _topology_queue_options(
    topology_name: str, scheduler: str, device_count: int
) -> Tuple[Topology, str]:
    """(topology, scheduler) of one ablation cell, both validated."""
    if scheduler not in TOPOLOGY_SCHEDULERS:
        raise KernelError(
            f"unknown ablation scheduler {scheduler!r}: pick from "
            f"{TOPOLOGY_SCHEDULERS}"
        )
    return Topology.preset(topology_name, device_count), scheduler


def _run_topology_cell_task(task: tuple) -> TopologyCell:
    """Worker entry for one ablation cell (module level: picklable)."""
    (
        dag,
        topology_name,
        scheduler,
        device_count,
        width,
        depth,
        size,
        lanes,
        stages,
        seed,
        config,
        transfer,
        prefetch_depth,
        steal_seed,
    ) = task
    topology, scheduler = _topology_queue_options(
        topology_name, scheduler, device_count
    )
    queue = OutOfOrderQueue(
        config=config,
        num_devices=device_count,
        memory_bytes=TOPOLOGY_CELL_MEMORY_BYTES,
        transfer=transfer,
        scheduler=scheduler,
        topology=topology,
        prefetch_depth=prefetch_depth,
        steal_seed=steal_seed,
    )
    cell = _run_topology_cell_on_queue(
        queue, dag, width, depth, size, lanes, stages, seed
    )
    cell.topology = topology_name
    return cell


def run_topology_table(
    device_counts: Sequence[int] = (4, 8, 16),
    dags: Sequence[str] = TOPOLOGY_DAGS,
    topologies: Sequence[str] = TOPOLOGY_PRESETS,
    schedulers: Sequence[str] = TOPOLOGY_SCHEDULERS,
    width: int = 96,
    depth: int = 20,
    size: int = 256,
    lanes: int = 16,
    stages: int = 4,
    seed: int = DEFAULT_SEED,
    config: Optional[GGPUConfig] = None,
    transfer: Optional[TransferConfig] = None,
    prefetch_depth: int = 0,
    steal_seed: int = 0,
    jobs: Optional[int] = None,
) -> TopologyTable:
    """Measure the topology DAGs under every topology × scheduler cell.

    The ablation where placement actually bites: a layered inference-style
    DAG (deep backbone + wide heads — the LPT trap HEFT escapes) and a
    multi-stage shuffle (growing shuffle distances — where locality-aware
    stealing pays on non-flat fabrics), each run over the named topology
    presets and the LPT / HEFT / work-stealing flush orders at every device
    count.  ``jobs=None`` honours ``REPRO_JOBS``; serial runs recycle one
    device pool, fanned-out runs build one per worker — the table is
    bit-identical either way.

    The standing invariant is asserted cell by cell: kernel results are
    verified in every cell, and each launch's simulated cycle count must be
    bit-identical across every (topology, scheduler, device count) cell of
    its DAG — topology and scheduler choice reshape the schedule only.
    """
    if not device_counts:
        raise KernelError("need at least one device count")
    counts = list(device_counts)
    if len(set(counts)) != len(counts):
        raise KernelError(f"duplicate device counts: {counts}")
    dag_list = list(dags)
    topology_list = list(topologies)
    scheduler_list = list(schedulers)
    if "lpt" not in scheduler_list:
        raise KernelError("the topology ablation needs the 'lpt' baseline scheduler")
    config = config or GGPUConfig()
    effective_jobs = jobs if jobs is not None else default_jobs()

    table = TopologyTable(
        dags=dag_list,
        topologies=topology_list,
        schedulers=scheduler_list,
        width=width,
        depth=depth,
        size=size,
        lanes=lanes,
        stages=stages,
    )
    grid = [
        (dag, topology, scheduler, count)
        for dag in dag_list
        for topology in topology_list
        for scheduler in scheduler_list
        for count in counts
    ]
    tasks = [
        (
            dag,
            topology,
            scheduler,
            count,
            width,
            depth,
            size,
            lanes,
            stages,
            seed,
            config,
            transfer,
            prefetch_depth,
            steal_seed,
        )
        for dag, topology, scheduler, count in grid
    ]

    def _collect(position: int, cell: TopologyCell) -> None:
        table.cells[(cell.dag, cell.topology, cell.scheduler, cell.device_count)] = cell

    if effective_jobs == 1 or len(tasks) <= 1:
        # Shared pool: build the widest cell once, reuse (reset) for the rest.
        pool = [
            GGPUSimulator(config, memory_bytes=TOPOLOGY_CELL_MEMORY_BYTES)
            for _ in range(max(counts, default=0))
        ]
        for position, task in enumerate(tasks):
            dag, topology_name, scheduler, count = task[:4]
            topology, scheduler = _topology_queue_options(
                topology_name, scheduler, count
            )
            queue = OutOfOrderQueue(
                devices=pool[:count],
                transfer=transfer,
                scheduler=scheduler,
                topology=topology,
                prefetch_depth=prefetch_depth,
                steal_seed=steal_seed,
            )
            cell = _run_topology_cell_on_queue(
                queue, dag, width, depth, size, lanes, stages, seed
            )
            cell.topology = topology_name
            _collect(position, cell)
    else:
        parallel_map(
            _run_topology_cell_task, tasks, jobs=effective_jobs, on_result=_collect
        )

    # The invariant, cell by cell: the same launch simulates the same cycle
    # count in every (topology, scheduler, device count) cell of its DAG.
    for dag in dag_list:
        reference_cell = table.cell(dag, topology_list[0], scheduler_list[0], min(counts))
        reference = {
            label: compute for label, _, _, _, _, compute in reference_cell.schedule
        }
        for key, cell in table.cells.items():
            if key[0] != dag:
                continue
            for label, _, _, _, _, compute in cell.schedule:
                if reference.get(label) != compute:
                    raise KernelError(
                        f"launch {label!r} simulated {compute} cycles with "
                        f"topology {cell.topology!r} / scheduler "
                        f"{cell.scheduler!r} at {cell.device_count} devices but "
                        f"{reference.get(label)} in the reference cell"
                    )
    return table
