"""Multi-device sweep: makespan vs device count for the kernel suite.

The paper evaluates one simulated G-GPU at a time; this sweep asks the
platform question instead — how does the wall-clock (in simulated cycles) of
an *independent-launch batch* of the whole kernel suite shrink as the host
schedules it across more G-GPU instances?  Each cell runs one
:class:`~repro.runtime.multidevice.OutOfOrderQueue` over ``device_count``
devices, enqueues every kernel once (no event dependencies: the batch is
embarrassingly launch-parallel), verifies every output buffer against the
kernel's reference, and reports the queue's makespan, its transfer vs
compute cycle breakdown, and the per-device utilization.

Determinism and bit-exactness are part of the protocol:

* buffer addresses are identical across device counts (the queue allocates
  eagerly on every device), so each launch's simulated cycle count is the
  same in every cell — the table builder asserts it;
* with ``jobs == 1`` the cells share one device pool, recycled through
  :meth:`~repro.simt.gpu.GGPUSimulator.reset`; with ``jobs > 1`` each worker
  process builds a fresh pool.  Both paths must produce the same table
  (``tests/tools/determinism_check.py`` and the CI determinism job compare
  them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.config import GGPUConfig, TransferConfig
from repro.errors import KernelError
from repro.eval.benchmarks import DEFAULT_SEED, BenchmarkSizes
from repro.kernels import all_kernel_names, get_kernel_spec
from repro.runtime.multidevice import OutOfOrderQueue
from repro.runtime.parallel import default_jobs, parallel_map
from repro.simt.gpu import GGPUSimulator

# One device pool comfortably holds the scaled suite's buffers.
CELL_MEMORY_BYTES = 32 * 1024 * 1024


@dataclass
class MultiDeviceCell:
    """One device-count cell of the multi-device table."""

    device_count: int
    kernels: List[str]
    makespan: float
    compute_cycles: float
    transfer_cycles: float
    critical_path_cycles: float
    utilization: Dict[int, float]
    # Captured from QueueStats at snapshot time (single source of truth for
    # the derived-metric definitions).
    mean_utilization: float
    transfer_fraction: float
    launches: int
    transfers_skipped: int
    # (label, device, start, end, transfer_cycles, compute_cycles) per launch,
    # in execution order — the event-graph schedule, JSON-friendly.
    schedule: List[Tuple[str, int, float, float, float, float]] = field(default_factory=list)

    @property
    def makespan_kcycles(self) -> float:
        return self.makespan / 1.0e3


@dataclass
class MultiDeviceTable:
    """Makespan vs device count for one independent-launch kernel batch."""

    cells: Dict[int, MultiDeviceCell] = field(default_factory=dict)
    kernels: List[str] = field(default_factory=list)
    scale: float = 1.0

    @property
    def device_counts(self) -> List[int]:
        return sorted(self.cells)

    def cell(self, device_count: int) -> MultiDeviceCell:
        try:
            return self.cells[device_count]
        except KeyError as exc:
            raise KernelError(
                f"multi-device table has no cell for {device_count} devices"
            ) from exc

    def speedup(self, device_count: int) -> float:
        """Makespan improvement of ``device_count`` devices over the smallest cell."""
        baseline = self.cell(min(self.cells))
        cell = self.cell(device_count)
        if cell.makespan <= 0.0:
            return 0.0
        return baseline.makespan / cell.makespan


def _run_cell_on_queue(
    queue: OutOfOrderQueue,
    kernels: Sequence[str],
    scale: float,
    seed: int,
) -> MultiDeviceCell:
    """Enqueue every kernel once (independent launches), verify, measure."""
    checks = []
    for name in kernels:
        spec = get_kernel_spec(name)
        sizes = BenchmarkSizes.paper(name)
        if scale != 1.0:
            sizes = sizes.scaled(scale)
        workload = spec.workload(sizes.gpu_size, seed)
        args: Dict[str, object] = dict(workload.scalars)
        buffers = {}
        for buffer_name, contents in workload.buffers.items():
            buffers[buffer_name] = queue.create_buffer(
                np.asarray(contents, dtype=np.int64) & 0xFFFFFFFF
            )
            args[buffer_name] = buffers[buffer_name]
        queue.enqueue(spec.build(), workload.ndrange, args, label=name)
        for buffer_name, expected in workload.expected.items():
            checks.append((name, buffer_name, buffers[buffer_name], expected))
    queue.finish()
    stats = queue.stats
    makespan = stats.makespan  # before read-back charges: the batch makespan
    cell = MultiDeviceCell(
        device_count=queue.num_devices,
        kernels=list(kernels),
        makespan=makespan,
        compute_cycles=stats.compute_cycles,
        transfer_cycles=stats.transfer_cycles,
        critical_path_cycles=stats.critical_path_cycles,
        utilization=stats.device_utilization(),
        mean_utilization=stats.utilization,
        transfer_fraction=stats.transfer_fraction,
        launches=stats.launches,
        transfers_skipped=stats.transfers_skipped,
        schedule=[
            (
                event.label,
                int(event.device if event.device is not None else -1),
                float(event.start_cycle),
                float(event.end_cycle),
                float(event.transfer_cycles),
                float(event.compute_cycles),
            )
            for event in queue.schedule
        ],
    )
    for kernel_name, buffer_name, buffer, expected in checks:
        observed = queue.enqueue_read(buffer).astype(np.int64)
        expected_u32 = np.asarray(expected, dtype=np.int64) & 0xFFFFFFFF
        if not np.array_equal(observed, expected_u32):
            raise KernelError(
                f"multi-device launch of {kernel_name!r} produced wrong values "
                f"in {buffer_name!r} on {queue.num_devices} devices"
            )
    return cell


def _run_cell_task(task: tuple) -> MultiDeviceCell:
    """Worker entry for one cell (module level: picklable)."""
    device_count, kernels, scale, seed, config, transfer = task
    queue = OutOfOrderQueue(
        config=config,
        num_devices=device_count,
        memory_bytes=CELL_MEMORY_BYTES,
        transfer=transfer,
    )
    return _run_cell_on_queue(queue, kernels, scale, seed)


def run_multidevice_table(
    device_counts: Sequence[int] = (1, 2, 4),
    kernels: Optional[Sequence[str]] = None,
    scale: float = 0.25,
    seed: int = DEFAULT_SEED,
    config: Optional[GGPUConfig] = None,
    transfer: Optional[TransferConfig] = None,
    jobs: Optional[int] = None,
) -> MultiDeviceTable:
    """Measure the suite's makespan at every device count.

    ``jobs=None`` honours ``REPRO_JOBS``.  Serial runs recycle one device
    pool across cells (each queue resets the simulators it is handed);
    fanned-out runs build one pool per worker.  The resulting table is
    bit-identical either way, and every launch's simulated cycle count is
    asserted identical across cells.
    """
    if not device_counts:
        raise KernelError("need at least one device count")
    counts = list(device_counts)
    if len(set(counts)) != len(counts):
        raise KernelError(f"duplicate device counts: {counts}")
    names = list(kernels) if kernels is not None else all_kernel_names()
    config = config or GGPUConfig()
    effective_jobs = jobs if jobs is not None else default_jobs()

    table = MultiDeviceTable(kernels=names, scale=scale)
    if effective_jobs == 1 or len(counts) <= 1:
        # Shared pool: build the widest cell once, reuse (reset) for the rest.
        pool = [
            GGPUSimulator(config, memory_bytes=CELL_MEMORY_BYTES)
            for _ in range(max(counts))
        ]
        cells = []
        for count in counts:
            queue = OutOfOrderQueue(devices=pool[:count], transfer=transfer)
            cells.append(_run_cell_on_queue(queue, names, scale, seed))
    else:
        tasks = [(count, tuple(names), scale, seed, config, transfer) for count in counts]
        cells = parallel_map(_run_cell_task, tasks, jobs=effective_jobs)
    for cell in cells:
        table.cells[cell.device_count] = cell

    # Bit-exactness across cells: the same launch simulates the same cycle
    # count whatever the device count (addresses are allocated in lock-step).
    reference = {
        label: compute
        for label, _, _, _, _, compute in table.cell(min(table.cells)).schedule
    }
    for cell in table.cells.values():
        for label, _, _, _, _, compute in cell.schedule:
            if reference.get(label) != compute:
                raise KernelError(
                    f"launch {label!r} simulated {compute} cycles on "
                    f"{cell.device_count} devices but {reference.get(label)} on "
                    f"{min(table.cells)}"
                )
    return table
