"""The designer-facing specification of a G-GPU instance.

This is the "Define specifications" box of the paper's Fig. 2: the designer
chooses the number of CUs (1-8) and the operating frequency, and optionally
bounds the area and power the accelerator may consume in the target SoC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.arch.config import GGPUConfig
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GGPUSpec:
    """User specification handed to GPUPlanner.

    Attributes
    ----------
    num_cus:
        Number of compute units (1-8).
    target_frequency_mhz:
        Operating frequency the generated IP must close timing at.
    max_area_mm2 / max_power_w:
        Optional budgets checked after synthesis; ``None`` means unconstrained.
    name:
        Label used in reports; defaults to ``<cus>cu_<freq>mhz``.
    config:
        Full architecture configuration; defaults to the standard FGPU-derived
        configuration with ``num_cus`` compute units.
    """

    num_cus: int
    target_frequency_mhz: float
    max_area_mm2: Optional[float] = None
    max_power_w: Optional[float] = None
    name: str = ""
    config: Optional[GGPUConfig] = None

    def __post_init__(self) -> None:
        if not 1 <= self.num_cus <= 8:
            raise ConfigurationError(f"GPUPlanner supports 1 to 8 CUs, got {self.num_cus}")
        if self.target_frequency_mhz <= 0:
            raise ConfigurationError(
                f"target frequency must be positive, got {self.target_frequency_mhz}"
            )
        if self.max_area_mm2 is not None and self.max_area_mm2 <= 0:
            raise ConfigurationError("the area budget must be positive when given")
        if self.max_power_w is not None and self.max_power_w <= 0:
            raise ConfigurationError("the power budget must be positive when given")
        if self.config is not None and self.config.num_cus != self.num_cus:
            raise ConfigurationError(
                "the provided GGPUConfig does not match the requested CU count"
            )

    @property
    def label(self) -> str:
        """Short label of the version (e.g. ``2cu_590mhz``)."""
        if self.name:
            return self.name
        return f"{self.num_cus}cu_{self.target_frequency_mhz:.0f}mhz"

    def architecture(self) -> GGPUConfig:
        """The architecture configuration to generate."""
        if self.config is not None:
            return self.config
        return GGPUConfig(num_cus=self.num_cus)

    def with_frequency(self, frequency_mhz: float) -> "GGPUSpec":
        """Copy of this spec at a different target frequency."""
        return GGPUSpec(
            num_cus=self.num_cus,
            target_frequency_mhz=frequency_mhz,
            max_area_mm2=self.max_area_mm2,
            max_power_w=self.max_power_w,
            config=self.config,
        )
