"""Design-space exploration over CU counts and operating frequencies.

The paper exercises GPUPlanner over 1/2/4/8 CUs and 500/590/667 MHz, keeping
the 12 versions "worth the PPA trade-off".  :class:`DesignSpaceExplorer`
automates that sweep: for every (CU count, frequency) point it generates the
netlist, closes timing with the optimizer, runs logic synthesis, and collects
the PPA so the caller can pick versions, plot trade-offs, or extract the
Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import PlanningError
from repro.planner.optimizer import OptimizationResult, TimingOptimizer
from repro.planner.spec import GGPUSpec
from repro.runtime.parallel import parallel_map
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.netlist import Netlist
from repro.synth.logic import LogicSynthesis, SynthesisResult
from repro.tech.technology import Technology

# The workload lists a design-space sweep can be scored against: the paper's
# Table III suite, and the extended suite added on top of it.  Spelled out as
# literals (and pinned against the kernel registry by ``tests/test_planner.py``)
# so the pure-PPA flows never import the kernel library at module-import time.
PAPER_WORKLOAD_SUITE: Tuple[str, ...] = (
    "mat_mul",
    "copy",
    "vec_mul",
    "fir",
    "div_int",
    "xcorr",
    "parallel_sel",
)
EXTENDED_WORKLOAD_SUITE: Tuple[str, ...] = PAPER_WORKLOAD_SUITE + (
    "saxpy",
    "dot",
    "reduce_sum",
    "inclusive_scan",
    "histogram",
    "transpose",
    "matmul2d",
    "conv2d",
    "bitonic_sort",
)


@dataclass
class DesignPoint:
    """One explored (CU count, frequency) point."""

    spec: GGPUSpec
    netlist: Netlist
    optimization: OptimizationResult
    synthesis: SynthesisResult

    @property
    def met(self) -> bool:
        """Whether the point closed timing at its target frequency."""
        return self.optimization.met and self.synthesis.timing_met

    @property
    def area_mm2(self) -> float:
        return self.synthesis.total_area_mm2

    @property
    def power_w(self) -> float:
        return self.synthesis.total_power_w

    @property
    def throughput_proxy(self) -> float:
        """CU count times frequency: a first-order compute-throughput metric."""
        return self.spec.num_cus * self.spec.target_frequency_mhz

    @property
    def efficiency_proxy(self) -> float:
        """Throughput proxy per mm^2 (what Fig. 6 derates by)."""
        if self.area_mm2 <= 0:
            return 0.0
        return self.throughput_proxy / self.area_mm2

    def label(self) -> str:
        return self.spec.label


@dataclass
class WorkloadPoint:
    """One design point joined with measured workload cycle counts.

    ``kernel_cycles`` maps kernel name to simulated cycles on this point's
    CU count; runtimes divide by the point's *target* frequency, so a point
    that misses timing closure still reports what it promised (``met`` tells
    the designer whether to believe it).
    """

    design: DesignPoint
    kernel_cycles: Dict[str, float] = field(default_factory=dict)

    @property
    def spec(self) -> GGPUSpec:
        return self.design.spec

    @property
    def met(self) -> bool:
        return self.design.met

    def runtime_ms(self, kernel: str) -> float:
        """Wall-clock runtime of one kernel at the point's target frequency."""
        try:
            cycles = self.kernel_cycles[kernel]
        except KeyError as exc:
            raise PlanningError(
                f"workload point {self.spec.label} did not measure kernel {kernel!r}"
            ) from exc
        return cycles / (self.spec.target_frequency_mhz * 1.0e3)

    @property
    def total_runtime_ms(self) -> float:
        """Runtime of the whole workload list, back to back."""
        return sum(self.kernel_cycles.values()) / (self.spec.target_frequency_mhz * 1.0e3)

    @property
    def runtime_per_area(self) -> float:
        """Workloads-per-second-per-mm^2 flavour of Fig. 6, measured not proxied."""
        if self.design.area_mm2 <= 0 or self.total_runtime_ms <= 0:
            return 0.0
        return 1.0 / (self.total_runtime_ms * self.design.area_mm2)


class DesignSpaceExplorer:
    """Sweeps GPUPlanner over CU counts and frequencies."""

    def __init__(self, tech: Technology, optimizer: Optional[TimingOptimizer] = None) -> None:
        self.tech = tech
        self.optimizer = optimizer or TimingOptimizer(tech)
        self.synthesis = LogicSynthesis(tech)

    def explore_point(self, spec: GGPUSpec) -> DesignPoint:
        """Generate, optimize, and synthesize one specification."""
        netlist = generate_ggpu_netlist(spec.architecture(), name=spec.label)
        optimization = self.optimizer.close_timing(netlist, spec.target_frequency_mhz)
        synthesis = self.synthesis.run(netlist, spec.target_frequency_mhz)
        return DesignPoint(spec=spec, netlist=netlist, optimization=optimization, synthesis=synthesis)

    def explore(
        self,
        cu_counts: Sequence[int] = (1, 2, 4, 8),
        frequencies_mhz: Sequence[float] = (500.0, 590.0, 667.0),
        jobs: Optional[int] = None,
    ) -> List[DesignPoint]:
        """Sweep the full grid of CU counts and frequencies.

        Each grid point generates, optimizes, and synthesizes its own
        netlist, so the sweep is fanned out with
        :func:`repro.runtime.parallel.parallel_map` (``jobs=None`` honours
        ``REPRO_JOBS``); the points come back in grid order regardless of
        the job count.
        """
        if not cu_counts or not frequencies_mhz:
            raise PlanningError("the design-space sweep needs at least one CU count and frequency")
        specs = [
            GGPUSpec(num_cus, frequency)
            for num_cus in cu_counts
            for frequency in frequencies_mhz
        ]
        return parallel_map(self.explore_point, specs, jobs=jobs)

    def explore_workloads(
        self,
        cu_counts: Sequence[int] = (1, 2, 4, 8),
        frequencies_mhz: Sequence[float] = (500.0, 590.0, 667.0),
        workloads: Sequence[str] = EXTENDED_WORKLOAD_SUITE,
        scale: float = 0.25,
        seed: int = 2022,
        jobs: Optional[int] = None,
        journal=None,
    ) -> List["WorkloadPoint"]:
        """Score every (CU count, frequency) point against a workload list.

        The PPA side reuses :meth:`explore_point`; the performance side runs
        every named library kernel through one batched command queue per CU
        count (``scale`` shrinks the paper input sizes).  The per-CU-count
        kernel measurements are fanned out with
        :func:`repro.runtime.parallel.parallel_map` — a multi-queue sweep,
        one simulated G-GPU per process — and then joined with each
        frequency's synthesis result into wall-clock runtime estimates.

        ``journal`` (a path or :class:`~repro.runtime.checkpoint.SweepJournal`)
        makes the *simulation* side resumable: each per-CU-count batch
        measurement is persisted atomically when it completes, so a killed
        sweep recomputes only the missing batches.  The analytic PPA side is
        cheap and always recomputed.
        """
        if not workloads:
            raise PlanningError("the workload sweep needs at least one kernel name")
        # Import here: the queue depends on the kernel library, which this
        # module must not pull in at import time for the pure-PPA flows.
        from repro.eval.benchmarks import BenchmarkSizes
        from repro.runtime.checkpoint import cell_key, open_journal
        from repro.runtime.queue import BatchItem, BatchResult, QueueBatch, run_batch

        batches = []
        for num_cus in cu_counts:
            items = []
            for kernel in workloads:
                sizes = BenchmarkSizes.paper(kernel)
                if scale != 1.0:
                    sizes = sizes.scaled(scale)
                items.append(BatchItem(kernel=kernel, size=sizes.gpu_size, seed=seed))
            batches.append(QueueBatch(items=tuple(items), num_cus=num_cus))
        book = open_journal(
            journal,
            meta={
                "sweep": "dse-workloads",
                "workloads": list(workloads),
                "scale": scale,
                "seed": seed,
            },
        )
        measured: List[Optional[BatchResult]] = [None] * len(batches)
        missing: List[int] = list(range(len(batches)))
        keys: List[str] = []
        if book is not None:
            keys = [cell_key(num_cus=int(count)) for count in cu_counts]
            missing = []
            for index, key in enumerate(keys):
                cached = book.get(key)
                if cached is not None:
                    measured[index] = BatchResult(**cached)
                else:
                    missing.append(index)

        def _collect(position: int, result: BatchResult) -> None:
            index = missing[position]
            measured[index] = result
            if book is not None:
                book.record(
                    keys[index],
                    {
                        "num_cus": result.num_cus,
                        "cycles": [float(c) for c in result.cycles],
                        "kernels": list(result.kernels),
                    },
                )

        parallel_map(
            run_batch,
            [batches[index] for index in missing],
            jobs=jobs,
            on_result=_collect,
        )
        # The PPA side is the same grid explore() already fans out.
        designs = self.explore(cu_counts, frequencies_mhz, jobs=jobs)
        design_by_spec = {
            (point.spec.num_cus, point.spec.target_frequency_mhz): point
            for point in designs
        }

        points: List[WorkloadPoint] = []
        for num_cus, batch_result in zip(cu_counts, measured, strict=True):
            cycles = {
                kernel: cycle
                for kernel, cycle in zip(batch_result.kernels, batch_result.cycles, strict=True)
            }
            for frequency in frequencies_mhz:
                points.append(
                    WorkloadPoint(
                        design=design_by_spec[(num_cus, frequency)],
                        kernel_cycles=dict(cycles),
                    )
                )
        return points

    @staticmethod
    def feasible_points(points: Iterable[DesignPoint]) -> List[DesignPoint]:
        """Points that closed timing at their target frequency."""
        return [point for point in points if point.met]

    @staticmethod
    def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
        """Area/throughput Pareto-optimal points (smaller area, higher throughput)."""
        candidates = sorted(points, key=lambda point: (point.area_mm2, -point.throughput_proxy))
        frontier: List[DesignPoint] = []
        best_throughput = -1.0
        for point in candidates:
            if point.throughput_proxy > best_throughput:
                frontier.append(point)
                best_throughput = point.throughput_proxy
        return frontier
