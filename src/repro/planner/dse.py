"""Design-space exploration over CU counts and operating frequencies.

The paper exercises GPUPlanner over 1/2/4/8 CUs and 500/590/667 MHz, keeping
the 12 versions "worth the PPA trade-off".  :class:`DesignSpaceExplorer`
automates that sweep: for every (CU count, frequency) point it generates the
netlist, closes timing with the optimizer, runs logic synthesis, and collects
the PPA so the caller can pick versions, plot trade-offs, or extract the
Pareto frontier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import PlanningError
from repro.planner.optimizer import OptimizationResult, TimingOptimizer
from repro.planner.spec import GGPUSpec
from repro.runtime.parallel import parallel_map
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.netlist import Netlist
from repro.synth.logic import LogicSynthesis, SynthesisResult
from repro.tech.technology import Technology


@dataclass
class DesignPoint:
    """One explored (CU count, frequency) point."""

    spec: GGPUSpec
    netlist: Netlist
    optimization: OptimizationResult
    synthesis: SynthesisResult

    @property
    def met(self) -> bool:
        """Whether the point closed timing at its target frequency."""
        return self.optimization.met and self.synthesis.timing_met

    @property
    def area_mm2(self) -> float:
        return self.synthesis.total_area_mm2

    @property
    def power_w(self) -> float:
        return self.synthesis.total_power_w

    @property
    def throughput_proxy(self) -> float:
        """CU count times frequency: a first-order compute-throughput metric."""
        return self.spec.num_cus * self.spec.target_frequency_mhz

    @property
    def efficiency_proxy(self) -> float:
        """Throughput proxy per mm^2 (what Fig. 6 derates by)."""
        if self.area_mm2 <= 0:
            return 0.0
        return self.throughput_proxy / self.area_mm2

    def label(self) -> str:
        return self.spec.label


class DesignSpaceExplorer:
    """Sweeps GPUPlanner over CU counts and frequencies."""

    def __init__(self, tech: Technology, optimizer: Optional[TimingOptimizer] = None) -> None:
        self.tech = tech
        self.optimizer = optimizer or TimingOptimizer(tech)
        self.synthesis = LogicSynthesis(tech)

    def explore_point(self, spec: GGPUSpec) -> DesignPoint:
        """Generate, optimize, and synthesize one specification."""
        netlist = generate_ggpu_netlist(spec.architecture(), name=spec.label)
        optimization = self.optimizer.close_timing(netlist, spec.target_frequency_mhz)
        synthesis = self.synthesis.run(netlist, spec.target_frequency_mhz)
        return DesignPoint(spec=spec, netlist=netlist, optimization=optimization, synthesis=synthesis)

    def explore(
        self,
        cu_counts: Sequence[int] = (1, 2, 4, 8),
        frequencies_mhz: Sequence[float] = (500.0, 590.0, 667.0),
        jobs: Optional[int] = None,
    ) -> List[DesignPoint]:
        """Sweep the full grid of CU counts and frequencies.

        Each grid point generates, optimizes, and synthesizes its own
        netlist, so the sweep is fanned out with
        :func:`repro.runtime.parallel.parallel_map` (``jobs=None`` honours
        ``REPRO_JOBS``); the points come back in grid order regardless of
        the job count.
        """
        if not cu_counts or not frequencies_mhz:
            raise PlanningError("the design-space sweep needs at least one CU count and frequency")
        specs = [
            GGPUSpec(num_cus, frequency)
            for num_cus in cu_counts
            for frequency in frequencies_mhz
        ]
        return parallel_map(self.explore_point, specs, jobs=jobs)

    @staticmethod
    def feasible_points(points: Iterable[DesignPoint]) -> List[DesignPoint]:
        """Points that closed timing at their target frequency."""
        return [point for point in points if point.met]

    @staticmethod
    def pareto_frontier(points: Iterable[DesignPoint]) -> List[DesignPoint]:
        """Area/throughput Pareto-optimal points (smaller area, higher throughput)."""
        candidates = sorted(points, key=lambda point: (point.area_mm2, -point.throughput_proxy))
        frontier: List[DesignPoint] = []
        best_throughput = -1.0
        for point in candidates:
            if point.throughput_proxy > best_throughput:
                frontier.append(point)
                best_throughput = point.throughput_proxy
        return frontier
