"""The full GPUPlanner flow: specification to tapeout-ready layout (Fig. 2).

``GpuPlannerFlow.run`` executes, for one :class:`~repro.planner.spec.GGPUSpec`:

1. first-order estimation (the map),
2. netlist generation,
3. timing closure (memory division + on-demand pipeline insertion),
4. logic synthesis (Table-I metrics),
5. physical synthesis (floorplan, macro placement, routing, post-route STA),
6. the PPA check against the specification.

"From a single push of a button, our framework can perform logic and physical
synthesis of the list of designs" -- that is :meth:`GpuPlannerFlow.run_many`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import PlanningError
from repro.planner.estimator import FirstOrderEstimate, PpaMap
from repro.planner.optimizer import OptimizationResult, TimingOptimizer
from repro.planner.spec import GGPUSpec
from repro.physical.layout import LayoutResult, PhysicalSynthesis
from repro.rtl.generator import generate_ggpu_netlist
from repro.rtl.netlist import Netlist
from repro.runtime.parallel import parallel_map
from repro.synth.logic import LogicSynthesis, SynthesisResult
from repro.tech.technology import Technology


@dataclass
class FlowResult:
    """Everything one run of the flow produced for one specification."""

    spec: GGPUSpec
    estimate: FirstOrderEstimate
    netlist: Netlist
    optimization: OptimizationResult
    synthesis: SynthesisResult
    layout: Optional[LayoutResult] = None
    issues: List[str] = field(default_factory=list)

    @property
    def meets_specification(self) -> bool:
        """Whether the implemented design satisfies the full specification."""
        return not self.issues

    @property
    def achieved_frequency_mhz(self) -> float:
        """Post-layout frequency when physical synthesis ran, else post-synthesis."""
        if self.layout is not None:
            return self.layout.achieved_frequency_mhz
        return self.optimization.achieved_frequency_mhz

    def summary(self) -> str:
        """Multi-line report of the run."""
        lines = [
            f"== GPUPlanner flow: {self.spec.label} ==",
            self.optimization.summary(),
            (
                f"logic synthesis: {self.synthesis.total_area_mm2:.2f} mm2, "
                f"{self.synthesis.num_macros} macros, "
                f"{self.synthesis.total_power_w:.2f} W"
            ),
        ]
        if self.layout is not None:
            lines.append(self.layout.summary())
        if self.issues:
            lines.append("specification issues:")
            lines.extend(f"  - {issue}" for issue in self.issues)
        else:
            lines.append("specification met; layout is ready for integration as an IP")
        return "\n".join(lines)


class GpuPlannerFlow:
    """RTL-to-GDSII automation for G-GPU instances."""

    def __init__(
        self,
        tech: Technology,
        run_physical: bool = True,
        optimizer: Optional[TimingOptimizer] = None,
        physical: Optional[PhysicalSynthesis] = None,
        ppa_map: Optional[PpaMap] = None,
    ) -> None:
        self.tech = tech
        self.run_physical = run_physical
        self.optimizer = optimizer or TimingOptimizer(tech)
        self.synthesis = LogicSynthesis(tech)
        self.physical = physical or PhysicalSynthesis(tech)
        self.ppa_map = ppa_map or PpaMap(tech)

    def run(self, spec: GGPUSpec) -> FlowResult:
        """Run the complete flow for one specification."""
        estimate = self.ppa_map.estimate(spec)
        netlist = generate_ggpu_netlist(spec.architecture(), name=spec.label)
        optimization = self.optimizer.close_timing(netlist, spec.target_frequency_mhz)
        synthesis = self.synthesis.run(netlist, spec.target_frequency_mhz)

        layout = None
        if self.run_physical:
            layout = self.physical.run(netlist, synthesis, spec.target_frequency_mhz)

        issues: List[str] = []
        if not optimization.met:
            issues.append(
                f"logic synthesis closes only {optimization.achieved_frequency_mhz:.0f} MHz "
                f"of the {spec.target_frequency_mhz:.0f} MHz target"
            )
        if layout is not None and not layout.timing_met:
            issues.append(
                f"post-route timing closes only {layout.achieved_frequency_mhz:.0f} MHz "
                f"of the {spec.target_frequency_mhz:.0f} MHz target"
            )
        if spec.max_area_mm2 is not None and synthesis.total_area_mm2 > spec.max_area_mm2:
            issues.append(
                f"area {synthesis.total_area_mm2:.2f} mm2 exceeds the budget of "
                f"{spec.max_area_mm2:.2f} mm2"
            )
        if spec.max_power_w is not None and synthesis.total_power_w > spec.max_power_w:
            issues.append(
                f"power {synthesis.total_power_w:.2f} W exceeds the budget of "
                f"{spec.max_power_w:.2f} W"
            )

        return FlowResult(
            spec=spec,
            estimate=estimate,
            netlist=netlist,
            optimization=optimization,
            synthesis=synthesis,
            layout=layout,
            issues=issues,
        )

    def run_many(self, specs: List[GGPUSpec], jobs: Optional[int] = None) -> List[FlowResult]:
        """Run the flow for a list of specifications (the push-button sweep).

        The specifications are independent full flow runs, so they are
        fanned out with :func:`repro.runtime.parallel.parallel_map`
        (``jobs=None`` honours ``REPRO_JOBS``); results come back in
        specification order at any job count.
        """
        if not specs:
            raise PlanningError("run_many needs at least one specification")
        return parallel_map(self.run, specs, jobs=jobs)
