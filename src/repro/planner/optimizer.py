"""Timing-closure optimizer: memory division plus on-demand pipeline insertion.

This is the automation the paper describes in Section III: GPUPlanner
"continually applied the memory division strategy when the critical path
contained a memory block", and "for solving such timing issues [when the
critical path was not a memory], pipelines were introduced".

For every violating path the optimizer:

1. divides the path's memory group while the macro access (plus the division
   muxes it already accumulated) dominates the cycle budget,
2. then, if the path still violates, inserts the smallest number of pipeline
   stages that makes every segment fit,
3. falls back to further memory division when pipelining alone cannot help
   (the macro plus mux must fit in one segment), and
4. reports the path as infeasible when neither move works (e.g. the
   wire-dominated inter-partition routes of the 8-CU floorplan, which the
   paper also could not fix with pipelining).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import PlanningError
from repro.rtl.netlist import Netlist, TimingPath
from repro.rtl.timing import analyze_timing, max_frequency_mhz, path_segment_delays
from repro.rtl.transforms import TransformRecord, insert_pipeline, split_memory_group
from repro.tech.technology import Technology


@dataclass
class OptimizationResult:
    """Outcome of a timing-closure run."""

    design: str
    target_frequency_mhz: float
    achieved_frequency_mhz: float
    records: List[TransformRecord] = field(default_factory=list)
    infeasible_paths: List[str] = field(default_factory=list)

    @property
    def met(self) -> bool:
        """Whether the target frequency was closed."""
        return self.achieved_frequency_mhz + 1e-6 >= self.target_frequency_mhz

    @property
    def num_divisions(self) -> int:
        """Memory-division transforms applied."""
        return sum(1 for record in self.records if record.kind == "memory_division")

    @property
    def num_pipelines(self) -> int:
        """Pipeline-insertion transforms applied."""
        return sum(1 for record in self.records if record.kind == "pipeline_insertion")

    def summary(self) -> str:
        """One-line report used by the flow log."""
        status = "met" if self.met else "NOT met"
        return (
            f"{self.design} @ {self.target_frequency_mhz:.0f} MHz {status}: "
            f"{self.num_divisions} memory divisions, {self.num_pipelines} pipeline insertions, "
            f"achieved {self.achieved_frequency_mhz:.1f} MHz"
        )


class TimingOptimizer:
    """Closes timing on a netlist by dividing memories and inserting pipelines."""

    def __init__(
        self,
        tech: Technology,
        split_allowance_levels: int = 2,
        max_pipeline_stages: int = 4,
        max_iterations: int = 64,
    ) -> None:
        self.tech = tech
        self.split_allowance_levels = split_allowance_levels
        self.max_pipeline_stages = max_pipeline_stages
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _macro_stage_delay(self, netlist: Netlist, path: TimingPath) -> float:
        """Delay of the macro access plus its division muxes (unsplittable part)."""
        if path.memory_group is None:
            return 0.0
        group = netlist.memory_groups[path.memory_group]
        return self.tech.sram.access_delay_ns(group.macro) + self.tech.stdcells.path_delay(
            0, group.mux_levels
        )

    def _split_threshold(self, budget_ns: float) -> float:
        """Macros slower than this dominate the cycle and must be divided."""
        return budget_ns - self.tech.stdcells.path_delay(self.split_allowance_levels)

    def _worst_segment(self, netlist: Netlist, path: TimingPath) -> float:
        return max(path_segment_delays(path, netlist, self.tech))

    # ------------------------------------------------------------------ #
    # Per-path closure
    # ------------------------------------------------------------------ #
    def _close_path(
        self,
        netlist: Netlist,
        path: TimingPath,
        budget_ns: float,
        records: List[TransformRecord],
    ) -> bool:
        """Try to make one path meet the budget; returns True on success."""
        threshold = self._split_threshold(budget_ns)

        # Step 1: divide the memory while its access dominates the budget.
        if path.memory_group is not None:
            while self._macro_stage_delay(netlist, path) > threshold:
                try:
                    records.append(split_memory_group(netlist, path.memory_group, self.tech))
                except Exception:
                    break
        if self._worst_segment(netlist, path) <= budget_ns:
            return True

        # Step 2: pipeline the downstream logic.
        if path.pipelinable:
            for extra in range(1, self.max_pipeline_stages + 1):
                original = path.pipeline_stages
                path.pipeline_stages = original + extra
                fits = self._worst_segment(netlist, path) <= budget_ns
                path.pipeline_stages = original
                if fits:
                    records.append(insert_pipeline(netlist, path.name, extra))
                    return True

        # Step 3: last resort -- keep dividing the memory even below the
        # threshold (trading more area for the remaining picoseconds).
        if path.memory_group is not None:
            for _ in range(8):
                try:
                    records.append(split_memory_group(netlist, path.memory_group, self.tech))
                except Exception:
                    break
                if self._worst_segment(netlist, path) <= budget_ns:
                    return True
                if path.pipelinable:
                    for extra in range(1, self.max_pipeline_stages + 1):
                        original = path.pipeline_stages
                        path.pipeline_stages = original + extra
                        fits = self._worst_segment(netlist, path) <= budget_ns
                        path.pipeline_stages = original
                        if fits:
                            records.append(insert_pipeline(netlist, path.name, extra))
                            return True
        return False

    # ------------------------------------------------------------------ #
    # Whole-netlist closure
    # ------------------------------------------------------------------ #
    def close_timing(self, netlist: Netlist, target_frequency_mhz: float) -> OptimizationResult:
        """Apply transforms (in place) until the netlist meets the target frequency."""
        if target_frequency_mhz <= 0:
            raise PlanningError(f"target frequency must be positive, got {target_frequency_mhz}")
        budget = self.tech.timing_budget_ns(target_frequency_mhz)
        records: List[TransformRecord] = []
        infeasible: List[str] = []

        for _ in range(self.max_iterations):
            report = analyze_timing(netlist, self.tech, target_frequency_mhz)
            open_violations = [
                violation
                for violation in report.violations()
                if violation.name not in infeasible
            ]
            if not open_violations:
                break
            progressed = False
            for violation in open_violations:
                path = netlist.timing_paths[violation.name]
                if self._close_path(netlist, path, budget, records):
                    progressed = True
                else:
                    infeasible.append(path.name)
            if not progressed:
                break

        achieved = max_frequency_mhz(netlist, self.tech)
        return OptimizationResult(
            design=netlist.name,
            target_frequency_mhz=target_frequency_mhz,
            achieved_frequency_mhz=achieved,
            records=records,
            infeasible_paths=infeasible,
        )
