"""GPUPlanner: the automated G-GPU generator (the paper's core contribution).

The flow mirrors Fig. 2 of the paper:

1. the designer writes a :class:`~repro.planner.spec.GGPUSpec` (number of CUs,
   target frequency, optional area/power budgets),
2. the first-order estimator (:mod:`repro.planner.estimator`, the paper's
   "dynamic spreadsheet" map) predicts the achievable frequency from the
   memory-block delays and says which memories to divide and where pipelines
   are needed,
3. the generator builds the netlist and the timing optimizer
   (:mod:`repro.planner.optimizer`) applies memory division and on-demand
   pipeline insertion until the target frequency closes,
4. logic synthesis and physical synthesis produce the PPA numbers and the
   tapeout-ready layout, and
5. the resulting PPA is checked against the specification.

:mod:`repro.planner.versions` captures the 12 logic-synthesis versions and the
4 physically implemented versions evaluated in the paper.
"""

from repro.planner.spec import GGPUSpec
from repro.planner.optimizer import OptimizationResult, TimingOptimizer
from repro.planner.estimator import FirstOrderEstimate, PpaMap
from repro.planner.dse import DesignPoint, DesignSpaceExplorer
from repro.planner.flow import FlowResult, GpuPlannerFlow
from repro.planner.versions import (
    PAPER_FREQUENCIES_MHZ,
    PAPER_CU_COUNTS,
    PHYSICAL_VERSION_SPECS,
    paper_version_specs,
)

__all__ = [
    "GGPUSpec",
    "OptimizationResult",
    "TimingOptimizer",
    "FirstOrderEstimate",
    "PpaMap",
    "DesignPoint",
    "DesignSpaceExplorer",
    "FlowResult",
    "GpuPlannerFlow",
    "PAPER_FREQUENCIES_MHZ",
    "PAPER_CU_COUNTS",
    "PHYSICAL_VERSION_SPECS",
    "paper_version_specs",
]
