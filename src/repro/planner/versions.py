"""The G-GPU versions evaluated in the paper.

Table I reports 12 versions after logic synthesis -- every combination of
1/2/4/8 CUs and 500/590/667 MHz.  Four "extreme" versions were taken through
physical synthesis (Figs. 3-4 and Table II): 1CU@500MHz, 1CU@667MHz,
8CU@500MHz, and 8CU@667MHz -- the last of which only closes 600 MHz after
routing, which is why Table II labels it 8CU@600MHz.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.planner.spec import GGPUSpec

PAPER_CU_COUNTS: Tuple[int, ...] = (1, 2, 4, 8)
PAPER_FREQUENCIES_MHZ: Tuple[float, ...] = (500.0, 590.0, 667.0)

# Specifications taken through physical synthesis in the paper.  The last one
# targets 667 MHz; the reproduction (like the paper) finds it only closes
# around 600 MHz after routing.
PHYSICAL_VERSION_SPECS: Tuple[GGPUSpec, ...] = (
    GGPUSpec(num_cus=1, target_frequency_mhz=500.0),
    GGPUSpec(num_cus=1, target_frequency_mhz=667.0),
    GGPUSpec(num_cus=8, target_frequency_mhz=500.0),
    GGPUSpec(num_cus=8, target_frequency_mhz=667.0),
)

# Post-route frequency the paper reports for each physical version.
PHYSICAL_VERSION_PAPER_ACHIEVED_MHZ: Tuple[float, ...] = (500.0, 667.0, 500.0, 600.0)


def paper_version_specs() -> List[GGPUSpec]:
    """The 12 Table-I specifications, in the paper's row order."""
    specs: List[GGPUSpec] = []
    for frequency in PAPER_FREQUENCIES_MHZ:
        for num_cus in PAPER_CU_COUNTS:
            specs.append(GGPUSpec(num_cus=num_cus, target_frequency_mhz=frequency))
    return specs


def paper_version_labels() -> List[str]:
    """Labels of the 12 versions (``<cus>@<freq>MHz``), in Table I's order."""
    return [
        f"{spec.num_cus}@{spec.target_frequency_mhz:.0f}MHz" for spec in paper_version_specs()
    ]
