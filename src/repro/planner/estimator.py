"""First-order PPA estimation: the paper's "dynamic spreadsheet" map.

Before running any synthesis, GPUPlanner gives the designer a map from the
memory-block access delays to (a) the maximum frequency of the unoptimized
design, (b) which memories have to be divided -- and how many times -- to
reach a target frequency, and (c) where pipelines are needed because the
critical path is logic rather than a macro.  The designer can override the
memory delays with the numbers of their own technology ("the user inputs the
delay of the memory blocks"), which keeps the map technology-agnostic.

The estimate is *first order*: area and power are computed from the structural
inventory (one CU's contribution times the CU count, plus the shared memory
controller and top), without running the netlist-level optimizer or synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import PlanningError
from repro.planner.spec import GGPUSpec
from repro.rtl.generator import (
    CU_LOGIC,
    CU_LOGIC_PATHS,
    CU_MEMORIES,
    MEMCTRL_LOGIC,
    MEMCTRL_LOGIC_PATHS,
    MEMCTRL_MEMORIES,
    TOP_LOGIC,
    TOP_MEMORIES,
    MemoryInventoryEntry,
)
from repro.tech.sram import SramMacroSpec
from repro.tech.technology import Technology
from repro.units import um2_to_mm2


@dataclass(frozen=True)
class DivisionRecommendation:
    """How often one kind of memory must be divided for the target frequency."""

    role: str
    instances: int
    divisions: int
    unoptimized_delay_ns: float
    optimized_delay_ns: float

    @property
    def extra_macros(self) -> int:
        """Additional macros this recommendation costs."""
        return self.instances * ((2**self.divisions) - 1)


@dataclass
class FirstOrderEstimate:
    """Result of the map for one specification."""

    spec: GGPUSpec
    feasible: bool
    unoptimized_frequency_mhz: float
    achievable_frequency_mhz: float
    divisions: List[DivisionRecommendation] = field(default_factory=list)
    pipeline_paths: List[str] = field(default_factory=list)
    estimated_area_mm2: float = 0.0
    estimated_memory_area_mm2: float = 0.0
    estimated_macros: int = 0
    estimated_power_w: float = 0.0
    notes: List[str] = field(default_factory=list)

    @property
    def total_extra_macros(self) -> int:
        """Macros added by all recommended divisions."""
        return sum(recommendation.extra_macros for recommendation in self.divisions)

    def summary(self) -> str:
        """Human-readable map entry for the designer."""
        lines = [
            f"specification {self.spec.label}: "
            f"{'feasible' if self.feasible else 'NOT feasible as specified'}",
            f"  unoptimized design closes {self.unoptimized_frequency_mhz:.0f} MHz; "
            f"with the recommended changes {self.achievable_frequency_mhz:.0f} MHz",
            f"  estimated area {self.estimated_area_mm2:.2f} mm2 "
            f"({self.estimated_macros} macros), power {self.estimated_power_w:.2f} W",
        ]
        for recommendation in self.divisions:
            lines.append(
                f"  divide {recommendation.role} x{recommendation.instances} "
                f"{recommendation.divisions} time(s): "
                f"{recommendation.unoptimized_delay_ns:.2f} ns -> "
                f"{recommendation.optimized_delay_ns:.2f} ns per access"
            )
        for path in self.pipeline_paths:
            lines.append(f"  insert pipeline stage(s) on {path}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class PpaMap:
    """The technology-agnostic map from memory delays to achievable PPA."""

    def __init__(
        self,
        tech: Technology,
        memory_delay_overrides_ns: Optional[Dict[str, float]] = None,
        max_divisions: int = 4,
        max_pipeline_stages: int = 4,
    ) -> None:
        self.tech = tech
        self.memory_delay_overrides_ns = dict(memory_delay_overrides_ns or {})
        self.max_divisions = max_divisions
        self.max_pipeline_stages = max_pipeline_stages

    # ------------------------------------------------------------------ #
    # Memory-delay handling (the user-editable column of the spreadsheet)
    # ------------------------------------------------------------------ #
    def memory_delay_ns(self, entry: MemoryInventoryEntry, divisions: int = 0) -> float:
        """Access delay of one memory role after ``divisions`` divisions."""
        words = max(self.tech.sram.min_words, entry.words >> divisions)
        if entry.role in self.memory_delay_overrides_ns and divisions == 0:
            return self.memory_delay_overrides_ns[entry.role]
        base = self.tech.sram.access_delay_ns(SramMacroSpec(words, entry.bits, entry.ports))
        if entry.role in self.memory_delay_overrides_ns:
            # Scale the user-provided unoptimized delay by the model's ratio.
            model_base = self.tech.sram.access_delay_ns(
                SramMacroSpec(entry.words, entry.bits, entry.ports)
            )
            return self.memory_delay_overrides_ns[entry.role] * base / model_base
        return base

    def _inventories(self) -> Tuple[Tuple[MemoryInventoryEntry, ...], ...]:
        return (CU_MEMORIES, MEMCTRL_MEMORIES, TOP_MEMORIES)

    # ------------------------------------------------------------------ #
    # Frequency analysis
    # ------------------------------------------------------------------ #
    def unoptimized_frequency_mhz(self) -> float:
        """Maximum frequency of the design with no divisions and no pipelines."""
        worst = 0.0
        for inventory in self._inventories():
            for entry in inventory:
                delay = self.memory_delay_ns(entry) + self.tech.stdcells.path_delay(
                    entry.read_logic_levels
                )
                worst = max(worst, delay)
        for paths in (CU_LOGIC_PATHS, MEMCTRL_LOGIC_PATHS):
            for _, levels, _ in paths:
                worst = max(worst, self.tech.stdcells.path_delay(levels))
        overhead = self.tech.stdcells.register_to_register_overhead() + self.tech.clock_uncertainty_ns
        return 1.0e3 / (worst + overhead)

    def _plan_entry(
        self, entry: MemoryInventoryEntry, budget_ns: float
    ) -> Tuple[int, int, bool]:
        """(divisions, pipeline_stages, feasible) needed for one memory role."""
        logic = self.tech.stdcells.path_delay(entry.read_logic_levels)
        threshold = budget_ns - self.tech.stdcells.path_delay(2)
        divisions = 0
        while divisions < self.max_divisions:
            macro_stage = self.memory_delay_ns(entry, divisions) + self.tech.stdcells.path_delay(
                0, divisions
            )
            if macro_stage <= threshold:
                break
            divisions += 1
        macro_stage = self.memory_delay_ns(entry, divisions) + self.tech.stdcells.path_delay(0, divisions)
        if macro_stage + logic <= budget_ns:
            return divisions, 0, True
        for stages in range(1, self.max_pipeline_stages + 1):
            if macro_stage + logic / (stages + 1) <= budget_ns:
                return divisions, stages, True
        return divisions, 0, macro_stage <= budget_ns

    # ------------------------------------------------------------------ #
    # The map
    # ------------------------------------------------------------------ #
    def estimate(self, spec: GGPUSpec) -> FirstOrderEstimate:
        """Produce the first-order estimate and recommendations for a spec."""
        try:
            budget = self.tech.timing_budget_ns(spec.target_frequency_mhz)
        except Exception as exc:
            raise PlanningError(str(exc)) from exc

        divisions: List[DivisionRecommendation] = []
        pipeline_paths: List[str] = []
        notes: List[str] = []
        feasible = True

        inventories = (
            (CU_MEMORIES, spec.num_cus, "cu"),
            (MEMCTRL_MEMORIES, 1, "memctrl"),
            (TOP_MEMORIES, 1, "top"),
        )
        total_macros = 0
        memory_area_um2 = 0.0
        leakage_mw = 0.0
        dynamic_mw = 0.0
        for inventory, multiplicity, prefix in inventories:
            for entry in inventory:
                needed_divisions, stages, ok = self._plan_entry(entry, budget)
                if not ok:
                    feasible = False
                    notes.append(
                        f"{prefix}/{entry.role}: no division/pipeline combination closes "
                        f"{spec.target_frequency_mhz:.0f} MHz"
                    )
                if needed_divisions:
                    divisions.append(
                        DivisionRecommendation(
                            role=f"{prefix}/{entry.role}",
                            instances=entry.count * multiplicity,
                            divisions=needed_divisions,
                            unoptimized_delay_ns=self.memory_delay_ns(entry),
                            optimized_delay_ns=self.memory_delay_ns(entry, needed_divisions),
                        )
                    )
                if stages:
                    pipeline_paths.append(f"{prefix}/{entry.role}__read (+{stages} stage(s))")
                macros_per_group = 2**needed_divisions
                words = max(self.tech.sram.min_words, entry.words >> needed_divisions)
                macro = SramMacroSpec(words, entry.bits, entry.ports)
                count = entry.count * multiplicity * macros_per_group
                total_macros += count
                memory_area_um2 += count * self.tech.sram.area_um2(macro)
                leakage_mw += count * self.tech.sram.leakage_mw(macro)
                dynamic_mw += count * self.tech.sram.dynamic_mw(
                    macro, spec.target_frequency_mhz, 0.7
                )

        for paths, _multiplicity, prefix in (
            (CU_LOGIC_PATHS, spec.num_cus, "cu"),
            (MEMCTRL_LOGIC_PATHS, 1, "memctrl"),
        ):
            for suffix, levels, _ in paths:
                delay = self.tech.stdcells.path_delay(levels)
                if delay > budget:
                    stages_needed = 0
                    for stages in range(1, self.max_pipeline_stages + 1):
                        if delay / (stages + 1) <= budget:
                            stages_needed = stages
                            break
                    if stages_needed:
                        pipeline_paths.append(f"{prefix}/{suffix} (+{stages_needed} stage(s))")
                    else:
                        feasible = False
                        notes.append(f"{prefix}/{suffix}: logic depth cannot be pipelined to fit")

        num_ff = 0
        num_gates = 0
        for blocks, multiplicity in ((CU_LOGIC, spec.num_cus), (MEMCTRL_LOGIC, 1), (TOP_LOGIC, 1)):
            for block in blocks:
                num_ff += block.num_ff * multiplicity
                num_gates += block.num_gates * multiplicity
        logic_area_um2 = self.tech.stdcells.logic_area(num_ff, num_gates)
        leakage_mw += self.tech.stdcells.logic_leakage_mw(num_ff, num_gates)
        dynamic_mw += self.tech.stdcells.logic_dynamic_mw(
            num_ff, num_gates, spec.target_frequency_mhz
        )

        unoptimized = self.unoptimized_frequency_mhz()
        achievable = spec.target_frequency_mhz if feasible else unoptimized
        estimate = FirstOrderEstimate(
            spec=spec,
            feasible=feasible,
            unoptimized_frequency_mhz=unoptimized,
            achievable_frequency_mhz=achievable,
            divisions=divisions,
            pipeline_paths=pipeline_paths,
            estimated_area_mm2=um2_to_mm2(memory_area_um2 + logic_area_um2),
            estimated_memory_area_mm2=um2_to_mm2(memory_area_um2),
            estimated_macros=total_macros,
            estimated_power_w=(leakage_mw + dynamic_mw) / 1.0e3,
            notes=notes,
        )
        if spec.max_area_mm2 is not None and estimate.estimated_area_mm2 > spec.max_area_mm2:
            estimate.feasible = False
            estimate.notes.append(
                f"estimated area {estimate.estimated_area_mm2:.2f} mm2 exceeds the "
                f"{spec.max_area_mm2:.2f} mm2 budget"
            )
        if spec.max_power_w is not None and estimate.estimated_power_w > spec.max_power_w:
            estimate.feasible = False
            estimate.notes.append(
                f"estimated power {estimate.estimated_power_w:.2f} W exceeds the "
                f"{spec.max_power_w:.2f} W budget"
            )
        return estimate
