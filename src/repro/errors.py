"""Exception hierarchy for the G-GPU / GPUPlanner reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library-specific failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An architecture or planner configuration is invalid."""


class TechnologyError(ReproError):
    """A technology query cannot be satisfied (e.g. macro out of compiler range)."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad mnemonic, operand, or label)."""


class CompilationError(ReproError):
    """An OpenCL-C kernel source could not be compiled (lexing, parsing,
    semantic analysis, or code generation failed)."""


class SimulationError(ReproError):
    """A functional or timing simulation failed (trap, bad access, deadlock)."""


class KernelError(ReproError):
    """A kernel definition or launch is invalid."""


class DeviceFailureError(KernelError):
    """A command failed permanently on the multi-device runtime.

    Raised when an injected (or simulated-platform) fault exhausted the
    retry budget, when every device of a queue died, or when a command
    depends on an event whose producer failed permanently.  The structured
    fields let callers see exactly which slice of the event graph was lost:

    * ``event_label`` / ``device`` — the failed command and where its last
      attempt ran (``None`` if it never reached a device);
    * ``attempts`` — how many dispatch attempts were made;
    * ``graph_slice`` — the labels of the failed event plus every dependent
      event that was failed fast because of it, in sequence order.

    Cascaded failures chain the root failure as ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        event_label: str = "",
        device: "int | None" = None,
        attempts: int = 0,
        graph_slice: "tuple[str, ...]" = (),
    ) -> None:
        super().__init__(message)
        self.event_label = event_label
        self.device = device
        self.attempts = attempts
        self.graph_slice = tuple(graph_slice)


class ParallelExecutionError(ReproError):
    """A parallel sweep task failed in a way the worker pool cannot report.

    Carries the index (and repr) of the offending task so a dead worker or a
    per-task timeout points at the task that caused it instead of an opaque
    pool traceback.
    """

    def __init__(self, message: str, task_index: "int | None" = None) -> None:
        super().__init__(message)
        self.task_index = task_index


class NetlistError(ReproError):
    """A netlist construction or transformation is invalid."""


class TimingError(ReproError):
    """Static timing analysis failed or a timing constraint cannot be expressed."""


class SynthesisError(ReproError):
    """Logic synthesis could not complete for the given design."""


class PhysicalDesignError(ReproError):
    """Floorplanning, placement, or routing failed."""


class PlanningError(ReproError):
    """GPUPlanner could not produce a design meeting the specification."""
