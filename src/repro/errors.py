"""Exception hierarchy for the G-GPU / GPUPlanner reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can catch
library-specific failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """An architecture or planner configuration is invalid."""


class TechnologyError(ReproError):
    """A technology query cannot be satisfied (e.g. macro out of compiler range)."""


class AssemblyError(ReproError):
    """A program could not be assembled (bad mnemonic, operand, or label)."""


class CompilationError(ReproError):
    """An OpenCL-C kernel source could not be compiled (lexing, parsing,
    semantic analysis, or code generation failed)."""


class SimulationError(ReproError):
    """A functional or timing simulation failed (trap, bad access, deadlock)."""


class KernelError(ReproError):
    """A kernel definition or launch is invalid."""


class NetlistError(ReproError):
    """A netlist construction or transformation is invalid."""


class TimingError(ReproError):
    """Static timing analysis failed or a timing constraint cannot be expressed."""


class SynthesisError(ReproError):
    """Logic synthesis could not complete for the given design."""


class PhysicalDesignError(ReproError):
    """Floorplanning, placement, or routing failed."""


class PlanningError(ReproError):
    """GPUPlanner could not produce a design meeting the specification."""
