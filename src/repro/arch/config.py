"""Architecture configuration of a G-GPU instance.

The paper's GPUPlanner lets the designer customize "computation
characteristics (e.g., number of processing units) and memory access (e.g.,
cache sizes)".  :class:`GGPUConfig` is that parameter set.  It is consumed by

* the SIMT simulator (``repro.simt``) to model performance,
* the RTL generator (``repro.rtl``) to instantiate the hardware blocks, and
* GPUPlanner (``repro.planner``) as part of a :class:`~repro.planner.spec.GGPUSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of the central direct-mapped write-back data cache.

    The FGPU cache is central (shared by all CUs), direct mapped, multi-port,
    and write back; the number of read/write ports it can serve per cycle, the
    latency of a hit, and the number of data movers toward the AXI interfaces
    are configurable.  ``ports`` bounds how many distinct lines one coalesced
    wavefront access can touch per cycle: accesses that span more lines are
    serialized one ``ports``-wide wave per cycle by the timing model.
    """

    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    ports: int = 4
    hit_latency_cycles: int = 4
    write_back: bool = True

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("cache size and line size must be positive")
        if self.hit_latency_cycles < 1:
            raise ConfigurationError("cache hit latency must be at least one cycle")
        if self.size_bytes % self.line_bytes != 0:
            raise ConfigurationError(
                f"cache size {self.size_bytes} is not a multiple of the line size {self.line_bytes}"
            )
        if self.line_bytes % 4 != 0:
            raise ConfigurationError("cache line size must be a multiple of the 4-byte word")
        if self.ports < 1:
            raise ConfigurationError("the cache needs at least one port")
        if self.num_lines & (self.num_lines - 1):
            raise ConfigurationError("the number of cache lines must be a power of two")

    @property
    def num_lines(self) -> int:
        """Number of cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def words_per_line(self) -> int:
        """Number of 32-bit words per cache line."""
        return self.line_bytes // 4


@dataclass(frozen=True)
class AxiConfig:
    """AXI interface configuration of the global memory controller.

    FGPU parallelizes data traffic on up to four AXI data interfaces; the whole
    accelerator is controlled through one AXI control interface.
    """

    data_ports: int = 4
    data_width_bits: int = 64
    memory_latency_cycles: int = 36
    control_ports: int = 1

    def __post_init__(self) -> None:
        if not 1 <= self.data_ports <= 4:
            raise ConfigurationError(
                f"FGPU supports 1-4 AXI data interfaces, got {self.data_ports}"
            )
        if self.data_width_bits not in (32, 64, 128):
            raise ConfigurationError(
                f"AXI data width must be 32, 64, or 128 bits, got {self.data_width_bits}"
            )
        if self.memory_latency_cycles < 1:
            raise ConfigurationError("memory latency must be at least one cycle")
        if self.control_ports != 1:
            raise ConfigurationError("the architecture uses a single AXI control interface")

    @property
    def data_width_words(self) -> int:
        """AXI data beat width in 32-bit words."""
        return self.data_width_bits // 32


@dataclass(frozen=True)
class TransferConfig:
    """Host↔device transfer cost model of one G-GPU instance.

    The paper runs one kernel on one simulated G-GPU and never charges the
    host for moving data; a multi-accelerator deployment cannot ignore that
    cost.  Every explicit ``enqueue_write``/``enqueue_read`` copy through
    :mod:`repro.runtime.multidevice` is charged

    ``latency_cycles + ceil(num_bytes / bytes_per_cycle)``

    device cycles on the timeline of the device touched.  The defaults model
    a DMA engine behind the single AXI control/data bridge: a fixed setup
    latency plus a streaming phase at the 64-bit AXI beat width (8 bytes per
    cycle).

    ``p2p_latency_cycles``/``p2p_bytes_per_cycle`` describe a direct
    device↔device link (an NVLink-ish on-package fabric next to the PCIe-ish
    host bridge).  Both default to ``None`` — P2P disabled — in which case a
    cross-device hand-off bounces through the host and
    :meth:`p2p_cycles` prices it as the two host hops it actually takes, so
    every existing schedule pin holds.  Set both to enable direct transfers
    in the multi-device runtime.
    """

    latency_cycles: int = 600
    bytes_per_cycle: float = 8.0
    p2p_latency_cycles: Optional[int] = None
    p2p_bytes_per_cycle: Optional[float] = None

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise ConfigurationError(
                f"transfer latency must be non-negative, got {self.latency_cycles}"
            )
        if self.bytes_per_cycle <= 0:
            raise ConfigurationError(
                f"transfer bandwidth must be positive, got {self.bytes_per_cycle}"
            )
        if (self.p2p_latency_cycles is None) != (self.p2p_bytes_per_cycle is None):
            raise ConfigurationError(
                "p2p_latency_cycles and p2p_bytes_per_cycle must be set together"
            )
        if self.p2p_latency_cycles is not None and self.p2p_latency_cycles < 0:
            raise ConfigurationError(
                f"P2P latency must be non-negative, got {self.p2p_latency_cycles}"
            )
        if self.p2p_bytes_per_cycle is not None and self.p2p_bytes_per_cycle <= 0:
            raise ConfigurationError(
                f"P2P bandwidth must be positive, got {self.p2p_bytes_per_cycle}"
            )

    @property
    def p2p_enabled(self) -> bool:
        """Whether direct device↔device transfers are modeled."""
        return self.p2p_bytes_per_cycle is not None

    def cycles(self, num_bytes: int) -> float:
        """Cycle cost of one host↔device copy of ``num_bytes`` bytes."""
        if num_bytes < 0:
            raise ConfigurationError(f"transfer size must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        beats = -(-num_bytes // self.bytes_per_cycle)  # ceil for float bandwidths
        return float(self.latency_cycles) + float(int(beats))

    def p2p_cycles(self, num_bytes: int) -> float:
        """Cycle cost of moving ``num_bytes`` from one device to another.

        With P2P disabled this is the price of the host bounce the runtime
        actually performs (device→host read-back plus host→device write, two
        :meth:`cycles` hops); with P2P enabled it is one direct hop on the
        device↔device link.
        """
        if not self.p2p_enabled:
            return 2.0 * self.cycles(num_bytes)
        if num_bytes < 0:
            raise ConfigurationError(f"transfer size must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        beats = -(-num_bytes // self.p2p_bytes_per_cycle)
        return float(self.p2p_latency_cycles) + float(int(beats))

    def with_p2p(
        self, latency_cycles: int, bytes_per_cycle: float
    ) -> "TransferConfig":
        """A copy of this model with the direct device↔device link enabled."""
        return TransferConfig(
            latency_cycles=self.latency_cycles,
            bytes_per_cycle=self.bytes_per_cycle,
            p2p_latency_cycles=latency_cycles,
            p2p_bytes_per_cycle=bytes_per_cycle,
        )


@dataclass(frozen=True)
class Topology:
    """Per-pair device↔device link-cost model of a multi-accelerator fabric.

    :class:`TransferConfig` prices every device pair identically — one host
    bridge, one optional P2P link.  Real 8-64 device deployments are not
    flat: links cross switch hops and NUMA domains, and the cost of a copy
    depends on *which* two devices talk.  A ``Topology`` generalizes the
    single P2P knob into an NxN matrix of DMA setup latencies (cycles) and
    streaming bandwidths (bytes/cycle); ``p2p_cycles(src, dst, n)`` replaces
    ``TransferConfig.p2p_cycles(n)`` in the multi-device runtime whenever a
    topology is attached.

    The host bridge keeps its uniform :class:`TransferConfig` pricing:
    ``host`` overrides the queue's host link when set, and defaults to the
    queue's own ``transfer`` model when ``None``.

    A topology only ever reshapes the *schedule* of the multi-device queues
    (placement, transfer timing, makespan) — kernel results and per-launch
    simulated cycles are bit-identical across every topology, exactly like
    transfer modes and scheduling hints (the PR 5 invariant).

    Presets
    -------
    * :meth:`flat` — every pair one switch hop apart (uniform direct links).
    * :meth:`two_switch` — two switch domains; intra-domain links are fast,
      cross-domain links pay the inter-switch hop.
    * :meth:`ring` — NUMA-ish ring: latency grows and bandwidth shrinks
      linearly with the ring distance between the two devices.
    """

    name: str
    latency_cycles: tuple[tuple[float, ...], ...]
    bytes_per_cycle: tuple[tuple[float, ...], ...]
    host: Optional[TransferConfig] = None

    #: Reference payload used to rank links by cost (``distance``); any
    #: positive constant gives the same deterministic ordering intent.
    RANK_BYTES = 1024

    def __post_init__(self) -> None:
        count = len(self.latency_cycles)
        if count < 1:
            raise ConfigurationError("a topology needs at least one device")
        if len(self.bytes_per_cycle) != count:
            raise ConfigurationError(
                "latency and bandwidth matrices must have the same shape"
            )
        for row in self.latency_cycles:
            if len(row) != count:
                raise ConfigurationError("the latency matrix must be square")
        for row in self.bytes_per_cycle:
            if len(row) != count:
                raise ConfigurationError("the bandwidth matrix must be square")
        for src in range(count):
            if self.latency_cycles[src][src] != 0.0:
                raise ConfigurationError(
                    f"diagonal latency must be 0 (device {src} to itself)"
                )
            for dst in range(count):
                if self.latency_cycles[src][dst] < 0:
                    raise ConfigurationError(
                        f"link latency must be non-negative, got "
                        f"{self.latency_cycles[src][dst]} for {src}->{dst}"
                    )
                if self.bytes_per_cycle[src][dst] <= 0:
                    raise ConfigurationError(
                        f"link bandwidth must be positive, got "
                        f"{self.bytes_per_cycle[src][dst]} for {src}->{dst}"
                    )

    @property
    def num_devices(self) -> int:
        """Number of devices the link matrices describe."""
        return len(self.latency_cycles)

    def p2p_cycles(self, src: int, dst: int, num_bytes: int) -> float:
        """Cycle cost of one direct ``src``→``dst`` copy of ``num_bytes``."""
        if num_bytes < 0:
            raise ConfigurationError(f"transfer size must be non-negative, got {num_bytes}")
        if src == dst or num_bytes == 0:
            return 0.0
        beats = -(-num_bytes // self.bytes_per_cycle[src][dst])
        return float(self.latency_cycles[src][dst]) + float(int(beats))

    def distance(self, src: int, dst: int) -> float:
        """Deterministic link-cost rank: cycles to move a reference payload.

        Used by the topology-aware schedulers to pick the *nearest* source
        or the nearest queued work; it is a pure function of the matrices,
        so every run orders candidates identically.
        """
        if src == dst:
            return 0.0
        return self.p2p_cycles(src, dst, self.RANK_BYTES)

    def with_host(self, host: TransferConfig) -> "Topology":
        """A copy of this topology with an explicit host-bridge model."""
        return Topology(
            name=self.name,
            latency_cycles=self.latency_cycles,
            bytes_per_cycle=self.bytes_per_cycle,
            host=host,
        )

    # ------------------------------------------------------------------ #
    # Presets
    # ------------------------------------------------------------------ #
    @classmethod
    def flat(
        cls,
        num_devices: int,
        latency_cycles: float = 150.0,
        bytes_per_cycle: float = 32.0,
        host: Optional[TransferConfig] = None,
    ) -> "Topology":
        """Uniform fabric: every pair is one fast switch hop apart.

        The defaults match the PR 5 P2P ablation link (150-cycle setup,
        32 bytes/cycle), so a flat topology prices pairs exactly like
        ``TransferConfig.with_p2p(150, 32.0)`` does.
        """

        def link(src: int, dst: int) -> tuple[float, float]:
            return (latency_cycles, bytes_per_cycle)

        return cls._from_link(num_devices, "flat", link, host)

    @classmethod
    def two_switch(
        cls,
        num_devices: int,
        intra_latency_cycles: float = 150.0,
        intra_bytes_per_cycle: float = 32.0,
        inter_latency_cycles: float = 900.0,
        inter_bytes_per_cycle: float = 8.0,
        host: Optional[TransferConfig] = None,
    ) -> "Topology":
        """Two switch domains (devices split in half); crossing pays the hop."""
        half = (num_devices + 1) // 2

        def link(src: int, dst: int) -> tuple[float, float]:
            if (src < half) == (dst < half):
                return (intra_latency_cycles, intra_bytes_per_cycle)
            return (inter_latency_cycles, inter_bytes_per_cycle)

        return cls._from_link(num_devices, "two-switch", link, host)

    @classmethod
    def ring(
        cls,
        num_devices: int,
        latency_cycles_per_hop: float = 150.0,
        bytes_per_cycle: float = 32.0,
        host: Optional[TransferConfig] = None,
    ) -> "Topology":
        """NUMA-ish ring: cost scales with the ring distance between devices.

        A copy over ``h`` hops pays ``h`` times the per-hop setup latency and
        streams at ``1/h`` of the single-hop bandwidth — the store-and-forward
        model of a bidirectional ring interconnect.
        """

        def link(src: int, dst: int) -> tuple[float, float]:
            hops = min(abs(src - dst), num_devices - abs(src - dst))
            hops = max(hops, 1)
            return (latency_cycles_per_hop * hops, bytes_per_cycle / hops)

        return cls._from_link(num_devices, "ring", link, host)

    _PRESETS = ("flat", "two-switch", "ring")

    @classmethod
    def preset(cls, name: str, num_devices: int, host: Optional[TransferConfig] = None) -> "Topology":
        """Build a named preset (``flat``, ``two-switch``, or ``ring``)."""
        if name == "flat":
            return cls.flat(num_devices, host=host)
        if name == "two-switch":
            return cls.two_switch(num_devices, host=host)
        if name == "ring":
            return cls.ring(num_devices, host=host)
        raise ConfigurationError(
            f"unknown topology preset {name!r}; choose from {', '.join(cls._PRESETS)}"
        )

    @classmethod
    def _from_link(
        cls,
        num_devices: int,
        name: str,
        link: "Callable[[int, int], tuple[float, float]]",
        host: Optional[TransferConfig],
    ) -> "Topology":
        if num_devices < 1:
            raise ConfigurationError("a topology needs at least one device")
        latency = []
        bandwidth = []
        for src in range(num_devices):
            lat_row = []
            bw_row = []
            for dst in range(num_devices):
                if src == dst:
                    lat_row.append(0.0)
                    bw_row.append(float("inf"))
                    continue
                lat, bw = link(src, dst)
                lat_row.append(float(lat))
                bw_row.append(float(bw))
            latency.append(tuple(lat_row))
            bandwidth.append(tuple(bw_row))
        return cls(
            name=name,
            latency_cycles=tuple(latency),
            bytes_per_cycle=tuple(bandwidth),
            host=host,
        )


@dataclass(frozen=True)
class GGPUConfig:
    """Top-level architecture parameters of one G-GPU instance.

    Attributes
    ----------
    num_cus:
        Number of Compute Units (1-8, spatially replicated).
    pes_per_cu:
        SIMD width of a CU; FGPU uses 8 identical Processing Elements.
    wavefront_size:
        Number of work-items that execute an instruction together.
    max_wavefronts_per_cu:
        Resident wavefronts per CU; 8 wavefronts x 64 work-items = the 512
        work-items per CU quoted in the paper.
    num_registers:
        General-purpose registers per work-item.
    cram_words:
        Instruction memory (CRAM) depth in 32-bit words.
    rtm_words:
        Runtime-memory depth (kernel descriptors and parameters).
    lram_words_per_cu:
        Local scratchpad (LRAM) depth per CU.
    cache / axi:
        Memory-hierarchy configuration shared by all CUs.
    transfer:
        Host↔device transfer cost model used by the multi-device runtime
        (:mod:`repro.runtime.multidevice`); it never affects a bare
        :class:`~repro.simt.gpu.GGPUSimulator` launch.
    """

    num_cus: int = 1
    pes_per_cu: int = 8
    wavefront_size: int = 64
    max_wavefronts_per_cu: int = 8
    num_registers: int = 32
    cram_words: int = 2048
    rtm_words: int = 512
    lram_words_per_cu: int = 2048
    cache: CacheConfig = field(default_factory=CacheConfig)
    axi: AxiConfig = field(default_factory=AxiConfig)
    transfer: TransferConfig = field(default_factory=TransferConfig)

    def __post_init__(self) -> None:
        if not 1 <= self.num_cus <= 8:
            raise ConfigurationError(
                f"GPUPlanner supports 1 to 8 CUs, got {self.num_cus}"
            )
        if self.pes_per_cu != 8:
            raise ConfigurationError(
                "the FGPU compute unit is a SIMD machine of 8 processing elements"
            )
        if self.wavefront_size <= 0 or self.wavefront_size % self.pes_per_cu != 0:
            raise ConfigurationError(
                f"wavefront size must be a positive multiple of {self.pes_per_cu} PEs, "
                f"got {self.wavefront_size}"
            )
        if self.max_wavefronts_per_cu < 1:
            raise ConfigurationError("at least one resident wavefront per CU is required")
        if self.num_registers < 8 or self.num_registers > 64:
            raise ConfigurationError(
                f"register file supports 8-64 registers per work-item, got {self.num_registers}"
            )
        for name in ("cram_words", "rtm_words", "lram_words_per_cu"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigurationError(f"{name} must be a positive power of two, got {value}")

    @property
    def work_items_per_cu(self) -> int:
        """Maximum concurrently resident work-items per CU (512 in the paper)."""
        return self.wavefront_size * self.max_wavefronts_per_cu

    @property
    def max_work_items(self) -> int:
        """Maximum concurrently resident work-items in the whole G-GPU."""
        return self.work_items_per_cu * self.num_cus

    @property
    def lanes_rounds_per_wavefront(self) -> int:
        """Cycles needed to stream one wavefront through the PE array."""
        return self.wavefront_size // self.pes_per_cu

    def with_cus(self, num_cus: int) -> "GGPUConfig":
        """Return a copy of this configuration with a different CU count."""
        return GGPUConfig(
            num_cus=num_cus,
            pes_per_cu=self.pes_per_cu,
            wavefront_size=self.wavefront_size,
            max_wavefronts_per_cu=self.max_wavefronts_per_cu,
            num_registers=self.num_registers,
            cram_words=self.cram_words,
            rtm_words=self.rtm_words,
            lram_words_per_cu=self.lram_words_per_cu,
            cache=self.cache,
            axi=self.axi,
            transfer=self.transfer,
        )
